//! Selectivity-controlled workload generation.
//!
//! The paper's methodology (§6.1.2): each benchmark query is turned into a template
//! by replacing its range predicates with abstract ranges; a workload query is
//! created by sampling a template and substituting concrete ranges chosen so that a
//! fraction `s` of each referenced dimension is selected. The parameter `s` thereby
//! controls how many dimension tuples each query loads into CJOIN's dimension hash
//! tables (and how large the baseline's per-query hash tables become).
//!
//! Concretely, for every dimension a template joins we generate a contiguous range
//! predicate over the dimension's primary-key space whose width is `⌈s × |D|⌉`,
//! placed uniformly at random. The template's join structure, GROUP BY columns and
//! aggregates are kept verbatim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cjoin_query::{Predicate, StarQuery};

use crate::data::SsbDataSet;
use crate::schema::join_columns;
use crate::templates::{workload_templates, SsbTemplate};

/// Configuration of a generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Fraction of each referenced dimension selected by each query (the paper's
    /// `s`, e.g. `0.01` for 1 %).
    pub selectivity: f64,
    /// RNG seed.
    pub seed: u64,
    /// Restrict generation to these template ids (e.g. `["Q4.2"]` for the
    /// predictability experiment). Empty means "all ten templates".
    pub template_ids: Vec<&'static str>,
}

impl WorkloadConfig {
    /// A workload of `num_queries` queries at the given selectivity.
    pub fn new(num_queries: usize, selectivity: f64, seed: u64) -> Self {
        Self {
            num_queries,
            selectivity,
            seed,
            template_ids: Vec::new(),
        }
    }

    /// Restricts the workload to a single template (e.g. `"Q4.2"`).
    pub fn with_template(mut self, id: &'static str) -> Self {
        self.template_ids = vec![id];
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::new(32, 0.01, 0xC01)
    }
}

/// A generated workload: star queries plus the template each one came from.
#[derive(Debug, Clone)]
pub struct Workload {
    queries: Vec<StarQuery>,
    template_ids: Vec<&'static str>,
    config: WorkloadConfig,
}

impl Workload {
    /// Generates a workload against the given data set.
    pub fn generate(data: &SsbDataSet, config: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let all_templates = workload_templates();
        let templates: Vec<SsbTemplate> = if config.template_ids.is_empty() {
            all_templates
        } else {
            all_templates
                .into_iter()
                .filter(|t| config.template_ids.contains(&t.id))
                .collect()
        };
        assert!(!templates.is_empty(), "no matching workload templates");

        let mut queries = Vec::with_capacity(config.num_queries);
        let mut template_ids = Vec::with_capacity(config.num_queries);
        for i in 0..config.num_queries {
            let template = &templates[rng.gen_range(0..templates.len())];
            queries.push(instantiate(template, data, config.selectivity, i, &mut rng));
            template_ids.push(template.id);
        }
        Self {
            queries,
            template_ids,
            config,
        }
    }

    /// The generated queries, in submission order.
    pub fn queries(&self) -> &[StarQuery] {
        &self.queries
    }

    /// The template id each query was instantiated from (parallel to
    /// [`Workload::queries`]).
    pub fn template_ids(&self) -> &[&'static str] {
        &self.template_ids
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The configuration used to generate the workload.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }
}

/// Instantiates one query from a template at the given selectivity.
fn instantiate(
    template: &SsbTemplate,
    data: &SsbDataSet,
    selectivity: f64,
    index: usize,
    rng: &mut StdRng,
) -> StarQuery {
    let selectivity = selectivity.clamp(0.0, 1.0);
    let mut builder = StarQuery::builder(format!("{}#{index}", template.id));
    for dim in template.dimensions {
        let (dim_key, fact_fk) = join_columns(dim).expect("known dimension");
        let predicate = dimension_range_predicate(dim, dim_key, data, selectivity, rng);
        builder = builder.join_dimension(*dim, fact_fk, dim_key, predicate);
    }
    for g in &template.group_by {
        builder = builder.group_by(g.clone());
    }
    for a in &template.aggregates {
        builder = builder.aggregate(a.clone());
    }
    builder.build()
}

/// Builds a contiguous key-range predicate selecting ≈ `selectivity` of `dim`.
fn dimension_range_predicate(
    dim: &str,
    key_column: &str,
    data: &SsbDataSet,
    selectivity: f64,
    rng: &mut StdRng,
) -> Predicate {
    if selectivity >= 1.0 {
        return Predicate::True;
    }
    match dim {
        // Date keys are not dense integers (yyyymmdd), so the window is chosen over
        // the sorted key list and expressed as a BETWEEN over its endpoints.
        "date" => {
            let keys = data.date_keys();
            let width = ((keys.len() as f64 * selectivity).ceil() as usize).clamp(1, keys.len());
            let start = rng.gen_range(0..=keys.len() - width);
            Predicate::between("d_datekey", keys[start], keys[start + width - 1])
        }
        // Customer, supplier and part keys are dense 1..=N.
        _ => {
            let n = match dim {
                "customer" => data.num_customers(),
                "supplier" => data.num_suppliers(),
                "part" => data.num_parts(),
                other => panic!("unknown dimension {other}"),
            } as i64;
            let width = ((n as f64 * selectivity).ceil() as i64).clamp(1, n);
            let start = rng.gen_range(1..=n - width + 1);
            Predicate::between(key_column, start, start + width - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SsbConfig;
    use cjoin_storage::SnapshotId;

    fn data() -> SsbDataSet {
        SsbDataSet::generate(SsbConfig::for_tests(0.001, 11))
    }

    #[test]
    fn generates_requested_number_of_queries() {
        let ds = data();
        let w = Workload::generate(&ds, WorkloadConfig::new(17, 0.01, 1));
        assert_eq!(w.len(), 17);
        assert_eq!(w.queries().len(), 17);
        assert_eq!(w.template_ids().len(), 17);
        assert!(!w.is_empty());
        assert_eq!(w.config().num_queries, 17);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let ds = data();
        let a = Workload::generate(&ds, WorkloadConfig::new(8, 0.05, 99));
        let b = Workload::generate(&ds, WorkloadConfig::new(8, 0.05, 99));
        assert_eq!(a.queries(), b.queries());
        let c = Workload::generate(&ds, WorkloadConfig::new(8, 0.05, 100));
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn all_generated_queries_bind() {
        let ds = data();
        let catalog = ds.catalog();
        let w = Workload::generate(&ds, WorkloadConfig::new(32, 0.02, 5));
        for q in w.queries() {
            q.bind(&catalog)
                .unwrap_or_else(|e| panic!("{} does not bind: {e}", q.name));
        }
    }

    #[test]
    fn template_restriction_is_honoured() {
        let ds = data();
        let w = Workload::generate(&ds, WorkloadConfig::new(12, 0.01, 2).with_template("Q4.2"));
        assert!(w.template_ids().iter().all(|id| *id == "Q4.2"));
        assert!(w.queries().iter().all(|q| q.name.starts_with("Q4.2#")));
        assert!(w.queries().iter().all(|q| q.dimensions.len() == 4));
    }

    #[test]
    fn selectivity_controls_dimension_fraction() {
        let ds = data();
        let catalog = ds.catalog();
        let count_selected = |selectivity: f64| -> f64 {
            let w = Workload::generate(
                &ds,
                WorkloadConfig::new(20, selectivity, 7).with_template("Q3.1"),
            );
            let mut fractions = Vec::new();
            for q in w.queries() {
                let clause = q.dimension("customer").unwrap();
                let table = catalog.table("customer").unwrap();
                let bound = clause.predicate.bind(table.schema()).unwrap();
                let selected = table
                    .select(SnapshotId::INITIAL, |row| bound.eval(row))
                    .len();
                fractions.push(selected as f64 / table.len() as f64);
            }
            fractions.iter().sum::<f64>() / fractions.len() as f64
        };
        let low = count_selected(0.01);
        let high = count_selected(0.10);
        assert!(
            low < high,
            "higher s must select more tuples ({low} vs {high})"
        );
        assert!((0.001..=0.05).contains(&low), "s=1% actual {low}");
        assert!((0.05..=0.20).contains(&high), "s=10% actual {high}");
    }

    #[test]
    fn full_selectivity_means_no_filtering() {
        let ds = data();
        let w = Workload::generate(&ds, WorkloadConfig::new(5, 1.0, 3));
        for q in w.queries() {
            for clause in &q.dimensions {
                assert!(clause.predicate.is_true());
            }
        }
    }

    #[test]
    fn queries_have_unique_names() {
        let ds = data();
        let w = Workload::generate(&ds, WorkloadConfig::new(64, 0.01, 4));
        let mut names: Vec<_> = w.queries().iter().map(|q| q.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 64);
    }

    #[test]
    fn default_config_is_reasonable() {
        let c = WorkloadConfig::default();
        assert_eq!(c.num_queries, 32);
        assert!((c.selectivity - 0.01).abs() < 1e-12);
        assert!(c.template_ids.is_empty());
    }
}
