//! The SSB query flights expressed as star queries.
//!
//! Two forms are provided:
//!
//! * [`classic_queries`] — the benchmark's queries Q2.1–Q4.3 with their original
//!   literal predicates (useful for examples and correctness tests). Flight 1
//!   (Q1.1–Q1.3) is omitted, exactly as in the paper's workload generation (§6.1.2):
//!   those queries filter the fact table directly and have no GROUP BY.
//! * [`SsbTemplate`] — the abstract templates the workload generator instantiates:
//!   the join/group-by/aggregate structure of each query with the range predicates
//!   replaced by abstract ranges whose width is chosen from the selectivity
//!   parameter `s`.
//!
//! One small deviation: flight 4 computes `SUM(lo_revenue - lo_supplycost)`; our
//! aggregate model evaluates single-column aggregates, so those queries carry two
//! aggregates (`SUM(lo_revenue)`, `SUM(lo_supplycost)`) instead. The amount of work
//! per tuple is identical and the profit is the difference of the two columns.

use cjoin_query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};

/// The SSB query flights used in the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFlight {
    /// Flight 2: part/supplier drill-down.
    Flight2,
    /// Flight 3: customer/supplier geography.
    Flight3,
    /// Flight 4: profit queries over all four dimensions.
    Flight4,
}

/// An abstract SSB query template: the structure of one benchmark query with
/// parameterisable dimension predicates.
#[derive(Debug, Clone)]
pub struct SsbTemplate {
    /// Template identifier, e.g. `"Q4.2"`.
    pub id: &'static str,
    /// The flight this template belongs to.
    pub flight: QueryFlight,
    /// Names of the dimension tables the template joins.
    pub dimensions: &'static [&'static str],
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// Aggregates.
    pub aggregates: Vec<AggregateSpec>,
}

fn revenue_sum() -> Vec<AggregateSpec> {
    vec![AggregateSpec::over(
        AggFunc::Sum,
        ColumnRef::fact("lo_revenue"),
    )]
}

fn profit_sums() -> Vec<AggregateSpec> {
    vec![
        AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("lo_revenue")),
        AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("lo_supplycost")),
    ]
}

/// Returns the ten workload templates (Q2.1–Q4.3), in benchmark order.
pub fn workload_templates() -> Vec<SsbTemplate> {
    vec![
        SsbTemplate {
            id: "Q2.1",
            flight: QueryFlight::Flight2,
            dimensions: &["date", "part", "supplier"],
            group_by: vec![
                ColumnRef::dim("date", "d_year"),
                ColumnRef::dim("part", "p_brand1"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q2.2",
            flight: QueryFlight::Flight2,
            dimensions: &["date", "part", "supplier"],
            group_by: vec![
                ColumnRef::dim("date", "d_year"),
                ColumnRef::dim("part", "p_brand1"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q2.3",
            flight: QueryFlight::Flight2,
            dimensions: &["date", "part", "supplier"],
            group_by: vec![
                ColumnRef::dim("date", "d_year"),
                ColumnRef::dim("part", "p_brand1"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q3.1",
            flight: QueryFlight::Flight3,
            dimensions: &["customer", "supplier", "date"],
            group_by: vec![
                ColumnRef::dim("customer", "c_nation"),
                ColumnRef::dim("supplier", "s_nation"),
                ColumnRef::dim("date", "d_year"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q3.2",
            flight: QueryFlight::Flight3,
            dimensions: &["customer", "supplier", "date"],
            group_by: vec![
                ColumnRef::dim("customer", "c_city"),
                ColumnRef::dim("supplier", "s_city"),
                ColumnRef::dim("date", "d_year"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q3.3",
            flight: QueryFlight::Flight3,
            dimensions: &["customer", "supplier", "date"],
            group_by: vec![
                ColumnRef::dim("customer", "c_city"),
                ColumnRef::dim("supplier", "s_city"),
                ColumnRef::dim("date", "d_year"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q3.4",
            flight: QueryFlight::Flight3,
            dimensions: &["customer", "supplier", "date"],
            group_by: vec![
                ColumnRef::dim("customer", "c_city"),
                ColumnRef::dim("supplier", "s_city"),
                ColumnRef::dim("date", "d_year"),
            ],
            aggregates: revenue_sum(),
        },
        SsbTemplate {
            id: "Q4.1",
            flight: QueryFlight::Flight4,
            dimensions: &["customer", "supplier", "part", "date"],
            group_by: vec![
                ColumnRef::dim("date", "d_year"),
                ColumnRef::dim("customer", "c_nation"),
            ],
            aggregates: profit_sums(),
        },
        SsbTemplate {
            id: "Q4.2",
            flight: QueryFlight::Flight4,
            dimensions: &["customer", "supplier", "part", "date"],
            group_by: vec![
                ColumnRef::dim("date", "d_year"),
                ColumnRef::dim("supplier", "s_nation"),
                ColumnRef::dim("part", "p_category"),
            ],
            aggregates: profit_sums(),
        },
        SsbTemplate {
            id: "Q4.3",
            flight: QueryFlight::Flight4,
            dimensions: &["customer", "supplier", "part", "date"],
            group_by: vec![
                ColumnRef::dim("date", "d_year"),
                ColumnRef::dim("supplier", "s_city"),
                ColumnRef::dim("part", "p_brand1"),
            ],
            aggregates: profit_sums(),
        },
    ]
}

/// Looks up a workload template by id (e.g. `"Q4.2"`).
pub fn template_by_id(id: &str) -> Option<SsbTemplate> {
    workload_templates().into_iter().find(|t| t.id == id)
}

fn builder_for(template: &SsbTemplate, name: String) -> cjoin_query::StarQueryBuilder {
    let mut b = StarQuery::builder(name);
    for g in &template.group_by {
        b = b.group_by(g.clone());
    }
    for a in &template.aggregates {
        b = b.aggregate(a.clone());
    }
    b
}

/// Builds the ten classic SSB queries (original literal predicates).
pub fn classic_queries() -> Vec<StarQuery> {
    let templates = workload_templates();
    let t = |id: &str| {
        templates
            .iter()
            .find(|t| t.id == id)
            .expect("template")
            .clone()
    };

    let join = |b: cjoin_query::StarQueryBuilder, dim: &str, pred: Predicate| {
        let (dim_key, fact_fk) = crate::schema::join_columns(dim).expect("known dimension");
        b.join_dimension(dim, fact_fk, dim_key, pred)
    };

    let mut queries = Vec::new();

    // Flight 2 — part category / brand drill-down with a supplier region filter.
    {
        let tmpl = t("Q2.1");
        let b = builder_for(&tmpl, "Q2.1".into());
        let b = join(b, "date", Predicate::True);
        let b = join(b, "part", Predicate::eq("p_category", "MFGR#12"));
        let b = join(b, "supplier", Predicate::eq("s_region", "AMERICA"));
        queries.push(b.build());

        let tmpl = t("Q2.2");
        let b = builder_for(&tmpl, "Q2.2".into());
        let b = join(b, "date", Predicate::True);
        let b = join(
            b,
            "part",
            Predicate::between("p_brand1", "MFGR#2221", "MFGR#2228"),
        );
        let b = join(b, "supplier", Predicate::eq("s_region", "ASIA"));
        queries.push(b.build());

        let tmpl = t("Q2.3");
        let b = builder_for(&tmpl, "Q2.3".into());
        let b = join(b, "date", Predicate::True);
        let b = join(b, "part", Predicate::eq("p_brand1", "MFGR#2239"));
        let b = join(b, "supplier", Predicate::eq("s_region", "EUROPE"));
        queries.push(b.build());
    }

    // Flight 3 — customer/supplier geography over a date range.
    {
        let tmpl = t("Q3.1");
        let b = builder_for(&tmpl, "Q3.1".into());
        let b = join(b, "customer", Predicate::eq("c_region", "ASIA"));
        let b = join(b, "supplier", Predicate::eq("s_region", "ASIA"));
        let b = join(b, "date", Predicate::between("d_year", 1992, 1997));
        queries.push(b.build());

        let tmpl = t("Q3.2");
        let b = builder_for(&tmpl, "Q3.2".into());
        let b = join(b, "customer", Predicate::eq("c_nation", "UNITED STATES"));
        let b = join(b, "supplier", Predicate::eq("s_nation", "UNITED STATES"));
        let b = join(b, "date", Predicate::between("d_year", 1992, 1997));
        queries.push(b.build());

        let tmpl = t("Q3.3");
        let b = builder_for(&tmpl, "Q3.3".into());
        let cities = vec!["UNITED KI1", "UNITED KI5"];
        let b = join(b, "customer", Predicate::in_list("c_city", cities.clone()));
        let b = join(b, "supplier", Predicate::in_list("s_city", cities));
        let b = join(b, "date", Predicate::between("d_year", 1992, 1997));
        queries.push(b.build());

        let tmpl = t("Q3.4");
        let b = builder_for(&tmpl, "Q3.4".into());
        let cities = vec!["UNITED KI1", "UNITED KI5"];
        let b = join(b, "customer", Predicate::in_list("c_city", cities.clone()));
        let b = join(b, "supplier", Predicate::in_list("s_city", cities));
        let b = join(b, "date", Predicate::eq("d_yearmonth", "Dec1997"));
        queries.push(b.build());
    }

    // Flight 4 — profit queries over all four dimensions.
    {
        let tmpl = t("Q4.1");
        let b = builder_for(&tmpl, "Q4.1".into());
        let b = join(b, "customer", Predicate::eq("c_region", "AMERICA"));
        let b = join(b, "supplier", Predicate::eq("s_region", "AMERICA"));
        let b = join(
            b,
            "part",
            Predicate::in_list("p_mfgr", vec!["MFGR#1", "MFGR#2"]),
        );
        let b = join(b, "date", Predicate::True);
        queries.push(b.build());

        let tmpl = t("Q4.2");
        let b = builder_for(&tmpl, "Q4.2".into());
        let b = join(b, "customer", Predicate::eq("c_region", "AMERICA"));
        let b = join(b, "supplier", Predicate::eq("s_region", "AMERICA"));
        let b = join(
            b,
            "part",
            Predicate::in_list("p_mfgr", vec!["MFGR#1", "MFGR#2"]),
        );
        let b = join(b, "date", Predicate::in_list("d_year", vec![1997i64, 1998]));
        queries.push(b.build());

        let tmpl = t("Q4.3");
        let b = builder_for(&tmpl, "Q4.3".into());
        let b = join(b, "customer", Predicate::eq("c_region", "AMERICA"));
        let b = join(b, "supplier", Predicate::eq("s_nation", "UNITED STATES"));
        let b = join(b, "part", Predicate::eq("p_category", "MFGR#14"));
        let b = join(b, "date", Predicate::in_list("d_year", vec![1997i64, 1998]));
        queries.push(b.build());
    }

    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{SsbConfig, SsbDataSet};
    use cjoin_storage::SnapshotId;

    #[test]
    fn ten_workload_templates_in_flights_2_to_4() {
        let ts = workload_templates();
        assert_eq!(ts.len(), 10);
        assert_eq!(
            ts.iter()
                .filter(|t| t.flight == QueryFlight::Flight2)
                .count(),
            3
        );
        assert_eq!(
            ts.iter()
                .filter(|t| t.flight == QueryFlight::Flight3)
                .count(),
            4
        );
        assert_eq!(
            ts.iter()
                .filter(|t| t.flight == QueryFlight::Flight4)
                .count(),
            3
        );
        // Every template joins 3 or 4 dimensions and has at least one aggregate.
        for t in &ts {
            assert!((3..=4).contains(&t.dimensions.len()), "{}", t.id);
            assert!(!t.aggregates.is_empty(), "{}", t.id);
            assert!(!t.group_by.is_empty(), "{}", t.id);
        }
    }

    #[test]
    fn template_lookup_by_id() {
        assert_eq!(template_by_id("Q4.2").unwrap().dimensions.len(), 4);
        assert!(template_by_id("Q1.1").is_none());
        assert!(template_by_id("nope").is_none());
    }

    #[test]
    fn classic_queries_bind_against_generated_data() {
        let ds = SsbDataSet::generate(SsbConfig::for_tests(0.001, 3));
        let catalog = ds.catalog();
        let queries = classic_queries();
        assert_eq!(queries.len(), 10);
        for q in &queries {
            q.bind(&catalog)
                .unwrap_or_else(|e| panic!("{} does not bind: {e}", q.name));
        }
    }

    #[test]
    fn classic_queries_produce_plausible_results() {
        let ds = SsbDataSet::generate(SsbConfig::for_tests(0.002, 3));
        let catalog = ds.catalog();
        // Q3.1 (region = ASIA on both sides, 6 of 7 years) must select a reasonable
        // number of groups; Q2.1 groups by (year, brand) and must produce rows too.
        for q in classic_queries()
            .iter()
            .filter(|q| q.name == "Q2.1" || q.name == "Q3.1")
        {
            let result =
                cjoin_query::reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap();
            assert!(
                !result.is_empty(),
                "{} returned an empty result on generated data",
                q.name
            );
        }
    }

    #[test]
    fn flight4_queries_group_by_year() {
        for q in classic_queries()
            .iter()
            .filter(|q| q.name.starts_with("Q4"))
        {
            assert_eq!(q.group_by[0], ColumnRef::dim("date", "d_year"));
            assert_eq!(
                q.aggregates.len(),
                2,
                "profit = SUM(revenue) - SUM(supplycost)"
            );
            assert_eq!(q.dimensions.len(), 4);
        }
    }
}
