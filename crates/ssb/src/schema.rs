//! The five SSB table schemas.
//!
//! Column names and order follow the Star Schema Benchmark specification (O'Neil,
//! O'Neil & Chen). Dates are stored as `yyyymmdd` integers (as `dbgen` emits them),
//! money amounts as integer cents-free values (SSB uses whole currency units), and
//! low-cardinality text attributes as strings.

use cjoin_storage::{Column, Schema};

/// Names of the four dimension tables, in the order used throughout the workspace.
pub const DIMENSION_TABLES: [&str; 4] = ["date", "customer", "supplier", "part"];

/// Name of the fact table.
pub const FACT_TABLE: &str = "lineorder";

/// Schema of the `lineorder` fact table (17 columns).
pub fn lineorder_schema() -> Schema {
    Schema::new(
        FACT_TABLE,
        vec![
            Column::int("lo_orderkey"),
            Column::int("lo_linenumber"),
            Column::int("lo_custkey"),
            Column::int("lo_partkey"),
            Column::int("lo_suppkey"),
            Column::int("lo_orderdate"),
            Column::str("lo_orderpriority"),
            Column::int("lo_shippriority"),
            Column::int("lo_quantity"),
            Column::int("lo_extendedprice"),
            Column::int("lo_ordtotalprice"),
            Column::int("lo_discount"),
            Column::int("lo_revenue"),
            Column::int("lo_supplycost"),
            Column::int("lo_tax"),
            Column::int("lo_commitdate"),
            Column::str("lo_shipmode"),
        ],
    )
}

/// Schema of the `date` dimension (17 columns).
pub fn date_schema() -> Schema {
    Schema::new(
        "date",
        vec![
            Column::int("d_datekey"),
            Column::str("d_date"),
            Column::str("d_dayofweek"),
            Column::str("d_month"),
            Column::int("d_year"),
            Column::int("d_yearmonthnum"),
            Column::str("d_yearmonth"),
            Column::int("d_daynuminweek"),
            Column::int("d_daynuminmonth"),
            Column::int("d_daynuminyear"),
            Column::int("d_monthnuminyear"),
            Column::int("d_weeknuminyear"),
            Column::str("d_sellingseason"),
            Column::int("d_lastdayinweekfl"),
            Column::int("d_lastdayinmonthfl"),
            Column::int("d_holidayfl"),
            Column::int("d_weekdayfl"),
        ],
    )
}

/// Schema of the `customer` dimension (8 columns).
pub fn customer_schema() -> Schema {
    Schema::new(
        "customer",
        vec![
            Column::int("c_custkey"),
            Column::str("c_name"),
            Column::str("c_address"),
            Column::str("c_city"),
            Column::str("c_nation"),
            Column::str("c_region"),
            Column::str("c_phone"),
            Column::str("c_mktsegment"),
        ],
    )
}

/// Schema of the `supplier` dimension (7 columns).
pub fn supplier_schema() -> Schema {
    Schema::new(
        "supplier",
        vec![
            Column::int("s_suppkey"),
            Column::str("s_name"),
            Column::str("s_address"),
            Column::str("s_city"),
            Column::str("s_nation"),
            Column::str("s_region"),
            Column::str("s_phone"),
        ],
    )
}

/// Schema of the `part` dimension (9 columns).
pub fn part_schema() -> Schema {
    Schema::new(
        "part",
        vec![
            Column::int("p_partkey"),
            Column::str("p_name"),
            Column::str("p_mfgr"),
            Column::str("p_category"),
            Column::str("p_brand1"),
            Column::str("p_color"),
            Column::str("p_type"),
            Column::int("p_size"),
            Column::str("p_container"),
        ],
    )
}

/// Key (dimension primary key, fact foreign key) column-name pairs for each
/// dimension, used when building star queries over SSB.
pub fn join_columns(dimension: &str) -> Option<(&'static str, &'static str)> {
    match dimension {
        "date" => Some(("d_datekey", "lo_orderdate")),
        "customer" => Some(("c_custkey", "lo_custkey")),
        "supplier" => Some(("s_suppkey", "lo_suppkey")),
        "part" => Some(("p_partkey", "lo_partkey")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_arities_match_ssb_spec() {
        assert_eq!(lineorder_schema().arity(), 17);
        assert_eq!(date_schema().arity(), 17);
        assert_eq!(customer_schema().arity(), 8);
        assert_eq!(supplier_schema().arity(), 7);
        assert_eq!(part_schema().arity(), 9);
    }

    #[test]
    fn key_columns_exist_in_schemas() {
        for dim in DIMENSION_TABLES {
            let (dim_key, fact_fk) = join_columns(dim).unwrap();
            let dim_schema = match dim {
                "date" => date_schema(),
                "customer" => customer_schema(),
                "supplier" => supplier_schema(),
                "part" => part_schema(),
                _ => unreachable!(),
            };
            assert!(dim_schema.column_index(dim_key).is_ok(), "{dim}.{dim_key}");
            assert!(
                lineorder_schema().column_index(fact_fk).is_ok(),
                "{fact_fk}"
            );
        }
        assert!(join_columns("nonexistent").is_none());
    }

    #[test]
    fn fact_table_name_constant() {
        assert_eq!(lineorder_schema().table, FACT_TABLE);
        assert_eq!(DIMENSION_TABLES.len(), 4);
    }

    #[test]
    fn query_columns_used_by_templates_exist() {
        // Spot-check the columns the SSB query flights reference.
        let d = date_schema();
        for c in ["d_year", "d_yearmonth", "d_yearmonthnum", "d_weeknuminyear"] {
            assert!(d.column_index(c).is_ok(), "{c}");
        }
        let c = customer_schema();
        for col in ["c_region", "c_nation", "c_city", "c_mktsegment"] {
            assert!(c.column_index(col).is_ok(), "{col}");
        }
        let s = supplier_schema();
        for col in ["s_region", "s_nation", "s_city"] {
            assert!(s.column_index(col).is_ok(), "{col}");
        }
        let p = part_schema();
        for col in ["p_mfgr", "p_category", "p_brand1"] {
            assert!(p.column_index(col).is_ok(), "{col}");
        }
        let lo = lineorder_schema();
        for col in [
            "lo_revenue",
            "lo_supplycost",
            "lo_discount",
            "lo_quantity",
            "lo_extendedprice",
        ] {
            assert!(lo.column_index(col).is_ok(), "{col}");
        }
    }
}
