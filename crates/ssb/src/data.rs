//! Deterministic SSB data generation.
//!
//! [`SsbDataSet::generate`] builds an in-memory SSB instance whose cardinalities
//! follow the benchmark specification, scaled by a (possibly fractional) scale
//! factor so that laptop-scale experiments remain faithful in *shape*:
//!
//! | table      | rows                                        |
//! |------------|---------------------------------------------|
//! | lineorder  | `6,000,000 × sf`                            |
//! | customer   | `30,000 × sf`                               |
//! | supplier   | `2,000 × sf`                                |
//! | part       | `200,000 × (1 + log2(sf))` (for `sf ≥ 1`)   |
//! | date       | `2,557` (1992-01-01 … 1998-12-31), fixed    |
//!
//! Generation is fully deterministic given the seed, which the tests and benchmarks
//! rely on. Foreign keys are drawn uniformly from the corresponding dimension key
//! space, so every fact row joins with exactly one row of each dimension — the SSB
//! referential-integrity property CJOIN's key/foreign-key join semantics assume.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cjoin_storage::{Catalog, PartitionScheme, Row, SnapshotId, Table, Value};

use crate::dates::{date_range, CivilDate, MONTH_NAMES, WEEKDAY_NAMES};
use crate::schema;

/// The 25 TPC-H / SSB nations with their regions.
pub const NATIONS: [(&str, &str); 25] = [
    ("ALGERIA", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("EGYPT", "MIDDLE EAST"),
    ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"),
    ("JORDAN", "MIDDLE EAST"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("PERU", "AMERICA"),
    ("CHINA", "ASIA"),
    ("ROMANIA", "EUROPE"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
];

/// The five SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const MKT_SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const ORDER_PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const PART_COLORS: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
];
const PART_TYPES: [&str; 6] = [
    "ECONOMY ANODIZED",
    "LARGE BRUSHED",
    "MEDIUM POLISHED",
    "PROMO BURNISHED",
    "SMALL PLATED",
    "STANDARD BURNISHED",
];
const PART_CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];

/// The first SSB calendar day.
pub const FIRST_DATE: CivilDate = CivilDate {
    year: 1992,
    month: 1,
    day: 1,
};
/// The last SSB calendar day.
pub const LAST_DATE: CivilDate = CivilDate {
    year: 1998,
    month: 12,
    day: 31,
};

/// Configuration for SSB data generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SsbConfig {
    /// Scale factor; `1.0` is the canonical 6 M-row `lineorder`. Fractional values
    /// scale the fact and dimension cardinalities down proportionally (with small
    /// lower bounds so the dimensions never collapse).
    pub scale_factor: f64,
    /// RNG seed; the same seed and scale factor always produce the same data.
    pub seed: u64,
    /// Rows per storage page of the fact table (drives I/O accounting).
    pub fact_rows_per_page: usize,
    /// Physically cluster `lineorder` by `lo_orderdate`, as a warehouse whose fact
    /// table is range-partitioned by load date would (enables meaningful partition
    /// pruning, §5 of the paper).
    pub cluster_by_orderdate: bool,
}

impl Default for SsbConfig {
    fn default() -> Self {
        Self {
            scale_factor: 0.01,
            seed: 0x55B,
            fact_rows_per_page: 64,
            cluster_by_orderdate: false,
        }
    }
}

impl SsbConfig {
    /// Creates a configuration with the given scale factor and seed.
    pub fn new(scale_factor: f64, seed: u64) -> Self {
        Self {
            scale_factor,
            seed,
            ..Self::default()
        }
    }

    /// The scale-factor ceiling for data generated inside `cargo test`.
    ///
    /// Tests must keep data generation a rounding error in the suite's runtime
    /// (`cargo test -q` finishes in seconds); paper-shaped scale factors belong
    /// to the benches and the `experiments` binary, which opt into them
    /// explicitly via [`SsbConfig::new`].
    pub const MAX_TEST_SCALE_FACTOR: f64 = 0.01;

    /// Test-gated constructor: like [`SsbConfig::new`] but panics when
    /// `scale_factor` exceeds [`SsbConfig::MAX_TEST_SCALE_FACTOR`]. Tests that
    /// generate data must come through here (or [`SsbConfig::tiny_for_tests`])
    /// so the "datagen stays a rounding error in the suite" invariant is
    /// enforced rather than merely documented.
    ///
    /// # Panics
    /// Panics if `scale_factor > MAX_TEST_SCALE_FACTOR`.
    pub fn for_tests(scale_factor: f64, seed: u64) -> Self {
        assert!(
            scale_factor <= Self::MAX_TEST_SCALE_FACTOR,
            "test scale factor {scale_factor} exceeds MAX_TEST_SCALE_FACTOR \
             ({}); paper-shaped scales belong to benches and the experiments \
             binary",
            Self::MAX_TEST_SCALE_FACTOR
        );
        Self::new(scale_factor, seed)
    }

    /// A tiny instance for unit and integration tests (~6k `lineorder` rows):
    /// generation stays well under a second so `cargo test -q` never waits on
    /// data generation. Use this in tests instead of [`SsbConfig::new`] unless
    /// the test specifically needs a different (still tiny) shape — then use
    /// [`SsbConfig::for_tests`].
    pub fn tiny_for_tests(seed: u64) -> Self {
        Self::for_tests(0.001, seed)
    }

    /// Enables physical clustering of the fact table by order date.
    pub fn with_clustering(mut self) -> Self {
        self.cluster_by_orderdate = true;
        self
    }

    /// Number of `customer` rows at this scale factor.
    pub fn num_customers(&self) -> usize {
        ((30_000.0 * self.scale_factor).round() as usize).max(60)
    }

    /// Number of `supplier` rows at this scale factor.
    pub fn num_suppliers(&self) -> usize {
        ((2_000.0 * self.scale_factor).round() as usize).max(20)
    }

    /// Number of `part` rows at this scale factor.
    pub fn num_parts(&self) -> usize {
        let sf = self.scale_factor;
        let n = if sf >= 1.0 {
            200_000.0 * (1.0 + sf.log2())
        } else {
            200_000.0 * sf
        };
        (n.round() as usize).max(100)
    }

    /// Number of `lineorder` rows at this scale factor.
    pub fn num_lineorders(&self) -> usize {
        ((6_000_000.0 * self.scale_factor).round() as usize).max(1_000)
    }
}

/// A fully generated SSB instance: a populated [`Catalog`] plus the metadata the
/// workload generator needs (dimension key spaces).
#[derive(Debug)]
pub struct SsbDataSet {
    config: SsbConfig,
    catalog: Arc<Catalog>,
    date_keys: Vec<i64>,
}

impl SsbDataSet {
    /// Generates an SSB instance according to `config`.
    pub fn generate(config: SsbConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let catalog = Catalog::new();

        let date_keys = Self::generate_date(&catalog);
        Self::generate_customer(&catalog, &config, &mut rng);
        Self::generate_supplier(&catalog, &config, &mut rng);
        Self::generate_part(&catalog, &config, &mut rng);
        Self::generate_lineorder(&catalog, &config, &date_keys, &mut rng);

        // Declare the natural range partitioning on the order date (one partition per
        // calendar year), used by the §5 partitioning extension.
        let orderdate_col = schema::lineorder_schema()
            .column_index("lo_orderdate")
            .expect("schema");
        let boundaries = (1993..=1998).map(|y| y * 10_000 + 101).collect();
        catalog.set_fact_partitioning(
            PartitionScheme::new(orderdate_col, boundaries).expect("valid boundaries"),
        );

        Self {
            config,
            catalog: Arc::new(catalog),
            date_keys,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &SsbConfig {
        &self.config
    }

    /// The populated catalog (fact table `lineorder` + 4 dimensions).
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// All `d_datekey` values, ascending. Used by the workload generator to build
    /// date-range predicates of a chosen selectivity.
    pub fn date_keys(&self) -> &[i64] {
        &self.date_keys
    }

    /// Number of customer rows generated.
    pub fn num_customers(&self) -> usize {
        self.config.num_customers()
    }

    /// Number of supplier rows generated.
    pub fn num_suppliers(&self) -> usize {
        self.config.num_suppliers()
    }

    /// Number of part rows generated.
    pub fn num_parts(&self) -> usize {
        self.config.num_parts()
    }

    fn generate_date(catalog: &Catalog) -> Vec<i64> {
        let table = Table::new(schema::date_schema());
        let mut keys = Vec::new();
        let rows = date_range(FIRST_DATE, LAST_DATE).map(|d| {
            let key = d.to_datekey();
            keys.push(key);
            let month_name = MONTH_NAMES[(d.month - 1) as usize];
            let season = match d.month {
                12 | 1 | 2 => "Winter",
                3..=5 => "Spring",
                6..=8 => "Summer",
                _ => "Fall",
            };
            let weekday = d.weekday();
            Row::new(vec![
                Value::int(key),
                Value::str(format!("{month_name} {}, {}", d.day, d.year)),
                Value::str(WEEKDAY_NAMES[weekday as usize]),
                Value::str(month_name),
                Value::int(i64::from(d.year)),
                Value::int(i64::from(d.year) * 100 + i64::from(d.month)),
                Value::str(format!("{}{}", &month_name[..3], d.year)),
                Value::int(i64::from(weekday) + 1),
                Value::int(i64::from(d.day)),
                Value::int(i64::from(d.day_of_year())),
                Value::int(i64::from(d.month)),
                Value::int(i64::from(d.week_of_year())),
                Value::str(season),
                Value::int(i64::from(weekday == 6)),
                Value::int(i64::from(
                    d.day == crate::dates::days_in_month(d.year, d.month),
                )),
                Value::int(i64::from(d.month == 12 && d.day >= 25)),
                Value::int(i64::from(weekday < 5)),
            ])
        });
        table.insert_batch_unchecked(rows, SnapshotId::INITIAL);
        catalog.add_table(Arc::new(table));
        keys
    }

    fn city_of(nation: &str, rng: &mut StdRng) -> String {
        // SSB cities: the nation name truncated/padded to 9 characters plus a digit.
        let mut prefix: String = nation.chars().take(9).collect();
        while prefix.len() < 9 {
            prefix.push(' ');
        }
        format!("{prefix}{}", rng.gen_range(0..10))
    }

    fn phone_of(rng: &mut StdRng) -> String {
        format!(
            "{:02}-{:03}-{:03}-{:04}",
            rng.gen_range(10..35),
            rng.gen_range(100..1000),
            rng.gen_range(100..1000),
            rng.gen_range(1000..10000)
        )
    }

    fn generate_customer(catalog: &Catalog, config: &SsbConfig, rng: &mut StdRng) {
        let table = Table::new(schema::customer_schema());
        let n = config.num_customers();
        let rows = (1..=n).map(|key| {
            let (nation, region) = NATIONS[rng.gen_range(0..NATIONS.len())];
            Row::new(vec![
                Value::int(key as i64),
                Value::str(format!("Customer#{key:09}")),
                Value::str(format!("Address-{:06}", rng.gen_range(0..1_000_000))),
                Value::str(Self::city_of(nation, rng)),
                Value::str(nation),
                Value::str(region),
                Value::str(Self::phone_of(rng)),
                Value::str(MKT_SEGMENTS[rng.gen_range(0..MKT_SEGMENTS.len())]),
            ])
        });
        table.insert_batch_unchecked(rows, SnapshotId::INITIAL);
        catalog.add_table(Arc::new(table));
    }

    fn generate_supplier(catalog: &Catalog, config: &SsbConfig, rng: &mut StdRng) {
        let table = Table::new(schema::supplier_schema());
        let n = config.num_suppliers();
        let rows = (1..=n).map(|key| {
            let (nation, region) = NATIONS[rng.gen_range(0..NATIONS.len())];
            Row::new(vec![
                Value::int(key as i64),
                Value::str(format!("Supplier#{key:09}")),
                Value::str(format!("Address-{:06}", rng.gen_range(0..1_000_000))),
                Value::str(Self::city_of(nation, rng)),
                Value::str(nation),
                Value::str(region),
                Value::str(Self::phone_of(rng)),
            ])
        });
        table.insert_batch_unchecked(rows, SnapshotId::INITIAL);
        catalog.add_table(Arc::new(table));
    }

    fn generate_part(catalog: &Catalog, config: &SsbConfig, rng: &mut StdRng) {
        let table = Table::new(schema::part_schema());
        let n = config.num_parts();
        let rows = (1..=n).map(|key| {
            let mfgr_num = rng.gen_range(1..=5);
            let cat_num = rng.gen_range(1..=5);
            let brand_num = rng.gen_range(1..=40);
            let color = PART_COLORS[rng.gen_range(0..PART_COLORS.len())];
            Row::new(vec![
                Value::int(key as i64),
                Value::str(format!("{color} part {key}")),
                Value::str(format!("MFGR#{mfgr_num}")),
                Value::str(format!("MFGR#{mfgr_num}{cat_num}")),
                Value::str(format!("MFGR#{mfgr_num}{cat_num}{brand_num:02}")),
                Value::str(color),
                Value::str(PART_TYPES[rng.gen_range(0..PART_TYPES.len())]),
                Value::int(rng.gen_range(1..=50)),
                Value::str(PART_CONTAINERS[rng.gen_range(0..PART_CONTAINERS.len())]),
            ])
        });
        table.insert_batch_unchecked(rows, SnapshotId::INITIAL);
        catalog.add_table(Arc::new(table));
    }

    fn generate_lineorder(
        catalog: &Catalog,
        config: &SsbConfig,
        date_keys: &[i64],
        rng: &mut StdRng,
    ) {
        let table =
            Table::with_rows_per_page(schema::lineorder_schema(), config.fact_rows_per_page);
        let n = config.num_lineorders();
        let customers = config.num_customers() as i64;
        let suppliers = config.num_suppliers() as i64;
        let parts = config.num_parts() as i64;

        let mut rows = Vec::with_capacity(n);
        let mut orderkey = 0i64;
        let mut remaining_lines = 0u32;
        let mut order_date = date_keys[0];
        let mut order_total = 0i64;
        for _ in 0..n {
            if remaining_lines == 0 {
                orderkey += 1;
                remaining_lines = rng.gen_range(1..=7);
                order_date = date_keys[rng.gen_range(0..date_keys.len())];
                order_total = rng.gen_range(50_000..500_000);
            }
            let linenumber = i64::from(8 - remaining_lines);
            remaining_lines -= 1;

            let quantity = rng.gen_range(1..=50i64);
            let extended_price = rng.gen_range(900..=105_000i64);
            let discount = rng.gen_range(0..=10i64);
            let revenue = extended_price * (100 - discount) / 100;
            let supplycost = extended_price * 6 / 10;
            let tax = rng.gen_range(0..=8i64);
            let commit_offset = rng.gen_range(30..=90) as usize;
            let date_index = date_keys.iter().position(|&k| k == order_date).unwrap_or(0);
            let commit_date = date_keys[(date_index + commit_offset).min(date_keys.len() - 1)];

            rows.push(Row::new(vec![
                Value::int(orderkey),
                Value::int(linenumber),
                Value::int(rng.gen_range(1..=customers)),
                Value::int(rng.gen_range(1..=parts)),
                Value::int(rng.gen_range(1..=suppliers)),
                Value::int(order_date),
                Value::str(ORDER_PRIORITIES[rng.gen_range(0..ORDER_PRIORITIES.len())]),
                Value::int(0),
                Value::int(quantity),
                Value::int(extended_price),
                Value::int(order_total),
                Value::int(discount),
                Value::int(revenue),
                Value::int(supplycost),
                Value::int(tax),
                Value::int(commit_date),
                Value::str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
            ]));
        }
        if config.cluster_by_orderdate {
            let orderdate_col = schema::lineorder_schema()
                .column_index("lo_orderdate")
                .expect("schema");
            rows.sort_by_key(|row| row.int(orderdate_col));
        }
        table.insert_batch_unchecked(rows, SnapshotId::INITIAL);
        catalog.add_fact_table(Arc::new(table));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_common::FxHashSet;

    fn tiny() -> SsbDataSet {
        SsbDataSet::generate(SsbConfig::tiny_for_tests(42))
    }

    #[test]
    fn cardinalities_follow_spec() {
        let cfg = SsbConfig::new(1.0, 1);
        assert_eq!(cfg.num_customers(), 30_000);
        assert_eq!(cfg.num_suppliers(), 2_000);
        assert_eq!(cfg.num_parts(), 200_000);
        assert_eq!(cfg.num_lineorders(), 6_000_000);

        let cfg = SsbConfig::new(4.0, 1);
        assert_eq!(cfg.num_parts(), 600_000, "200k * (1 + log2(4))");

        let cfg = SsbConfig::new(0.01, 1);
        assert_eq!(cfg.num_customers(), 300);
        assert_eq!(cfg.num_suppliers(), 20);
        assert_eq!(cfg.num_lineorders(), 60_000);
    }

    #[test]
    fn generated_tables_have_expected_sizes() {
        let ds = tiny();
        let catalog = ds.catalog();
        assert_eq!(catalog.table("date").unwrap().len(), 2557);
        assert_eq!(catalog.table("customer").unwrap().len(), ds.num_customers());
        assert_eq!(catalog.table("supplier").unwrap().len(), ds.num_suppliers());
        assert_eq!(catalog.table("part").unwrap().len(), ds.num_parts());
        assert_eq!(
            catalog.fact_table().unwrap().len(),
            ds.config().num_lineorders()
        );
        assert_eq!(catalog.fact_table_name().as_deref(), Some("lineorder"));
        assert_eq!(ds.date_keys().len(), 2557);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SsbDataSet::generate(SsbConfig::for_tests(0.001, 7));
        let b = SsbDataSet::generate(SsbConfig::for_tests(0.001, 7));
        let fa = a.catalog().fact_table().unwrap();
        let fb = b.catalog().fact_table().unwrap();
        assert_eq!(fa.len(), fb.len());
        for i in [0u64, 10, 100, fa.len() as u64 - 1] {
            assert_eq!(
                fa.row(cjoin_storage::RowId(i)).unwrap(),
                fb.row(cjoin_storage::RowId(i)).unwrap(),
                "row {i} differs"
            );
        }

        let c = SsbDataSet::generate(SsbConfig::for_tests(0.001, 8));
        let fc = c.catalog().fact_table().unwrap();
        let differs = (0..100u64).any(|i| {
            fa.row(cjoin_storage::RowId(i)).unwrap() != fc.row(cjoin_storage::RowId(i)).unwrap()
        });
        assert!(differs, "different seeds should produce different data");
    }

    #[test]
    fn referential_integrity_holds() {
        let ds = tiny();
        let catalog = ds.catalog();
        let fact = catalog.fact_table().unwrap();
        let lo = schema::lineorder_schema();

        let key_set = |table: &str, col: &str| -> FxHashSet<i64> {
            let t = catalog.table(table).unwrap();
            let idx = t.schema().column_index(col).unwrap();
            let mut set = FxHashSet::default();
            t.for_each_visible(SnapshotId::INITIAL, |_, row| {
                set.insert(row.int(idx));
            });
            set
        };
        let custkeys = key_set("customer", "c_custkey");
        let suppkeys = key_set("supplier", "s_suppkey");
        let partkeys = key_set("part", "p_partkey");
        let datekeys = key_set("date", "d_datekey");

        let ck = lo.column_index("lo_custkey").unwrap();
        let sk = lo.column_index("lo_suppkey").unwrap();
        let pk = lo.column_index("lo_partkey").unwrap();
        let dk = lo.column_index("lo_orderdate").unwrap();
        fact.for_each_visible(SnapshotId::INITIAL, |_, row| {
            assert!(custkeys.contains(&row.int(ck)));
            assert!(suppkeys.contains(&row.int(sk)));
            assert!(partkeys.contains(&row.int(pk)));
            assert!(datekeys.contains(&row.int(dk)));
        });
    }

    #[test]
    fn revenue_is_consistent_with_price_and_discount() {
        let ds = tiny();
        let catalog = ds.catalog();
        let fact = catalog.fact_table().unwrap();
        let lo = schema::lineorder_schema();
        let price = lo.column_index("lo_extendedprice").unwrap();
        let discount = lo.column_index("lo_discount").unwrap();
        let revenue = lo.column_index("lo_revenue").unwrap();
        fact.for_each_visible(SnapshotId::INITIAL, |_, row| {
            let expected = row.int(price) * (100 - row.int(discount)) / 100;
            assert_eq!(row.int(revenue), expected);
            assert!((0..=10).contains(&row.int(discount)));
        });
    }

    #[test]
    fn dimension_values_are_well_formed() {
        let ds = tiny();
        let catalog = ds.catalog();

        let customer = catalog.table("customer").unwrap();
        let cs = customer.schema().clone();
        let nation_idx = cs.column_index("c_nation").unwrap();
        let region_idx = cs.column_index("c_region").unwrap();
        let city_idx = cs.column_index("c_city").unwrap();
        customer.for_each_visible(SnapshotId::INITIAL, |_, row| {
            let nation = row.get(nation_idx).as_str().unwrap().to_string();
            let region = row.get(region_idx).as_str().unwrap().to_string();
            let city = row.get(city_idx).as_str().unwrap().to_string();
            let expected_region = NATIONS.iter().find(|(n, _)| *n == nation).unwrap().1;
            assert_eq!(region, expected_region);
            assert_eq!(city.len(), 10, "city is 9-char prefix + digit: {city:?}");
        });

        let part = catalog.table("part").unwrap();
        let ps = part.schema().clone();
        let mfgr_idx = ps.column_index("p_mfgr").unwrap();
        let cat_idx = ps.column_index("p_category").unwrap();
        let brand_idx = ps.column_index("p_brand1").unwrap();
        part.for_each_visible(SnapshotId::INITIAL, |_, row| {
            let mfgr = row.get(mfgr_idx).as_str().unwrap().to_string();
            let cat = row.get(cat_idx).as_str().unwrap().to_string();
            let brand = row.get(brand_idx).as_str().unwrap().to_string();
            assert!(cat.starts_with(&mfgr), "{cat} starts with {mfgr}");
            assert!(brand.starts_with(&cat), "{brand} starts with {cat}");
        });
    }

    #[test]
    fn fact_partitioning_is_declared_per_year() {
        let ds = tiny();
        let scheme = ds.catalog().fact_partitioning().unwrap();
        assert_eq!(scheme.num_partitions(), 7);
        assert_eq!(scheme.partition_of(19920615).0, 0);
        assert_eq!(scheme.partition_of(19980101).0, 6);
    }

    #[test]
    fn clustering_orders_fact_rows_by_orderdate() {
        let ds = SsbDataSet::generate(SsbConfig::for_tests(0.001, 42).with_clustering());
        let catalog = ds.catalog();
        let fact = catalog.fact_table().unwrap();
        let col = schema::lineorder_schema()
            .column_index("lo_orderdate")
            .unwrap();
        let mut prev = i64::MIN;
        fact.for_each_visible(SnapshotId::INITIAL, |_, row| {
            let date = row.int(col);
            assert!(date >= prev, "rows must be ordered by lo_orderdate");
            prev = date;
        });
        // Same cardinalities as the unclustered instance.
        assert_eq!(fact.len(), SsbConfig::new(0.001, 42).num_lineorders());
    }

    #[test]
    fn date_dimension_attributes_are_consistent() {
        let ds = tiny();
        let catalog = ds.catalog();
        let date = catalog.table("date").unwrap();
        let s = date.schema().clone();
        let key_idx = s.column_index("d_datekey").unwrap();
        let year_idx = s.column_index("d_year").unwrap();
        let ymnum_idx = s.column_index("d_yearmonthnum").unwrap();
        let ym_idx = s.column_index("d_yearmonth").unwrap();
        date.for_each_visible(SnapshotId::INITIAL, |_, row| {
            let key = row.int(key_idx);
            let year = row.int(year_idx);
            assert_eq!(key / 10_000, year);
            assert_eq!(row.int(ymnum_idx), year * 100 + (key / 100) % 100);
            let ym = row.get(ym_idx).as_str().unwrap();
            assert!(ym.ends_with(&year.to_string()), "{ym}");
        });
        // Q3.4's literal must exist.
        let dec1997 = date.select(SnapshotId::INITIAL, |row| {
            row.get(ym_idx).as_str().unwrap() == "Dec1997"
        });
        assert_eq!(dec1997.len(), 31);
    }
}
