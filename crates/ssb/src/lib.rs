//! Star Schema Benchmark (SSB) substrate.
//!
//! The paper's evaluation (§6) is built entirely on the Star Schema Benchmark of
//! O'Neil et al.: a `lineorder` fact table joined to `date`, `customer`, `supplier`
//! and `part` dimensions, with 13 standard queries grouped in 4 flights. This crate
//! reproduces the pieces the experiments need:
//!
//! * [`schema`] — the five SSB table schemas.
//! * [`dates`] — minimal proleptic-Gregorian calendar arithmetic used to populate the
//!   `date` dimension.
//! * [`data`] — a deterministic, seeded generator ([`SsbDataSet`]) parameterised by a
//!   (possibly fractional) scale factor, mirroring `dbgen`'s cardinalities:
//!   `lineorder ≈ 6,000,000 × sf`, `customer = 30,000 × sf`, `supplier = 2,000 × sf`,
//!   `part = 200,000 × (1 + log2(sf))`, `date = 2,557` (7 years).
//! * [`templates`] — the SSB queries expressed as [`StarQuery`](cjoin_query::StarQuery)
//!   values. As in the paper, flight 1 (Q1.1–Q1.3) is excluded from workload
//!   generation because those queries filter the fact table directly and have no
//!   GROUP BY.
//! * [`workload`] — the paper's workload generator: templates are turned into
//!   *abstract* range templates and instantiated with a selectivity parameter `s`
//!   that controls the fraction of each referenced dimension selected (§6.1.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod dates;
pub mod schema;
pub mod templates;
pub mod workload;

pub use data::{SsbConfig, SsbDataSet};
pub use templates::{classic_queries, QueryFlight, SsbTemplate};
pub use workload::{Workload, WorkloadConfig};
