//! Minimal calendar arithmetic for the SSB `date` dimension.
//!
//! SSB's `date` dimension covers exactly seven calendar years (1992-01-01 to
//! 1998-12-31, 2 557 days). The dimension's attributes (day of week, week number,
//! selling season, ...) only need simple proleptic-Gregorian arithmetic, implemented
//! here without external dependencies.

/// A calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// Four-digit year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1–31.
    pub day: u32,
}

/// English month names, index 0 = January.
pub const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// English weekday names, index 0 = Monday.
pub const WEEKDAY_NAMES: [&str; 7] = [
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// Returns whether `year` is a leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

impl CivilDate {
    /// Creates a date, panicking on out-of-range components.
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "invalid month {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "invalid day {day}"
        );
        Self { year, month, day }
    }

    /// Encodes the date as the SSB `yyyymmdd` integer key.
    pub fn to_datekey(self) -> i64 {
        i64::from(self.year) * 10_000 + i64::from(self.month) * 100 + i64::from(self.day)
    }

    /// Decodes an SSB `yyyymmdd` integer key.
    pub fn from_datekey(key: i64) -> Self {
        let year = (key / 10_000) as i32;
        let month = ((key / 100) % 100) as u32;
        let day = (key % 100) as u32;
        Self::new(year, month, day)
    }

    /// Day number since 1970-01-01 (can be negative).
    pub fn days_from_epoch(self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (index 3).
        ((self.days_from_epoch() + 3).rem_euclid(7)) as u32
    }

    /// The next calendar day.
    pub fn succ(self) -> Self {
        if self.day < days_in_month(self.year, self.month) {
            Self {
                day: self.day + 1,
                ..self
            }
        } else if self.month < 12 {
            Self {
                year: self.year,
                month: self.month + 1,
                day: 1,
            }
        } else {
            Self {
                year: self.year + 1,
                month: 1,
                day: 1,
            }
        }
    }

    /// 1-based day number within the year.
    pub fn day_of_year(self) -> u32 {
        (1..self.month)
            .map(|m| days_in_month(self.year, m))
            .sum::<u32>()
            + self.day
    }

    /// Week number within the year (1-based, week 1 starts on January 1st).
    pub fn week_of_year(self) -> u32 {
        (self.day_of_year() - 1) / 7 + 1
    }
}

/// Iterates every day from `start` to `end` inclusive.
pub fn date_range(start: CivilDate, end: CivilDate) -> impl Iterator<Item = CivilDate> {
    let mut current = Some(start);
    std::iter::from_fn(move || {
        let date = current?;
        if date > end {
            current = None;
            return None;
        }
        current = Some(date.succ());
        Some(date)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(1992));
        assert!(is_leap_year(1996));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(1995));
    }

    #[test]
    fn month_lengths() {
        assert_eq!(days_in_month(1992, 2), 29);
        assert_eq!(days_in_month(1993, 2), 28);
        assert_eq!(days_in_month(1995, 4), 30);
        assert_eq!(days_in_month(1995, 12), 31);
    }

    #[test]
    #[should_panic(expected = "invalid month")]
    fn invalid_month_panics() {
        days_in_month(1992, 13);
    }

    #[test]
    fn datekey_roundtrip() {
        let d = CivilDate::new(1994, 7, 15);
        assert_eq!(d.to_datekey(), 19940715);
        assert_eq!(CivilDate::from_datekey(19940715), d);
    }

    #[test]
    fn weekday_of_known_dates() {
        // 1992-01-01 was a Wednesday, 1998-12-31 a Thursday, 1970-01-01 a Thursday.
        assert_eq!(CivilDate::new(1992, 1, 1).weekday(), 2);
        assert_eq!(CivilDate::new(1998, 12, 31).weekday(), 3);
        assert_eq!(CivilDate::new(1970, 1, 1).weekday(), 3);
        assert_eq!(
            WEEKDAY_NAMES[CivilDate::new(1995, 6, 13).weekday() as usize],
            "Tuesday"
        );
    }

    #[test]
    fn succ_handles_month_and_year_boundaries() {
        assert_eq!(
            CivilDate::new(1992, 1, 31).succ(),
            CivilDate::new(1992, 2, 1)
        );
        assert_eq!(
            CivilDate::new(1992, 12, 31).succ(),
            CivilDate::new(1993, 1, 1)
        );
        assert_eq!(
            CivilDate::new(1992, 2, 28).succ(),
            CivilDate::new(1992, 2, 29)
        );
        assert_eq!(
            CivilDate::new(1993, 2, 28).succ(),
            CivilDate::new(1993, 3, 1)
        );
    }

    #[test]
    fn ssb_date_range_has_2557_days() {
        let count = date_range(CivilDate::new(1992, 1, 1), CivilDate::new(1998, 12, 31)).count();
        assert_eq!(count, 2557);
    }

    #[test]
    fn day_and_week_of_year() {
        assert_eq!(CivilDate::new(1995, 1, 1).day_of_year(), 1);
        assert_eq!(CivilDate::new(1995, 12, 31).day_of_year(), 365);
        assert_eq!(CivilDate::new(1992, 12, 31).day_of_year(), 366);
        assert_eq!(CivilDate::new(1995, 1, 1).week_of_year(), 1);
        assert_eq!(CivilDate::new(1995, 1, 8).week_of_year(), 2);
        assert!(CivilDate::new(1995, 12, 31).week_of_year() <= 53);
    }

    #[test]
    fn days_from_epoch_matches_known_values() {
        assert_eq!(CivilDate::new(1970, 1, 1).days_from_epoch(), 0);
        assert_eq!(CivilDate::new(1970, 1, 2).days_from_epoch(), 1);
        assert_eq!(CivilDate::new(1969, 12, 31).days_from_epoch(), -1);
        assert_eq!(CivilDate::new(2000, 1, 1).days_from_epoch(), 10957);
    }

    #[test]
    #[should_panic(expected = "invalid day")]
    fn invalid_day_panics() {
        CivilDate::new(1993, 2, 29);
    }

    #[test]
    fn date_ordering_follows_calendar() {
        assert!(CivilDate::new(1992, 1, 31) < CivilDate::new(1992, 2, 1));
        assert!(CivilDate::new(1992, 12, 31) < CivilDate::new(1993, 1, 1));
    }
}
