//! Selection predicates.
//!
//! A predicate references the tuple variable of exactly one table (the paper's
//! `c_ij`), but within that restriction can be arbitrarily complex: comparisons,
//! ranges, IN-lists, and boolean combinations. Predicates are written against column
//! *names* and then [bound](Predicate::bind) against a concrete [`Schema`], which
//! resolves names to column indices once so that evaluation on the hot path is a
//! simple index access.
//!
//! NULL semantics are simplified to two-valued logic: any comparison involving NULL
//! evaluates to `false` (and `Not` negates that), which matches the behaviour star
//! schema workloads rely on in practice (SSB has no NULLs).

use std::collections::BTreeSet;
use std::fmt;

use cjoin_common::Result;
use cjoin_storage::{ColumnId, Row, Schema, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() || rhs.is_null() {
            return false;
        }
        match self {
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ne => lhs != rhs,
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Gt => lhs > rhs,
            CompareOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A selection predicate over a single table's columns (by name).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true — the implicit predicate for tables a query does not filter
    /// (`c_ij ≡ TRUE` in the paper).
    True,
    /// `column <op> literal`
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CompareOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `column BETWEEN low AND high` (inclusive on both ends).
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        low: Value,
        /// Inclusive upper bound.
        high: Value,
    },
    /// `column IN (v1, v2, ...)`
    InList {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Conjunction. An empty conjunction is `TRUE`.
    And(Vec<Predicate>),
    /// Disjunction. An empty disjunction is `FALSE`.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor: `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor: `column BETWEEN low AND high`.
    pub fn between(
        column: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        Predicate::Between {
            column: column.into(),
            low: low.into(),
            high: high.into(),
        }
    }

    /// Convenience constructor: `column IN (values...)`.
    pub fn in_list<V: Into<Value>>(column: impl Into<String>, values: Vec<V>) -> Self {
        Predicate::InList {
            column: column.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Convenience constructor: conjunction of two predicates, flattening nested
    /// conjunctions.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Returns `true` if this predicate is trivially `TRUE` (no filtering).
    pub fn is_true(&self) -> bool {
        match self {
            Predicate::True => true,
            Predicate::And(ps) => ps.iter().all(Predicate::is_true),
            _ => false,
        }
    }

    /// Collects the column names referenced by the predicate.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::True => {}
            Predicate::Compare { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::InList { column, .. } => {
                out.insert(column.clone());
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Resolves column names against `schema`, producing an evaluable predicate.
    ///
    /// # Errors
    /// Returns an unknown-column error if any referenced column is missing.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate> {
        let node = self.bind_node(schema)?;
        Ok(BoundPredicate { node })
    }

    fn bind_node(&self, schema: &Schema) -> Result<BoundNode> {
        Ok(match self {
            Predicate::True => BoundNode::True,
            Predicate::Compare { column, op, value } => BoundNode::Compare {
                column: schema.column_index(column)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::Between { column, low, high } => BoundNode::Between {
                column: schema.column_index(column)?,
                low: low.clone(),
                high: high.clone(),
            },
            Predicate::InList { column, values } => BoundNode::InList {
                column: schema.column_index(column)?,
                values: values.clone(),
            },
            Predicate::And(ps) => BoundNode::And(
                ps.iter()
                    .map(|p| p.bind_node(schema))
                    .collect::<Result<Vec<_>>>()?,
            ),
            Predicate::Or(ps) => BoundNode::Or(
                ps.iter()
                    .map(|p| p.bind_node(schema))
                    .collect::<Result<Vec<_>>>()?,
            ),
            Predicate::Not(p) => BoundNode::Not(Box::new(p.bind_node(schema)?)),
        })
    }
}

#[derive(Debug, Clone)]
enum BoundNode {
    True,
    Compare {
        column: ColumnId,
        op: CompareOp,
        value: Value,
    },
    Between {
        column: ColumnId,
        low: Value,
        high: Value,
    },
    InList {
        column: ColumnId,
        values: Vec<Value>,
    },
    And(Vec<BoundNode>),
    Or(Vec<BoundNode>),
    Not(Box<BoundNode>),
}

impl BoundNode {
    fn eval(&self, row: &Row) -> bool {
        match self {
            BoundNode::True => true,
            BoundNode::Compare { column, op, value } => op.eval(row.get(*column), value),
            BoundNode::Between { column, low, high } => {
                let v = row.get(*column);
                if v.is_null() || low.is_null() || high.is_null() {
                    false
                } else {
                    v >= low && v <= high
                }
            }
            BoundNode::InList { column, values } => {
                let v = row.get(*column);
                !v.is_null() && values.contains(v)
            }
            BoundNode::And(ps) => ps.iter().all(|p| p.eval(row)),
            BoundNode::Or(ps) => ps.iter().any(|p| p.eval(row)),
            BoundNode::Not(p) => !p.eval(row),
        }
    }
}

/// A predicate resolved against a concrete schema, ready for row evaluation.
#[derive(Debug, Clone)]
pub struct BoundPredicate {
    node: BoundNode,
}

impl BoundPredicate {
    /// Evaluates the predicate on a row of the schema it was bound against.
    #[inline]
    pub fn eval(&self, row: &Row) -> bool {
        self.node.eval(row)
    }

    /// A bound predicate that accepts every row.
    pub fn always_true() -> Self {
        BoundPredicate {
            node: BoundNode::True,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_storage::Column;

    fn schema() -> Schema {
        Schema::new(
            "d_date",
            vec![
                Column::int("d_datekey"),
                Column::int("d_year"),
                Column::str("d_month"),
            ],
        )
    }

    fn row(key: i64, year: i64, month: &str) -> Row {
        Row::new(vec![Value::int(key), Value::int(year), Value::str(month)])
    }

    #[test]
    fn compare_ops() {
        let s = schema();
        let r = row(19940115, 1994, "January");
        for (op, expect) in [
            (CompareOp::Eq, true),
            (CompareOp::Ne, false),
            (CompareOp::Le, true),
            (CompareOp::Ge, true),
            (CompareOp::Lt, false),
            (CompareOp::Gt, false),
        ] {
            let p = Predicate::Compare {
                column: "d_year".into(),
                op,
                value: Value::int(1994),
            };
            assert_eq!(p.bind(&s).unwrap().eval(&r), expect, "{op}");
        }
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        let p = Predicate::between("d_year", 1992, 1994);
        let b = p.bind(&s).unwrap();
        assert!(b.eval(&row(1, 1992, "x")));
        assert!(b.eval(&row(1, 1994, "x")));
        assert!(!b.eval(&row(1, 1995, "x")));
        assert!(!b.eval(&row(1, 1991, "x")));
    }

    #[test]
    fn in_list_matches_members() {
        let s = schema();
        let p = Predicate::in_list("d_month", vec!["January", "July"]);
        let b = p.bind(&s).unwrap();
        assert!(b.eval(&row(1, 1994, "July")));
        assert!(!b.eval(&row(1, 1994, "March")));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let p = Predicate::eq("d_year", 1994).and(Predicate::in_list("d_month", vec!["January"]));
        let b = p.bind(&s).unwrap();
        assert!(b.eval(&row(1, 1994, "January")));
        assert!(!b.eval(&row(1, 1994, "July")));

        let p = Predicate::Or(vec![
            Predicate::eq("d_year", 1992),
            Predicate::eq("d_year", 1993),
        ]);
        let b = p.bind(&s).unwrap();
        assert!(b.eval(&row(1, 1993, "x")));
        assert!(!b.eval(&row(1, 1994, "x")));

        let p = Predicate::Not(Box::new(Predicate::eq("d_year", 1994)));
        let b = p.bind(&s).unwrap();
        assert!(!b.eval(&row(1, 1994, "x")));
        assert!(b.eval(&row(1, 1990, "x")));
    }

    #[test]
    fn empty_and_or_identities() {
        let s = schema();
        assert!(Predicate::And(vec![])
            .bind(&s)
            .unwrap()
            .eval(&row(1, 1, "x")));
        assert!(!Predicate::Or(vec![])
            .bind(&s)
            .unwrap()
            .eval(&row(1, 1, "x")));
    }

    #[test]
    fn and_flattens_and_absorbs_true() {
        let p = Predicate::True.and(Predicate::eq("d_year", 1994));
        assert_eq!(p, Predicate::eq("d_year", 1994));
        let p = Predicate::eq("a", 1)
            .and(Predicate::eq("b", 2))
            .and(Predicate::eq("c", 3));
        match p {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = Schema::new("t", vec![Column::int("a")]);
        let r = Row::new(vec![Value::Null]);
        assert!(!Predicate::eq("a", 1).bind(&s).unwrap().eval(&r));
        assert!(!Predicate::between("a", 0, 10).bind(&s).unwrap().eval(&r));
        assert!(!Predicate::in_list("a", vec![1]).bind(&s).unwrap().eval(&r));
        // NOT of an unknown comparison is true under our 2VL simplification.
        assert!(Predicate::Not(Box::new(Predicate::eq("a", 1)))
            .bind(&s)
            .unwrap()
            .eval(&r));
    }

    #[test]
    fn is_true_detection() {
        assert!(Predicate::True.is_true());
        assert!(Predicate::And(vec![Predicate::True, Predicate::True]).is_true());
        assert!(!Predicate::eq("a", 1).is_true());
    }

    #[test]
    fn columns_collects_all_references() {
        let p = Predicate::eq("a", 1)
            .and(Predicate::between("b", 1, 2))
            .and(Predicate::Or(vec![
                Predicate::in_list("c", vec![1]),
                Predicate::Not(Box::new(Predicate::eq("d", 2))),
            ]));
        let cols: Vec<_> = p.columns().into_iter().collect();
        assert_eq!(cols, vec!["a", "b", "c", "d"]);
        assert!(Predicate::True.columns().is_empty());
    }

    #[test]
    fn bind_unknown_column_fails() {
        let s = schema();
        assert!(Predicate::eq("missing", 1).bind(&s).is_err());
        assert!(Predicate::And(vec![Predicate::eq("missing", 1)])
            .bind(&s)
            .is_err());
    }

    #[test]
    fn always_true_bound_predicate() {
        assert!(BoundPredicate::always_true().eval(&row(1, 1, "x")));
    }

    #[test]
    fn compare_op_display() {
        assert_eq!(CompareOp::Eq.to_string(), "=");
        assert_eq!(CompareOp::Ge.to_string(), ">=");
    }
}
