//! Reference (oracle) evaluator.
//!
//! A deliberately simple, single-threaded star-query evaluator used as the
//! correctness oracle for both engines: build one filtered hash table per referenced
//! dimension, scan the fact table once, probe, group, aggregate. This is also the
//! physical plan shape the paper verified both commercial systems use ("a pipeline of
//! hash joins that filter a single scan of the fact table", §6.1.1) — but here without
//! any instrumentation, concurrency or I/O accounting, so it stays obviously correct.

use std::sync::Arc;

use cjoin_common::{FxHashMap, Result};
use cjoin_storage::{Catalog, Row, SnapshotId, TableScan};

use crate::aggregate::GroupedAggregator;
use crate::result::QueryResult;
use crate::star::{BoundStarQuery, StarQuery};

/// Evaluates a star query against the catalog at the given default snapshot,
/// returning its result.
///
/// The query's own snapshot (if set) takes precedence over `default_snapshot`.
///
/// # Errors
/// Fails if the query does not bind against the catalog.
pub fn evaluate(
    catalog: &Catalog,
    query: &StarQuery,
    default_snapshot: SnapshotId,
) -> Result<QueryResult> {
    let bound = query.bind(catalog)?;
    evaluate_bound(catalog, &bound, default_snapshot)
}

/// Evaluates an already-bound star query.
///
/// # Errors
/// Fails if a referenced table has disappeared from the catalog.
pub fn evaluate_bound(
    catalog: &Catalog,
    query: &BoundStarQuery,
    default_snapshot: SnapshotId,
) -> Result<QueryResult> {
    let snapshot = query.snapshot.unwrap_or(default_snapshot);

    // Build one key -> row hash table per referenced dimension, containing only the
    // rows that satisfy the query's dimension predicate.
    let mut dim_tables: Vec<FxHashMap<i64, Row>> = Vec::with_capacity(query.dimensions.len());
    for clause in &query.dimensions {
        let table = catalog.table(&clause.table)?;
        let mut map = FxHashMap::default();
        table.for_each_visible(snapshot, |_, row| {
            if clause.predicate.eval(row) {
                map.insert(row.int(clause.dim_key_column), row.clone());
            }
        });
        dim_tables.push(map);
    }

    let fact = catalog.fact_table()?;
    let mut aggregator = GroupedAggregator::new(query);
    let mut scan = TableScan::new(Arc::clone(&fact), snapshot);
    let mut dims: Vec<Option<&Row>> = Vec::with_capacity(query.dimensions.len());

    while let Some(batch) = scan.next_batch() {
        'tuple: for (_, fact_row) in &batch {
            if !query.fact_predicate_is_true && !query.fact_predicate.eval(fact_row) {
                continue;
            }
            dims.clear();
            for (clause, table) in query.dimensions.iter().zip(&dim_tables) {
                let fk = fact_row.int(clause.fact_fk_column);
                match table.get(&fk) {
                    Some(dim_row) => dims.push(Some(dim_row)),
                    None => continue 'tuple,
                }
            }
            aggregator.accumulate(fact_row, &dims);
        }
    }

    Ok(aggregator.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggValue};
    use crate::expr::Predicate;
    use crate::star::{AggregateSpec, ColumnRef};
    use cjoin_storage::{Column, Schema, Table, Value};

    /// A tiny hand-checkable warehouse:
    ///   dim_color: 1=red, 2=green, 3=blue
    ///   fact rows: (fk, amount): (1,10) (1,20) (2,5) (3,7) (2,100)
    fn tiny_catalog() -> Catalog {
        let catalog = Catalog::new();
        let dim = Table::new(Schema::new(
            "color",
            vec![Column::int("col_key"), Column::str("col_name")],
        ));
        for (k, name) in [(1, "red"), (2, "green"), (3, "blue")] {
            dim.insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)
                .unwrap();
        }
        let fact = Table::new(Schema::new(
            "sales",
            vec![Column::int("s_colorkey"), Column::int("s_amount")],
        ));
        for (fk, amount) in [(1, 10), (1, 20), (2, 5), (3, 7), (2, 100)] {
            fact.insert(
                vec![Value::int(fk), Value::int(amount)],
                SnapshotId::INITIAL,
            )
            .unwrap();
        }
        catalog.add_fact_table(Arc::new(fact));
        catalog.add_table(Arc::new(dim));
        catalog
    }

    #[test]
    fn grouped_join_aggregation() {
        let catalog = tiny_catalog();
        let q = StarQuery::builder("by_color")
            .join_dimension("color", "s_colorkey", "col_key", Predicate::True)
            .group_by(ColumnRef::dim("color", "col_name"))
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("s_amount"),
            ))
            .aggregate(AggregateSpec::count_star())
            .build();
        let r = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(
            r.aggregate_for(&[Value::str("red")]).unwrap(),
            &vec![AggValue::Int(30), AggValue::Int(2)]
        );
        assert_eq!(
            r.aggregate_for(&[Value::str("green")]).unwrap(),
            &vec![AggValue::Int(105), AggValue::Int(2)]
        );
        assert_eq!(
            r.aggregate_for(&[Value::str("blue")]).unwrap(),
            &vec![AggValue::Int(7), AggValue::Int(1)]
        );
    }

    #[test]
    fn dimension_predicate_filters_fact_tuples() {
        let catalog = tiny_catalog();
        let q = StarQuery::builder("only_green")
            .join_dimension(
                "color",
                "s_colorkey",
                "col_key",
                Predicate::eq("col_name", "green"),
            )
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("s_amount"),
            ))
            .build();
        let r = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        assert_eq!(r.num_rows(), 1);
        let row = r.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Int(105));
    }

    #[test]
    fn fact_predicate_applies() {
        let catalog = tiny_catalog();
        let q = StarQuery::builder("large_sales")
            .fact_predicate(Predicate::Compare {
                column: "s_amount".into(),
                op: crate::expr::CompareOp::Ge,
                value: Value::int(10),
            })
            .aggregate(AggregateSpec::count_star())
            .build();
        let r = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        assert_eq!(r.rows().next().unwrap().1[0], AggValue::Int(3));
    }

    #[test]
    fn unreferenced_dimension_does_not_filter() {
        let catalog = tiny_catalog();
        // No dimension joins at all: a pure fact aggregate over all 5 rows.
        let q = StarQuery::builder("all")
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("s_amount"),
            ))
            .aggregate(AggregateSpec::over(
                AggFunc::Min,
                ColumnRef::fact("s_amount"),
            ))
            .aggregate(AggregateSpec::over(
                AggFunc::Max,
                ColumnRef::fact("s_amount"),
            ))
            .build();
        let r = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        let row = r.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Int(142));
        assert_eq!(row.1[1], AggValue::Int(5));
        assert_eq!(row.1[2], AggValue::Int(100));
    }

    #[test]
    fn dangling_foreign_keys_are_dropped_by_the_join() {
        let catalog = tiny_catalog();
        // Add a fact row whose fk points to no dimension row; an inner join drops it.
        catalog
            .fact_table()
            .unwrap()
            .insert(vec![Value::int(99), Value::int(1000)], SnapshotId::INITIAL)
            .unwrap();
        let q = StarQuery::builder("joined_count")
            .join_dimension("color", "s_colorkey", "col_key", Predicate::True)
            .aggregate(AggregateSpec::count_star())
            .build();
        let r = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        assert_eq!(r.rows().next().unwrap().1[0], AggValue::Int(5));
    }

    #[test]
    fn snapshot_isolation_respected() {
        let catalog = tiny_catalog();
        let fact = catalog.fact_table().unwrap();
        // New row visible only from snapshot 5.
        fact.insert(vec![Value::int(1), Value::int(1000)], SnapshotId(5))
            .unwrap();

        let q = StarQuery::builder("count_all")
            .aggregate(AggregateSpec::count_star())
            .build();
        let before = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        assert_eq!(before.rows().next().unwrap().1[0], AggValue::Int(5));
        let after = evaluate(&catalog, &q, SnapshotId(5)).unwrap();
        assert_eq!(after.rows().next().unwrap().1[0], AggValue::Int(6));

        // Query pinned to an explicit snapshot overrides the default.
        let pinned = StarQuery::builder("pinned")
            .snapshot(SnapshotId(5))
            .aggregate(AggregateSpec::count_star())
            .build();
        let r = evaluate(&catalog, &pinned, SnapshotId::INITIAL).unwrap();
        assert_eq!(r.rows().next().unwrap().1[0], AggValue::Int(6));
    }

    #[test]
    fn empty_result_for_impossible_dimension_predicate() {
        let catalog = tiny_catalog();
        let q = StarQuery::builder("none")
            .join_dimension(
                "color",
                "s_colorkey",
                "col_key",
                Predicate::eq("col_name", "magenta"),
            )
            .group_by(ColumnRef::dim("color", "col_name"))
            .aggregate(AggregateSpec::count_star())
            .build();
        let r = evaluate(&catalog, &q, SnapshotId::INITIAL).unwrap();
        assert!(r.is_empty());
    }
}
