//! Star queries and their schema-bound form.
//!
//! A [`StarQuery`] is the template of §2.1: the fact table joined to a subset of the
//! dimension tables through key/foreign-key equi-joins, an optional selection
//! predicate per referenced dimension (`c_ij`), an optional fact predicate (`c_i0`),
//! a GROUP BY list, and a list of aggregates. Queries are written against table and
//! column *names*; [`StarQuery::bind`] resolves them against a
//! [`Catalog`](cjoin_storage::Catalog) into a [`BoundStarQuery`] whose evaluation
//! requires only integer column indices — the form consumed by the CJOIN pipeline,
//! the query-at-a-time baseline, and the reference oracle alike.

use std::fmt;

use cjoin_common::{Error, Result};
use cjoin_storage::{Catalog, ColumnId, Row, SnapshotId, Value};

use crate::aggregate::AggFunc;
use crate::expr::{BoundPredicate, Predicate};

/// Refers to either the fact table or one of the query's dimension tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TableRef {
    /// The fact table.
    Fact,
    /// A dimension table, by name.
    Dimension(String),
}

/// A named column on the fact table or a dimension table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Which table the column lives on.
    pub table: TableRef,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// A column on the fact table.
    pub fn fact(column: impl Into<String>) -> Self {
        Self {
            table: TableRef::Fact,
            column: column.into(),
        }
    }

    /// A column on a dimension table.
    pub fn dim(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: TableRef::Dimension(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            TableRef::Fact => write!(f, "{}", self.column),
            TableRef::Dimension(t) => write!(f, "{t}.{}", self.column),
        }
    }
}

/// One fact-to-dimension join plus the dimension's selection predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionClause {
    /// Dimension table name.
    pub table: String,
    /// Foreign-key column on the fact table.
    pub fact_fk_column: String,
    /// Primary-key column on the dimension table.
    pub dim_key_column: String,
    /// Selection predicate on the dimension (`c_ij`); [`Predicate::True`] when the
    /// query joins the dimension without filtering it.
    pub predicate: Predicate,
}

/// One aggregate in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column; `None` means `COUNT(*)`.
    pub input: Option<ColumnRef>,
}

impl AggregateSpec {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Self {
            func: AggFunc::Count,
            input: None,
        }
    }

    /// An aggregate over a column.
    pub fn over(func: AggFunc, input: ColumnRef) -> Self {
        Self {
            func,
            input: Some(input),
        }
    }
}

/// A star query, written against table/column names.
#[derive(Debug, Clone, PartialEq)]
pub struct StarQuery {
    /// Human-readable name (e.g. the SSB template the query was instantiated from).
    pub name: String,
    /// Selection predicate on the fact table (`c_i0`).
    pub fact_predicate: Predicate,
    /// Fact-to-dimension joins with their dimension predicates.
    pub dimensions: Vec<DimensionClause>,
    /// GROUP BY columns (possibly empty).
    pub group_by: Vec<ColumnRef>,
    /// Aggregates (the paper assumes at least one in the general case).
    pub aggregates: Vec<AggregateSpec>,
    /// Snapshot the query reads; `None` means "latest at admission time".
    pub snapshot: Option<SnapshotId>,
    /// Completion deadline, measured from submission. `None` means no deadline.
    ///
    /// Engines with predictable completion times (CJOIN) may pre-shed the query
    /// at admission when the deadline is already unreachable, and cancel it
    /// mid-scan once the deadline passes.
    pub deadline: Option<std::time::Duration>,
}

impl StarQuery {
    /// Starts building a query.
    pub fn builder(name: impl Into<String>) -> StarQueryBuilder {
        StarQueryBuilder::new(name)
    }

    /// Returns the dimension clause for `table`, if the query references it.
    pub fn dimension(&self, table: &str) -> Option<&DimensionClause> {
        self.dimensions.iter().find(|d| d.table == table)
    }

    /// Names of the referenced dimension tables, in clause order.
    pub fn dimension_names(&self) -> Vec<&str> {
        self.dimensions.iter().map(|d| d.table.as_str()).collect()
    }

    /// Resolves all names against the catalog.
    ///
    /// # Errors
    /// Fails if a table or column does not exist, or if a group-by / aggregate column
    /// references a dimension the query does not join.
    pub fn bind(&self, catalog: &Catalog) -> Result<BoundStarQuery> {
        let fact = catalog.fact_table()?;
        let fact_schema = fact.schema();

        let mut dimensions = Vec::with_capacity(self.dimensions.len());
        for clause in &self.dimensions {
            let dim = catalog.table(&clause.table)?;
            let dim_schema = dim.schema();
            dimensions.push(BoundDimensionClause {
                table: clause.table.clone(),
                fact_fk_column: fact_schema.column_index(&clause.fact_fk_column)?,
                dim_key_column: dim_schema.column_index(&clause.dim_key_column)?,
                predicate: clause.predicate.bind(dim_schema)?,
                predicate_is_true: clause.predicate.is_true(),
            });
        }

        let bind_column = |col: &ColumnRef| -> Result<BoundColumnRef> {
            match &col.table {
                TableRef::Fact => Ok(BoundColumnRef {
                    name: col.column.clone(),
                    source: ColumnSource::Fact(fact_schema.column_index(&col.column)?),
                }),
                TableRef::Dimension(table) => {
                    let clause_idx = self
                        .dimensions
                        .iter()
                        .position(|d| &d.table == table)
                        .ok_or_else(|| {
                            Error::invalid_state(format!(
                                "query '{}' references column {}.{} but does not join table {}",
                                self.name, table, col.column, table
                            ))
                        })?;
                    let dim = catalog.table(table)?;
                    Ok(BoundColumnRef {
                        name: format!("{}.{}", table, col.column),
                        source: ColumnSource::Dimension {
                            clause: clause_idx,
                            column: dim.schema().column_index(&col.column)?,
                        },
                    })
                }
            }
        };

        let group_by = self
            .group_by
            .iter()
            .map(&bind_column)
            .collect::<Result<Vec<_>>>()?;
        let aggregates = self
            .aggregates
            .iter()
            .map(|a| {
                Ok(BoundAggregateSpec {
                    func: a.func,
                    input: a.input.as_ref().map(&bind_column).transpose()?,
                    display: match &a.input {
                        Some(c) => format!("{}({})", a.func, c),
                        None => format!("{}(*)", a.func),
                    },
                })
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(BoundStarQuery {
            name: self.name.clone(),
            snapshot: self.snapshot,
            fact_predicate: self.fact_predicate.bind(fact_schema)?,
            fact_predicate_is_true: self.fact_predicate.is_true(),
            fact_predicate_raw: self.fact_predicate.clone(),
            dimensions,
            group_by,
            aggregates,
        })
    }
}

/// Builder for [`StarQuery`].
#[derive(Debug, Clone)]
pub struct StarQueryBuilder {
    name: String,
    fact_predicate: Predicate,
    dimensions: Vec<DimensionClause>,
    group_by: Vec<ColumnRef>,
    aggregates: Vec<AggregateSpec>,
    snapshot: Option<SnapshotId>,
    deadline: Option<std::time::Duration>,
}

impl StarQueryBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fact_predicate: Predicate::True,
            dimensions: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            snapshot: None,
            deadline: None,
        }
    }

    /// Sets the fact-table predicate (`c_i0`).
    pub fn fact_predicate(mut self, predicate: Predicate) -> Self {
        self.fact_predicate = predicate;
        self
    }

    /// Adds a fact-to-dimension join with a selection predicate on the dimension.
    pub fn join_dimension(
        mut self,
        table: impl Into<String>,
        fact_fk_column: impl Into<String>,
        dim_key_column: impl Into<String>,
        predicate: Predicate,
    ) -> Self {
        self.dimensions.push(DimensionClause {
            table: table.into(),
            fact_fk_column: fact_fk_column.into(),
            dim_key_column: dim_key_column.into(),
            predicate,
        });
        self
    }

    /// Adds a GROUP BY column.
    pub fn group_by(mut self, column: ColumnRef) -> Self {
        self.group_by.push(column);
        self
    }

    /// Adds an aggregate.
    pub fn aggregate(mut self, spec: AggregateSpec) -> Self {
        self.aggregates.push(spec);
        self
    }

    /// Pins the query to a specific snapshot.
    pub fn snapshot(mut self, snapshot: SnapshotId) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Sets a completion deadline, measured from submission.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Finishes the query.
    pub fn build(self) -> StarQuery {
        StarQuery {
            name: self.name,
            fact_predicate: self.fact_predicate,
            dimensions: self.dimensions,
            group_by: self.group_by,
            aggregates: self.aggregates,
            snapshot: self.snapshot,
            deadline: self.deadline,
        }
    }
}

/// Where a bound column reads its value from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSource {
    /// Column index on the fact row.
    Fact(ColumnId),
    /// Column index on the row joined by the given dimension clause.
    Dimension {
        /// Index into [`BoundStarQuery::dimensions`].
        clause: usize,
        /// Column index within the dimension row.
        column: ColumnId,
    },
}

static NULL_VALUE: Value = Value::Null;

/// A column reference resolved to physical positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundColumnRef {
    /// Display name (used for result headers).
    pub name: String,
    /// Resolved source.
    pub source: ColumnSource,
}

impl BoundColumnRef {
    /// Reads the column's value given a fact row and the joined dimension rows
    /// (indexed by clause position). Missing dimension rows read as NULL, which can
    /// only happen if a caller violates the join contract.
    #[inline]
    pub fn value<'a>(&self, fact: &'a Row, dims: &[Option<&'a Row>]) -> &'a Value {
        match &self.source {
            ColumnSource::Fact(idx) => fact.get(*idx),
            ColumnSource::Dimension { clause, column } => {
                match dims.get(*clause).copied().flatten() {
                    Some(row) => row.get(*column),
                    None => &NULL_VALUE,
                }
            }
        }
    }
}

/// An aggregate with its input resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundAggregateSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Resolved input column; `None` for `COUNT(*)`.
    pub input: Option<BoundColumnRef>,
    display: String,
}

impl BoundAggregateSpec {
    /// Human-readable label, e.g. `SUM(lo_revenue)`.
    pub fn label(&self) -> String {
        self.display.clone()
    }
}

/// A dimension clause resolved to column indices.
#[derive(Debug, Clone)]
pub struct BoundDimensionClause {
    /// Dimension table name.
    pub table: String,
    /// Foreign-key column index on the fact table.
    pub fact_fk_column: ColumnId,
    /// Key column index on the dimension table.
    pub dim_key_column: ColumnId,
    /// Bound dimension predicate.
    pub predicate: BoundPredicate,
    /// Whether the predicate is trivially TRUE (join without filtering).
    pub predicate_is_true: bool,
}

/// A star query fully resolved against a catalog.
#[derive(Debug, Clone)]
pub struct BoundStarQuery {
    /// Query name.
    pub name: String,
    /// Snapshot the query reads, if pinned.
    pub snapshot: Option<SnapshotId>,
    /// Bound fact predicate.
    pub fact_predicate: BoundPredicate,
    /// Whether the fact predicate is trivially TRUE.
    pub fact_predicate_is_true: bool,
    /// The unbound fact predicate, kept for partition-pruning analysis.
    pub fact_predicate_raw: Predicate,
    /// Bound dimension clauses, in the order given by the query.
    pub dimensions: Vec<BoundDimensionClause>,
    /// Bound GROUP BY columns.
    pub group_by: Vec<BoundColumnRef>,
    /// Bound aggregates.
    pub aggregates: Vec<BoundAggregateSpec>,
}

impl BoundStarQuery {
    /// Returns the index of the clause joining `table`, if any.
    pub fn dimension_index(&self, table: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.table == table)
    }

    /// Extracts a `[min, max]` bound that the fact predicate imposes on `column`
    /// (by fact-schema column index), if it imposes one.
    ///
    /// Used by the §5 partitioning extension to decide which fact-table partitions a
    /// query needs to scan. Only conjunctions of comparisons/BETWEENs on the column
    /// are analysed; anything else conservatively returns `None` ("all partitions").
    pub fn fact_column_range(&self, column_name: &str) -> Option<(i64, i64)> {
        fn analyse(pred: &Predicate, column: &str) -> Option<(i64, i64)> {
            match pred {
                Predicate::Between {
                    column: c,
                    low,
                    high,
                } if c == column => Some((low.as_int().ok()?, high.as_int().ok()?)),
                Predicate::Compare {
                    column: c,
                    op,
                    value,
                } if c == column => {
                    let v = value.as_int().ok()?;
                    match op {
                        crate::expr::CompareOp::Eq => Some((v, v)),
                        crate::expr::CompareOp::Le => Some((i64::MIN, v)),
                        crate::expr::CompareOp::Lt => Some((i64::MIN, v - 1)),
                        crate::expr::CompareOp::Ge => Some((v, i64::MAX)),
                        crate::expr::CompareOp::Gt => Some((v + 1, i64::MAX)),
                        crate::expr::CompareOp::Ne => None,
                    }
                }
                Predicate::And(ps) => {
                    let mut range: Option<(i64, i64)> = None;
                    for p in ps {
                        if let Some((lo, hi)) = analyse(p, column) {
                            range = Some(match range {
                                None => (lo, hi),
                                Some((l, h)) => (l.max(lo), h.min(hi)),
                            });
                        }
                    }
                    range
                }
                _ => None,
            }
        }
        analyse(&self.fact_predicate_raw, column_name)
    }
}

/// Helpers for constructing bound queries directly in unit tests of this crate.
#[doc(hidden)]
pub mod tests_support {
    use super::*;

    /// Builds a [`BoundStarQuery`] with no dimensions whose group-by columns are the
    /// given fact column indices and whose aggregates all read fact column 1.
    pub fn simple_bound_query(
        group_by_fact_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
    ) -> BoundStarQuery {
        BoundStarQuery {
            name: "test".into(),
            snapshot: None,
            fact_predicate: BoundPredicate::always_true(),
            fact_predicate_is_true: true,
            fact_predicate_raw: Predicate::True,
            dimensions: Vec::new(),
            group_by: group_by_fact_cols
                .into_iter()
                .map(|c| BoundColumnRef {
                    name: format!("col{c}"),
                    source: ColumnSource::Fact(c),
                })
                .collect(),
            aggregates: aggs
                .into_iter()
                .map(|func| BoundAggregateSpec {
                    func,
                    input: Some(BoundColumnRef {
                        name: "col1".into(),
                        source: ColumnSource::Fact(1),
                    }),
                    display: format!("{func}(col1)"),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_storage::{Column, Schema, Table};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "lineorder",
            vec![
                Column::int("lo_orderkey"),
                Column::int("lo_custkey"),
                Column::int("lo_orderdate"),
                Column::int("lo_revenue"),
            ],
        ));
        let customer = Table::new(Schema::new(
            "customer",
            vec![
                Column::int("c_custkey"),
                Column::str("c_region"),
                Column::str("c_nation"),
            ],
        ));
        catalog.add_fact_table(Arc::new(fact));
        catalog.add_table(Arc::new(customer));
        catalog
    }

    fn query() -> StarQuery {
        StarQuery::builder("test_query")
            .fact_predicate(Predicate::between("lo_orderdate", 19940101, 19941231))
            .join_dimension(
                "customer",
                "lo_custkey",
                "c_custkey",
                Predicate::eq("c_region", "ASIA"),
            )
            .group_by(ColumnRef::dim("customer", "c_nation"))
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("lo_revenue"),
            ))
            .aggregate(AggregateSpec::count_star())
            .build()
    }

    #[test]
    fn builder_populates_all_fields() {
        let q = query();
        assert_eq!(q.name, "test_query");
        assert_eq!(q.dimensions.len(), 1);
        assert_eq!(q.dimension_names(), vec!["customer"]);
        assert!(q.dimension("customer").is_some());
        assert!(q.dimension("supplier").is_none());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.aggregates.len(), 2);
        assert!(q.snapshot.is_none());
        assert!(!q.fact_predicate.is_true());
    }

    #[test]
    fn bind_resolves_all_columns() {
        let c = catalog();
        let b = query().bind(&c).unwrap();
        assert_eq!(b.dimensions.len(), 1);
        assert_eq!(b.dimensions[0].fact_fk_column, 1);
        assert_eq!(b.dimensions[0].dim_key_column, 0);
        assert!(!b.dimensions[0].predicate_is_true);
        assert!(!b.fact_predicate_is_true);
        assert_eq!(b.group_by.len(), 1);
        assert_eq!(b.group_by[0].name, "customer.c_nation");
        assert_eq!(b.aggregates[0].label(), "SUM(lo_revenue)");
        assert_eq!(b.aggregates[1].label(), "COUNT(*)");
        assert_eq!(b.dimension_index("customer"), Some(0));
        assert_eq!(b.dimension_index("part"), None);
    }

    #[test]
    fn bind_rejects_unknown_tables_and_columns() {
        let c = catalog();
        let q = StarQuery::builder("bad")
            .join_dimension("nonexistent", "lo_custkey", "x_key", Predicate::True)
            .aggregate(AggregateSpec::count_star())
            .build();
        assert!(q.bind(&c).is_err());

        let q = StarQuery::builder("bad2")
            .join_dimension(
                "customer",
                "lo_custkey",
                "c_custkey",
                Predicate::eq("c_missing", 1),
            )
            .aggregate(AggregateSpec::count_star())
            .build();
        assert!(q.bind(&c).is_err());

        // Group-by over a dimension the query does not join.
        let q = StarQuery::builder("bad3")
            .group_by(ColumnRef::dim("customer", "c_nation"))
            .aggregate(AggregateSpec::count_star())
            .build();
        assert!(q.bind(&c).is_err());
    }

    #[test]
    fn bound_column_ref_reads_fact_and_dimension_values() {
        let c = catalog();
        let b = query().bind(&c).unwrap();
        let fact_row = Row::new(vec![
            Value::int(1),
            Value::int(7),
            Value::int(19940601),
            Value::int(500),
        ]);
        let dim_row = Row::new(vec![Value::int(7), Value::str("ASIA"), Value::str("CHINA")]);

        let group_val = b.group_by[0].value(&fact_row, &[Some(&dim_row)]);
        assert_eq!(group_val.as_str().unwrap(), "CHINA");

        let agg_input = b.aggregates[0].input.as_ref().unwrap();
        assert_eq!(
            agg_input
                .value(&fact_row, &[Some(&dim_row)])
                .as_int()
                .unwrap(),
            500
        );

        // Missing dimension row reads as NULL rather than panicking.
        assert!(b.group_by[0].value(&fact_row, &[None]).is_null());
        assert!(b.group_by[0].value(&fact_row, &[]).is_null());
    }

    #[test]
    fn fact_column_range_extraction() {
        let c = catalog();
        let b = query().bind(&c).unwrap();
        assert_eq!(
            b.fact_column_range("lo_orderdate"),
            Some((19940101, 19941231))
        );
        assert_eq!(b.fact_column_range("lo_revenue"), None);

        let q2 = StarQuery::builder("range2")
            .fact_predicate(
                Predicate::Compare {
                    column: "lo_orderdate".into(),
                    op: crate::expr::CompareOp::Ge,
                    value: Value::int(19950000),
                }
                .and(Predicate::Compare {
                    column: "lo_orderdate".into(),
                    op: crate::expr::CompareOp::Lt,
                    value: Value::int(19960000),
                }),
            )
            .aggregate(AggregateSpec::count_star())
            .build()
            .bind(&c)
            .unwrap();
        assert_eq!(
            q2.fact_column_range("lo_orderdate"),
            Some((19950000, 19959999))
        );

        // Disjunctions are not analysed: conservatively None.
        let q3 = StarQuery::builder("range3")
            .fact_predicate(Predicate::Or(vec![
                Predicate::eq("lo_orderdate", 19940101),
                Predicate::eq("lo_orderdate", 19950101),
            ]))
            .aggregate(AggregateSpec::count_star())
            .build()
            .bind(&c)
            .unwrap();
        assert_eq!(q3.fact_column_range("lo_orderdate"), None);
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::fact("lo_revenue").to_string(), "lo_revenue");
        assert_eq!(
            ColumnRef::dim("customer", "c_city").to_string(),
            "customer.c_city"
        );
    }

    #[test]
    fn snapshot_builder_option() {
        let q = StarQuery::builder("s")
            .snapshot(SnapshotId(4))
            .aggregate(AggregateSpec::count_star())
            .build();
        assert_eq!(q.snapshot, Some(SnapshotId(4)));
    }
}
