//! The [`JoinEngine`] abstraction: one operator interface, many engines.
//!
//! Every engine in the workspace — the shared always-on CJOIN pipeline, the
//! query-at-a-time baseline, and the galaxy executor that composes two CJOIN
//! pipelines — answers the same class of star queries. This module defines the
//! contract they share, so harness code (the closed-loop workload driver, the
//! correctness-oracle tests, the examples) is written once against
//! `&dyn JoinEngine` and future engines (partitioned, async, multi-backend) drop
//! in without touching it. Robustness-oriented join work compares strategies the
//! same way: a single harness over interchangeable operators.
//!
//! The lifecycle is **submit → wait → shutdown**:
//!
//! * [`JoinEngine::submit`] admits a query and returns a [`QueryTicket`] — the
//!   engine-independent completion handle. Engines with an admission pipeline
//!   (CJOIN) return immediately and evaluate in the background; engines without
//!   one (the baseline) may evaluate synchronously and return a pre-resolved
//!   ticket, which preserves exactly the blocking behaviour a conventional
//!   query-at-a-time DBMS exhibits on its connection thread.
//! * [`QueryTicket::wait`] blocks until the result is available.
//! * [`JoinEngine::shutdown`] releases engine resources; it must be idempotent.
//!
//! [`JoinEngine::stats`] reports the engine-independent [`EngineStats`] counters
//! the harness uses for sanity checks and throughput accounting.

use std::fmt;
use std::time::Duration;

use cjoin_common::{Error, Result};
use cjoin_storage::Value;

use crate::result::QueryResult;
use crate::star::StarQuery;

/// Why an admitted query failed to deliver a result.
///
/// Distinguishing these outcomes is what makes supervision honest: a client
/// waiting on a ticket learns whether its query died with a pipeline role
/// ([`QueryError::StageFailed`]), ran out of time ([`QueryError::DeadlineExceeded`]),
/// was cancelled, or was shed at admission because its deadline was already
/// unreachable given the scan's current position and pass time.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A pipeline role (scan worker, filter stage, distributor shard, ...)
    /// died while the query was in flight. The engine degrades and stays
    /// serviceable, but this query's partial state was discarded.
    StageFailed {
        /// Display name of the role that failed (e.g. `distributor-shard-1`).
        role: String,
        /// Panic payload or disconnect detail, best effort.
        detail: String,
    },
    /// The query's deadline passed before it completed; it was cancelled
    /// mid-scan and its partial state released.
    DeadlineExceeded {
        /// The deadline the query was submitted with.
        deadline: Duration,
    },
    /// The query was cancelled by the client before completion.
    Cancelled,
    /// Admission control refused the query outright: its estimated completion
    /// time (current scan position + last pass time) already exceeded its
    /// deadline, so running it would only waste shared-scan work.
    ShedAtAdmission {
        /// The unreachable deadline.
        deadline: Duration,
        /// The admission-time completion estimate that exceeded it.
        estimated: Duration,
    },
    /// Any other engine failure (binding, admission, shutdown, ...).
    Engine(Error),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::StageFailed { role, detail } => {
                write!(f, "pipeline role '{role}' failed while query in flight: {detail}")
            }
            QueryError::DeadlineExceeded { deadline } => {
                write!(f, "query exceeded its deadline of {deadline:?} and was cancelled")
            }
            QueryError::Cancelled => write!(f, "query was cancelled"),
            QueryError::ShedAtAdmission {
                deadline,
                estimated,
            } => write!(
                f,
                "query shed at admission: estimated completion {estimated:?} exceeds deadline {deadline:?}"
            ),
            QueryError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<Error> for QueryError {
    fn from(e: Error) -> Self {
        QueryError::Engine(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Engine(inner) => inner,
            other => Error::invalid_state(other.to_string()),
        }
    }
}

/// Outcome of waiting on a [`QueryTicket`]: the result, or a typed failure.
pub type QueryOutcome = std::result::Result<QueryResult, QueryError>;

/// Completion handle for one submitted query.
///
/// Tickets are single-use: [`QueryTicket::wait`] consumes the ticket and yields
/// the query's result (or the engine's typed failure).
pub trait QueryTicket: Send {
    /// Blocks until the query completes and returns its outcome.
    ///
    /// Never hangs on a failed pipeline: supervision resolves every in-flight
    /// ticket with [`QueryError::StageFailed`] when a role dies.
    fn wait(self: Box<Self>) -> QueryOutcome;

    /// Requests cancellation of the query behind this ticket, best effort.
    ///
    /// A subsequent [`QueryTicket::wait`] resolves promptly — with
    /// [`QueryError::Cancelled`] if the cancel won, or with the query's real
    /// outcome if it raced completion. Engines that evaluate synchronously
    /// (the baseline's [`ReadyTicket`]) have nothing left to cancel, hence
    /// the default no-op.
    fn cancel(&self) {}
}

/// A ticket whose result was already computed at submission time, used by
/// engines that evaluate synchronously (e.g. the query-at-a-time baseline).
pub struct ReadyTicket(QueryOutcome);

impl ReadyTicket {
    /// Wraps an already-computed outcome.
    pub fn new(outcome: QueryOutcome) -> Self {
        Self(outcome)
    }
}

impl QueryTicket for ReadyTicket {
    fn wait(self: Box<Self>) -> QueryOutcome {
        self.0
    }
}

/// Engine-independent execution statistics.
///
/// Engines with richer internal telemetry (e.g. CJOIN's per-filter pipeline
/// stats) expose it through inherent methods; these are the counters every
/// engine can report and the harness relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries accepted by the engine since it started.
    pub queries_submitted: u64,
    /// Queries that ran to completion and delivered a result.
    pub queries_completed: u64,
    /// Queries currently admitted and not yet completed.
    pub active_queries: usize,
    /// Fact tuples read by the engine's scans (shared scans count each tuple
    /// once; per-query scans count it once per query).
    pub fact_tuples_scanned: u64,
}

/// A point-in-time summary of an engine's elastic stage scheduler, when it has
/// one: the current parallelism widths per pipeline axis, how they were chosen,
/// and the last bottleneck verdict the tuning policy reached.
///
/// Lives here (not in the CJOIN crate) so the server can report it over the
/// stats RPC through `&dyn JoinEngine` without depending on engine internals,
/// mirroring [`EngineStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerSummary {
    /// Whether self-tuning is enabled (axes left at their defaults are sized
    /// from the host and re-sized from live pipeline counters).
    pub auto_tune: bool,
    /// `std::thread::available_parallelism()` as observed at engine start.
    pub available_parallelism: u64,
    /// Current number of continuous-scan workers.
    pub scan_workers: u64,
    /// Current number of filter-stage worker threads.
    pub stage_workers: u64,
    /// Current number of aggregation (Distributor) shards.
    pub distributor_shards: u64,
    /// Total resize events since engine start (startup sizing, policy
    /// decisions, forced resizes and supervision degradations).
    pub resizes: u64,
    /// Display name of the last bottleneck verdict the tuning policy reached
    /// (empty until the policy has observed a tick).
    pub last_verdict: String,
}

/// One dimension row inserted or replaced by key (the row's `key_column`
/// value identifies the row it replaces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DimUpsert {
    /// Dimension table name.
    pub table: String,
    /// Index of the column holding the dimension's key.
    pub key_column: usize,
    /// The new row.
    pub row: Vec<Value>,
}

/// One dimension row deleted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DimDelete {
    /// Dimension table name.
    pub table: String,
    /// Index of the column holding the dimension's key.
    pub key_column: usize,
    /// Key of the row to delete.
    pub key: i64,
}

/// One atomic ingestion batch: fact appends plus dimension mutations that
/// become visible together under a single new snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestBatch {
    /// Rows appended to the fact table.
    pub facts: Vec<Vec<Value>>,
    /// Dimension rows inserted or replaced by key.
    pub dim_upserts: Vec<DimUpsert>,
    /// Dimension rows deleted by key.
    pub dim_deletes: Vec<DimDelete>,
}

impl IngestBatch {
    /// Total mutation records in the batch.
    pub fn len(&self) -> usize {
        self.facts.len() + self.dim_upserts.len() + self.dim_deletes.len()
    }

    /// Whether the batch carries no mutations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What an engine durably committed for one [`IngestBatch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The snapshot epoch the batch became visible under (queries admitted
    /// from now on see it; older snapshots never do).
    pub epoch: u64,
    /// Mutation records committed (the batch's length).
    pub records: u64,
    /// Logical WAL length after the batch's commit marker, in bytes (`0` for
    /// engines without a log).
    pub wal_bytes: u64,
}

/// The shared join-engine interface: submit / wait / shutdown / stats.
pub trait JoinEngine: Send + Sync {
    /// Short display name used in experiment tables and reports.
    fn name(&self) -> &str;

    /// Admits `query` and returns its completion ticket.
    ///
    /// # Errors
    /// Propagates engine-specific admission failures: binding errors, the
    /// engine's concurrency limit, or submission after shutdown.
    fn submit(&self, query: StarQuery) -> Result<Box<dyn QueryTicket>>;

    /// Convenience: submits `query` and blocks until its result is available.
    ///
    /// # Errors
    /// Propagates submission and wait errors (typed [`QueryError`] outcomes are
    /// flattened into [`cjoin_common::Error`] here; callers that care about the
    /// distinction should use [`JoinEngine::submit`] + [`QueryTicket::wait`]).
    fn execute(&self, query: &StarQuery) -> Result<QueryResult> {
        self.submit(query.clone())?.wait().map_err(Error::from)
    }

    /// Engine-independent execution counters.
    fn stats(&self) -> EngineStats;

    /// The engine's current completion-time estimate for a freshly admitted
    /// query: install latency plus one full scan cycle at the observed scan
    /// rate. `None` when the engine has no estimate yet (no completed pass) or
    /// does not model one (the baseline). Admission layers — CJOIN's own
    /// pre-shed and the server front door — quote deadlines against this.
    fn quote_eta(&self) -> Option<Duration> {
        None
    }

    /// The engine's elastic-scheduler summary: current per-axis parallelism
    /// widths and the last bottleneck verdict. `None` for engines without a
    /// stage scheduler (the baseline, remote engines talking to an old
    /// server).
    fn scheduler_summary(&self) -> Option<SchedulerSummary> {
        None
    }

    /// Atomically applies one ingestion batch: every mutation becomes visible
    /// together under a single new snapshot, and — for engines with a
    /// write-ahead log — only after the batch's commit marker is durable.
    /// Queries already in flight (pinned at older snapshots) never observe any
    /// part of the batch.
    ///
    /// # Errors
    /// The default rejects ingestion (engines without a mutation path); other
    /// failures are engine-specific (schema mismatch, log I/O, shutdown). On
    /// error nothing of the batch is visible.
    fn ingest(&self, batch: IngestBatch) -> Result<IngestReceipt> {
        let _ = batch;
        Err(Error::invalid_state(format!(
            "engine '{}' does not support ingestion",
            self.name()
        )))
    }

    /// Releases the engine's resources (threads, pipelines). Idempotent; after
    /// shutdown, [`JoinEngine::submit`] fails.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_ticket_returns_its_outcome() {
        let ok: Box<dyn QueryTicket> = Box::new(ReadyTicket::new(Ok(QueryResult::default())));
        assert!(ok.wait().is_ok());
        let err: Box<dyn QueryTicket> = Box::new(ReadyTicket::new(Err(QueryError::Engine(
            Error::invalid_state("boom"),
        ))));
        assert!(err.wait().is_err());
    }

    #[test]
    fn query_error_round_trips_through_common_error() {
        let e = QueryError::StageFailed {
            role: "distributor-shard-1".into(),
            detail: "injected panic".into(),
        };
        let common: Error = e.clone().into();
        assert!(common.to_string().contains("distributor-shard-1"));
        let engine = QueryError::Engine(Error::invalid_state("boom"));
        let common: Error = engine.into();
        assert!(common.to_string().contains("boom"));
    }

    #[test]
    fn deadline_errors_render_their_budgets() {
        let e = QueryError::ShedAtAdmission {
            deadline: Duration::from_millis(5),
            estimated: Duration::from_millis(40),
        };
        let msg = e.to_string();
        assert!(msg.contains("5ms") && msg.contains("40ms"), "{msg}");
        let e = QueryError::DeadlineExceeded {
            deadline: Duration::from_millis(7),
        };
        assert!(e.to_string().contains("7ms"));
    }

    #[test]
    fn engine_stats_default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.queries_submitted, 0);
        assert_eq!(s.queries_completed, 0);
        assert_eq!(s.active_queries, 0);
        assert_eq!(s.fact_tuples_scanned, 0);
    }
}
