//! The [`JoinEngine`] abstraction: one operator interface, many engines.
//!
//! Every engine in the workspace — the shared always-on CJOIN pipeline, the
//! query-at-a-time baseline, and the galaxy executor that composes two CJOIN
//! pipelines — answers the same class of star queries. This module defines the
//! contract they share, so harness code (the closed-loop workload driver, the
//! correctness-oracle tests, the examples) is written once against
//! `&dyn JoinEngine` and future engines (partitioned, async, multi-backend) drop
//! in without touching it. Robustness-oriented join work compares strategies the
//! same way: a single harness over interchangeable operators.
//!
//! The lifecycle is **submit → wait → shutdown**:
//!
//! * [`JoinEngine::submit`] admits a query and returns a [`QueryTicket`] — the
//!   engine-independent completion handle. Engines with an admission pipeline
//!   (CJOIN) return immediately and evaluate in the background; engines without
//!   one (the baseline) may evaluate synchronously and return a pre-resolved
//!   ticket, which preserves exactly the blocking behaviour a conventional
//!   query-at-a-time DBMS exhibits on its connection thread.
//! * [`QueryTicket::wait`] blocks until the result is available.
//! * [`JoinEngine::shutdown`] releases engine resources; it must be idempotent.
//!
//! [`JoinEngine::stats`] reports the engine-independent [`EngineStats`] counters
//! the harness uses for sanity checks and throughput accounting.

use cjoin_common::Result;

use crate::result::QueryResult;
use crate::star::StarQuery;

/// Completion handle for one submitted query.
///
/// Tickets are single-use: [`QueryTicket::wait`] consumes the ticket and yields
/// the query's result (or the engine's failure).
pub trait QueryTicket: Send {
    /// Blocks until the query completes and returns its result.
    ///
    /// # Errors
    /// Fails if the engine shut down (or otherwise failed) before the query
    /// completed.
    fn wait(self: Box<Self>) -> Result<QueryResult>;
}

/// A ticket whose result was already computed at submission time, used by
/// engines that evaluate synchronously (e.g. the query-at-a-time baseline).
pub struct ReadyTicket(Result<QueryResult>);

impl ReadyTicket {
    /// Wraps an already-computed outcome.
    pub fn new(outcome: Result<QueryResult>) -> Self {
        Self(outcome)
    }
}

impl QueryTicket for ReadyTicket {
    fn wait(self: Box<Self>) -> Result<QueryResult> {
        self.0
    }
}

/// Engine-independent execution statistics.
///
/// Engines with richer internal telemetry (e.g. CJOIN's per-filter pipeline
/// stats) expose it through inherent methods; these are the counters every
/// engine can report and the harness relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries accepted by the engine since it started.
    pub queries_submitted: u64,
    /// Queries that ran to completion and delivered a result.
    pub queries_completed: u64,
    /// Queries currently admitted and not yet completed.
    pub active_queries: usize,
    /// Fact tuples read by the engine's scans (shared scans count each tuple
    /// once; per-query scans count it once per query).
    pub fact_tuples_scanned: u64,
}

/// The shared join-engine interface: submit / wait / shutdown / stats.
pub trait JoinEngine: Send + Sync {
    /// Short display name used in experiment tables and reports.
    fn name(&self) -> &str;

    /// Admits `query` and returns its completion ticket.
    ///
    /// # Errors
    /// Propagates engine-specific admission failures: binding errors, the
    /// engine's concurrency limit, or submission after shutdown.
    fn submit(&self, query: StarQuery) -> Result<Box<dyn QueryTicket>>;

    /// Convenience: submits `query` and blocks until its result is available.
    ///
    /// # Errors
    /// Propagates submission and wait errors.
    fn execute(&self, query: &StarQuery) -> Result<QueryResult> {
        self.submit(query.clone())?.wait()
    }

    /// Engine-independent execution counters.
    fn stats(&self) -> EngineStats;

    /// Releases the engine's resources (threads, pipelines). Idempotent; after
    /// shutdown, [`JoinEngine::submit`] fails.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_common::Error;

    #[test]
    fn ready_ticket_returns_its_outcome() {
        let ok: Box<dyn QueryTicket> = Box::new(ReadyTicket::new(Ok(QueryResult::default())));
        assert!(ok.wait().is_ok());
        let err: Box<dyn QueryTicket> =
            Box::new(ReadyTicket::new(Err(Error::invalid_state("boom"))));
        assert!(err.wait().is_err());
    }

    #[test]
    fn engine_stats_default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.queries_submitted, 0);
        assert_eq!(s.queries_completed, 0);
        assert_eq!(s.active_queries, 0);
        assert_eq!(s.fact_tuples_scanned, 0);
    }
}
