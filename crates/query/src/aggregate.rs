//! Aggregate functions and grouped aggregation.
//!
//! The Distributor pipes each surviving fact tuple to the aggregation operators of
//! the queries whose bit is set (§3.2.2); those operators are ordinary hash-based
//! GROUP BY / aggregate evaluators. The same [`GroupedAggregator`] is used by the
//! CJOIN distributor, the query-at-a-time baseline, and the reference oracle, so
//! result comparisons across engines exercise identical aggregation code.

use std::fmt;

use cjoin_common::FxHashMap;
use cjoin_storage::{Row, Value};

use crate::result::QueryResult;
use crate::star::{BoundAggregateSpec, BoundColumnRef, BoundStarQuery};

/// SQL aggregate functions supported by the star-query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)` (NULLs excluded for the column form).
    Count,
    /// `SUM(col)`
    Sum,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `AVG(col)`
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// A finalized aggregate value.
///
/// Sums are carried in 128-bit integers internally (SSB revenue sums overflow `i64`
/// at larger scale factors when many rows share a group), and averages finalize to
/// floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Integer result (COUNT, SUM, MIN, MAX over integer columns).
    Int(i128),
    /// Floating-point result (AVG).
    Float(f64),
    /// String result (MIN/MAX over string columns).
    Str(String),
    /// No qualifying input rows.
    Null,
}

impl AggValue {
    /// Approximate equality: exact for integers/strings/null, relative tolerance
    /// `1e-9` for floats. Used when comparing results across engines.
    pub fn approx_eq(&self, other: &AggValue) -> bool {
        match (self, other) {
            (AggValue::Int(a), AggValue::Int(b)) => a == b,
            (AggValue::Str(a), AggValue::Str(b)) => a == b,
            (AggValue::Null, AggValue::Null) => true,
            (AggValue::Float(a), AggValue::Float(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= 1e-9 * scale
            }
            // Int/Float cross comparisons occur when one engine keeps an average of an
            // exact integer; treat them as comparable.
            (AggValue::Int(a), AggValue::Float(b)) | (AggValue::Float(b), AggValue::Int(a)) => {
                let a = *a as f64;
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= 1e-9 * scale
            }
            _ => false,
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::Int(i) => write!(f, "{i}"),
            AggValue::Float(x) => write!(f, "{x}"),
            AggValue::Str(s) => write!(f, "{s}"),
            AggValue::Null => write!(f, "NULL"),
        }
    }
}

/// Running state of a single aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum { sum: i128, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: i128, count: u64 },
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0,
                seen: false,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0, count: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                // COUNT(*) passes None; COUNT(col) passes Some and skips NULLs.
                match value {
                    None => *c += 1,
                    Some(v) if !v.is_null() => *c += 1,
                    Some(_) => {}
                }
            }
            AggState::Sum { sum, seen } => {
                if let Some(Value::Int(i)) = value {
                    *sum += i128::from(*i);
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(Value::Int(i)) = value {
                    *sum += i128::from(*i);
                    *count += 1;
                }
            }
        }
    }

    /// Folds another partial state of the *same* aggregate into this one. Takes the
    /// other state by value so merging moves accumulated `Value`s instead of
    /// cloning them — partial-state merges are on the sharded distributor's
    /// query-end path.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum { sum: a, seen: sa }, AggState::Sum { sum: b, seen: sb }) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| &bv < av) {
                        *a = Some(bv);
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| &bv > av) {
                        *a = Some(bv);
                    }
                }
            }
            (AggState::Avg { sum: a, count: ca }, AggState::Avg { sum: b, count: cb }) => {
                *a += b;
                *ca += cb;
            }
            (a, b) => panic!(
                "cannot merge mismatched aggregate states ({} vs {}); partials of \
                 different queries were combined",
                a.kind(),
                b.kind()
            ),
        }
    }

    /// The state's function name, for merge-mismatch diagnostics.
    fn kind(&self) -> &'static str {
        match self {
            AggState::Count(_) => "COUNT",
            AggState::Sum { .. } => "SUM",
            AggState::Min(_) => "MIN",
            AggState::Max(_) => "MAX",
            AggState::Avg { .. } => "AVG",
        }
    }

    fn finalize(&self) -> AggValue {
        match self {
            AggState::Count(c) => AggValue::Int(i128::from(*c)),
            AggState::Sum { sum, seen } => {
                if *seen {
                    AggValue::Int(*sum)
                } else {
                    AggValue::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => match v {
                Some(Value::Int(i)) => AggValue::Int(i128::from(*i)),
                Some(Value::Str(s)) => AggValue::Str(s.to_string()),
                Some(Value::Null) | None => AggValue::Null,
            },
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    AggValue::Null
                } else {
                    AggValue::Float(*sum as f64 / *count as f64)
                }
            }
        }
    }
}

/// Hash-based GROUP BY / aggregate evaluator for one star query.
///
/// The accumulator receives, per qualifying fact tuple, the fact row plus the joining
/// dimension rows (in the order of the query's dimension clauses); group-by columns
/// and aggregate inputs may refer to either side.
#[derive(Debug)]
pub struct GroupedAggregator {
    group_by: Vec<BoundColumnRef>,
    aggregates: Vec<BoundAggregateSpec>,
    groups: FxHashMap<Vec<Value>, Vec<AggState>>,
    /// For queries with no GROUP BY we still must output a single row (of NULL/0
    /// aggregates) even when no tuple qualifies, like SQL does.
    scalar: bool,
}

impl GroupedAggregator {
    /// Creates an aggregator for the given bound query.
    pub fn new(query: &BoundStarQuery) -> Self {
        let mut agg = Self {
            group_by: query.group_by.clone(),
            aggregates: query.aggregates.clone(),
            groups: FxHashMap::default(),
            scalar: query.group_by.is_empty(),
        };
        if agg.scalar {
            agg.groups.insert(Vec::new(), agg.fresh_states());
        }
        agg
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.aggregates
            .iter()
            .map(|a| AggState::new(a.func))
            .collect()
    }

    /// Number of groups accumulated so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Accumulates one qualifying fact tuple.
    ///
    /// `dims[k]` must be the joining row of the query's `k`-th dimension clause;
    /// `None` is only acceptable if no group-by column or aggregate input refers to
    /// that dimension.
    pub fn accumulate(&mut self, fact: &Row, dims: &[Option<&Row>]) {
        let key: Vec<Value> = self
            .group_by
            .iter()
            .map(|c| c.value(fact, dims).clone())
            .collect();
        let states = self.groups.entry(key).or_insert_with(|| {
            self.aggregates
                .iter()
                .map(|a| AggState::new(a.func))
                .collect()
        });
        for (state, spec) in states.iter_mut().zip(&self.aggregates) {
            let input = spec.input.as_ref().map(|c| c.value(fact, dims));
            state.update(input);
        }
    }

    /// Merges another aggregator's partial state into this one. This is how the
    /// sharded distributor combines per-shard partials at query end: hash
    /// aggregation is commutative and associative, so merging the shard partials
    /// in any order yields exactly the single-aggregator result.
    ///
    /// # Panics
    /// Panics if `other` was built for a different query shape (different group-by
    /// arity, aggregate count, or aggregate functions) — combining partials of
    /// different queries is always a routing bug and must not silently corrupt a
    /// result.
    pub fn merge(&mut self, other: GroupedAggregator) {
        assert_eq!(
            self.group_by.len(),
            other.group_by.len(),
            "cannot merge partials with different group-by arity"
        );
        assert_eq!(
            self.aggregates.len(),
            other.aggregates.len(),
            "cannot merge partials with different aggregate lists"
        );
        for (key, other_states) in other.groups {
            debug_assert_eq!(key.len(), self.group_by.len());
            match self.groups.get_mut(&key) {
                Some(states) => {
                    assert_eq!(
                        states.len(),
                        other_states.len(),
                        "cannot merge partials with different aggregate states"
                    );
                    for (s, o) in states.iter_mut().zip(other_states) {
                        s.merge(o);
                    }
                }
                None => {
                    self.groups.insert(key, other_states);
                }
            }
        }
    }

    /// Finalizes into a deterministic [`QueryResult`].
    pub fn finalize(&self) -> QueryResult {
        let mut result = QueryResult::new(
            self.group_by.iter().map(|c| c.name.clone()).collect(),
            self.aggregates.iter().map(|a| a.label()).collect(),
        );
        for (key, states) in &self.groups {
            result.insert(key.clone(), states.iter().map(AggState::finalize).collect());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::tests_support::simple_bound_query;

    fn fact(a: i64, b: i64) -> Row {
        Row::new(vec![Value::int(a), Value::int(b)])
    }

    #[test]
    fn count_sum_min_max_avg_single_group() {
        // simple_bound_query: group by nothing, aggregates over fact col 1
        let q = simple_bound_query(
            vec![],
            vec![
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Avg,
            ],
        );
        let mut agg = GroupedAggregator::new(&q);
        for v in [10, 20, 30] {
            agg.accumulate(&fact(1, v), &[]);
        }
        let result = agg.finalize();
        let row = result.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Int(3));
        assert_eq!(row.1[1], AggValue::Int(60));
        assert_eq!(row.1[2], AggValue::Int(10));
        assert_eq!(row.1[3], AggValue::Int(30));
        assert!(row.1[4].approx_eq(&AggValue::Float(20.0)));
    }

    #[test]
    fn group_by_partitions_rows() {
        // group by fact col 0, SUM(fact col 1)
        let q = simple_bound_query(vec![0], vec![AggFunc::Sum]);
        let mut agg = GroupedAggregator::new(&q);
        agg.accumulate(&fact(1, 10), &[]);
        agg.accumulate(&fact(2, 5), &[]);
        agg.accumulate(&fact(1, 7), &[]);
        let result = agg.finalize();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(
            result.aggregate_for(&[Value::int(1)]).unwrap()[0],
            AggValue::Int(17)
        );
        assert_eq!(
            result.aggregate_for(&[Value::int(2)]).unwrap()[0],
            AggValue::Int(5)
        );
        assert_eq!(agg.num_groups(), 2);
    }

    #[test]
    fn scalar_query_with_no_input_produces_one_row() {
        let q = simple_bound_query(vec![], vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg]);
        let agg = GroupedAggregator::new(&q);
        let result = agg.finalize();
        assert_eq!(result.num_rows(), 1);
        let row = result.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Int(0));
        assert_eq!(row.1[1], AggValue::Null);
        assert_eq!(row.1[2], AggValue::Null);
    }

    #[test]
    fn grouped_query_with_no_input_is_empty() {
        let q = simple_bound_query(vec![0], vec![AggFunc::Count]);
        let agg = GroupedAggregator::new(&q);
        assert_eq!(agg.finalize().num_rows(), 0);
    }

    #[test]
    fn merge_combines_partial_states() {
        let q = simple_bound_query(
            vec![0],
            vec![
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Avg,
            ],
        );
        let mut a = GroupedAggregator::new(&q);
        let mut b = GroupedAggregator::new(&q);
        a.accumulate(&fact(1, 10), &[]);
        a.accumulate(&fact(2, 1), &[]);
        b.accumulate(&fact(1, 30), &[]);
        b.accumulate(&fact(3, 7), &[]);
        a.merge(b);
        let r = a.finalize();
        assert_eq!(r.num_rows(), 3);
        let g1 = r.aggregate_for(&[Value::int(1)]).unwrap();
        assert_eq!(g1[0], AggValue::Int(2));
        assert_eq!(g1[1], AggValue::Int(40));
        assert_eq!(g1[2], AggValue::Int(10));
        assert_eq!(g1[3], AggValue::Int(30));
        assert!(g1[4].approx_eq(&AggValue::Float(20.0)));
        assert_eq!(
            r.aggregate_for(&[Value::int(3)]).unwrap()[0],
            AggValue::Int(1)
        );
    }

    #[test]
    fn merging_empty_scalar_partials_keeps_one_null_row() {
        // A shard that drained no tuples for a scalar query contributes an empty
        // partial; merging any number of them must still finalize to SQL's single
        // zero/NULL row.
        let q = simple_bound_query(vec![], vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg]);
        let mut a = GroupedAggregator::new(&q);
        for _ in 0..3 {
            a.merge(GroupedAggregator::new(&q));
        }
        let r = a.finalize();
        assert_eq!(r.num_rows(), 1);
        let row = r.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Int(0));
        assert_eq!(row.1[1], AggValue::Null);
        assert_eq!(row.1[2], AggValue::Null);
    }

    #[test]
    fn merge_order_does_not_change_the_result() {
        // Commutativity/associativity over a seeded partition of the same input:
        // the property the sharded distributor's end-barrier merge relies on.
        let q = simple_bound_query(
            vec![0],
            vec![AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max],
        );
        let rows: Vec<(i64, i64)> = (0..64).map(|i| ((i * 7) % 5, (i * 31) % 23 - 11)).collect();
        let mut whole = GroupedAggregator::new(&q);
        for &(g, v) in &rows {
            whole.accumulate(&fact(g, v), &[]);
        }
        let expected = whole.finalize();
        for shards in [2usize, 3, 4] {
            let mut partials: Vec<GroupedAggregator> =
                (0..shards).map(|_| GroupedAggregator::new(&q)).collect();
            for (i, &(g, v)) in rows.iter().enumerate() {
                partials[i % shards].accumulate(&fact(g, v), &[]);
            }
            // Merge back-to-front so the fold order differs from accumulation order.
            let mut merged = partials.pop().unwrap();
            while let Some(p) = partials.pop() {
                merged.merge(p);
            }
            assert!(
                merged.finalize().approx_eq(&expected),
                "shards={shards} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different aggregate lists")]
    fn merging_partials_of_different_queries_panics() {
        let a = simple_bound_query(vec![0], vec![AggFunc::Count]);
        let b = simple_bound_query(vec![0], vec![AggFunc::Count, AggFunc::Sum]);
        GroupedAggregator::new(&a).merge(GroupedAggregator::new(&b));
    }

    #[test]
    #[should_panic(expected = "different group-by arity")]
    fn merging_partials_with_different_grouping_panics() {
        let a = simple_bound_query(vec![0], vec![AggFunc::Count]);
        let b = simple_bound_query(vec![], vec![AggFunc::Count]);
        GroupedAggregator::new(&a).merge(GroupedAggregator::new(&b));
    }

    #[test]
    fn approx_eq_semantics() {
        assert!(AggValue::Int(5).approx_eq(&AggValue::Int(5)));
        assert!(!AggValue::Int(5).approx_eq(&AggValue::Int(6)));
        assert!(AggValue::Float(1.0).approx_eq(&AggValue::Float(1.0 + 1e-12)));
        assert!(!AggValue::Float(1.0).approx_eq(&AggValue::Float(1.1)));
        assert!(AggValue::Int(2).approx_eq(&AggValue::Float(2.0)));
        assert!(AggValue::Null.approx_eq(&AggValue::Null));
        assert!(!AggValue::Null.approx_eq(&AggValue::Int(0)));
        assert!(AggValue::Str("a".into()).approx_eq(&AggValue::Str("a".into())));
        assert!(!AggValue::Str("a".into()).approx_eq(&AggValue::Str("b".into())));
    }

    #[test]
    fn agg_func_display() {
        assert_eq!(AggFunc::Count.to_string(), "COUNT");
        assert_eq!(AggFunc::Avg.to_string(), "AVG");
    }

    #[test]
    fn agg_value_display() {
        assert_eq!(AggValue::Int(3).to_string(), "3");
        assert_eq!(AggValue::Null.to_string(), "NULL");
        assert_eq!(AggValue::Str("x".into()).to_string(), "x");
    }

    #[test]
    fn min_max_over_strings() {
        let q = simple_bound_query(vec![], vec![AggFunc::Min, AggFunc::Max]);
        // Override aggregate inputs to target a string column: use a custom fact row
        // where column 1 is a string. simple_bound_query's aggregates read column 1.
        let mut agg = GroupedAggregator::new(&q);
        let r1 = Row::new(vec![Value::int(1), Value::str("EUROPE")]);
        let r2 = Row::new(vec![Value::int(1), Value::str("ASIA")]);
        agg.accumulate(&r1, &[]);
        agg.accumulate(&r2, &[]);
        let result = agg.finalize();
        let row = result.rows().next().unwrap();
        assert_eq!(row.1[0], AggValue::Str("ASIA".into()));
        assert_eq!(row.1[1], AggValue::Str("EUROPE".into()));
    }

    #[test]
    fn count_column_skips_nulls_and_sum_ignores_nulls() {
        let q = simple_bound_query(vec![], vec![AggFunc::Count, AggFunc::Sum]);
        let mut agg = GroupedAggregator::new(&q);
        agg.accumulate(&Row::new(vec![Value::int(1), Value::Null]), &[]);
        agg.accumulate(&Row::new(vec![Value::int(1), Value::int(4)]), &[]);
        let result = agg.finalize();
        let row = result.rows().next().unwrap();
        // COUNT(col) counts only non-null inputs.
        assert_eq!(row.1[0], AggValue::Int(1));
        assert_eq!(row.1[1], AggValue::Int(4));
    }
}
