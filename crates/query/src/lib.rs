//! Star-query model for the CJOIN reproduction.
//!
//! The paper's workload is the class of *star queries* (§2.1): a fact table joined to
//! a set of dimension tables through key/foreign-key equi-joins, filtered by
//! per-dimension selection predicates and an optional fact predicate, then grouped
//! and aggregated. This crate provides:
//!
//! * [`Predicate`] / [`BoundPredicate`] — arbitrarily nested selection predicates over
//!   a single table's tuple variable (the paper allows any predicate shape as long as
//!   it references only one dimension).
//! * [`StarQuery`] and its builder — the query template of §2.1, plus
//!   [`BoundStarQuery`], the schema-resolved form shared by every engine in the
//!   workspace (CJOIN, the query-at-a-time baseline, and the reference oracle).
//! * [`AggFunc`] / [`GroupedAggregator`] — SQL aggregate evaluation with group-by.
//! * [`QueryResult`] — deterministic, comparable result sets.
//! * [`JoinEngine`] — the submit/wait/shutdown/stats contract shared by every
//!   engine in the workspace, so harnesses drive engines through `&dyn JoinEngine`.
//! * [`wire`] — the length-prefixed binary encoding of queries, results and
//!   typed outcomes spoken between `cjoin-client` and `cjoin-server`.
//! * [`reference::evaluate`] — a deliberately simple single-threaded evaluator used
//!   as the correctness oracle in tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod engine;
pub mod expr;
pub mod reference;
pub mod result;
pub mod star;
pub mod wire;

pub use aggregate::{AggFunc, AggValue, GroupedAggregator};
pub use engine::{
    DimDelete, DimUpsert, EngineStats, IngestBatch, IngestReceipt, JoinEngine, QueryError,
    QueryOutcome, QueryTicket, ReadyTicket, SchedulerSummary,
};
pub use expr::{BoundPredicate, CompareOp, Predicate};
pub use result::QueryResult;
pub use star::{
    AggregateSpec, BoundAggregateSpec, BoundColumnRef, BoundDimensionClause, BoundStarQuery,
    ColumnRef, DimensionClause, StarQuery, StarQueryBuilder, TableRef,
};
