//! Length-prefixed binary wire format for the `cjoin-server` front door.
//!
//! Everything a client and server exchange — star queries, results, typed
//! [`QueryError`] outcomes, admission policies, server statistics — has a
//! hand-rolled little-endian encoding here. The build environment has no
//! registry access, so this is deliberately dependency-free: a `Vec<u8>`
//! writer, a bounds-checked [`Cursor`] reader, and one `encode`/`decode` pair
//! per type.
//!
//! # Framing
//!
//! A *frame* is a `u32` little-endian payload length followed by the payload.
//! Payloads start with a one-byte message tag ([`Request`] uses `0x01..=0x06`,
//! [`Response`] `0x81..=0x86`; the disjoint tag spaces make a desynchronised
//! peer fail loudly instead of misparsing). Frames larger than
//! [`MAX_FRAME_LEN`] are rejected before any allocation.
//!
//! # Error discipline
//!
//! Decoding NEVER panics: every read is bounds-checked and every failure is a
//! typed [`WireError`]. The server turns a `WireError` into a
//! [`Response::Protocol`] answer, which is what the malformed-frame fuzz test
//! asserts. Collection lengths are validated against the bytes actually
//! remaining in the frame, and predicate nesting is depth-limited, so a
//! hostile frame cannot make the decoder allocate unboundedly or recurse off
//! the stack.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use cjoin_common::Error;
use cjoin_storage::{SnapshotId, Value};

use crate::aggregate::{AggFunc, AggValue};
use crate::engine::{
    DimDelete, DimUpsert, EngineStats, IngestBatch, IngestReceipt, QueryError, QueryOutcome,
    SchedulerSummary,
};
use crate::expr::{CompareOp, Predicate};
use crate::result::QueryResult;
use crate::star::{AggregateSpec, ColumnRef, DimensionClause, StarQuery, TableRef};

/// Hard cap on a frame's payload length (16 MiB).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Maximum predicate nesting depth the decoder accepts.
const MAX_PREDICATE_DEPTH: u32 = 64;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed decoding failure. Never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated,
    /// The payload had bytes left over after the message was fully decoded.
    TrailingBytes(usize),
    /// An enum tag byte had no defined meaning.
    UnknownTag {
        /// The type being decoded when the unknown tag was hit.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A declared frame length exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(u64),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A declared collection length exceeded the bytes remaining in the frame.
    BadLength(u64),
    /// Predicate nesting exceeded the decoder's depth limit.
    DepthExceeded,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("frame truncated mid-field"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::UnknownTag { what, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {what}")
            }
            WireError::FrameTooLarge(n) => {
                write!(f, "declared frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::BadLength(n) => {
                write!(f, "declared collection length {n} exceeds remaining frame")
            }
            WireError::DepthExceeded => f.write_str("predicate nesting exceeds decoder limit"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::invalid_state(format!("wire protocol: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i128(buf: &mut Vec<u8>, v: i128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over one frame's payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i128(&mut self) -> Result<i128, WireError> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.collection_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a `u32` collection length and validates it against the bytes
    /// remaining (each element needs at least `min_elem_bytes`), so a hostile
    /// length cannot trigger a huge allocation.
    fn collection_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::BadLength(len as u64));
        }
        Ok(len)
    }

    /// Fails if any bytes were left unconsumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            Err(WireError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Values and aggregates
// ---------------------------------------------------------------------------

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Int(i) => {
            put_u8(buf, 1);
            put_i64(buf, *i);
        }
        Value::Str(s) => {
            put_u8(buf, 2);
            put_str(buf, s);
        }
    }
}

fn decode_value(cur: &mut Cursor<'_>) -> Result<Value, WireError> {
    match cur.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(cur.i64()?)),
        2 => Ok(Value::str(cur.str()?)),
        tag => Err(WireError::UnknownTag { what: "Value", tag }),
    }
}

fn encode_agg_value(buf: &mut Vec<u8>, v: &AggValue) {
    match v {
        AggValue::Null => put_u8(buf, 0),
        AggValue::Int(i) => {
            put_u8(buf, 1);
            put_i128(buf, *i);
        }
        AggValue::Float(x) => {
            put_u8(buf, 2);
            put_f64(buf, *x);
        }
        AggValue::Str(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
    }
}

fn decode_agg_value(cur: &mut Cursor<'_>) -> Result<AggValue, WireError> {
    match cur.u8()? {
        0 => Ok(AggValue::Null),
        1 => Ok(AggValue::Int(cur.i128()?)),
        2 => Ok(AggValue::Float(cur.f64()?)),
        3 => Ok(AggValue::Str(cur.str()?)),
        tag => Err(WireError::UnknownTag {
            what: "AggValue",
            tag,
        }),
    }
}

fn encode_agg_func(buf: &mut Vec<u8>, f: AggFunc) {
    put_u8(
        buf,
        match f {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Min => 2,
            AggFunc::Max => 3,
            AggFunc::Avg => 4,
        },
    );
}

fn decode_agg_func(cur: &mut Cursor<'_>) -> Result<AggFunc, WireError> {
    match cur.u8()? {
        0 => Ok(AggFunc::Count),
        1 => Ok(AggFunc::Sum),
        2 => Ok(AggFunc::Min),
        3 => Ok(AggFunc::Max),
        4 => Ok(AggFunc::Avg),
        tag => Err(WireError::UnknownTag {
            what: "AggFunc",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

fn encode_compare_op(buf: &mut Vec<u8>, op: CompareOp) {
    put_u8(
        buf,
        match op {
            CompareOp::Eq => 0,
            CompareOp::Ne => 1,
            CompareOp::Lt => 2,
            CompareOp::Le => 3,
            CompareOp::Gt => 4,
            CompareOp::Ge => 5,
        },
    );
}

fn decode_compare_op(cur: &mut Cursor<'_>) -> Result<CompareOp, WireError> {
    match cur.u8()? {
        0 => Ok(CompareOp::Eq),
        1 => Ok(CompareOp::Ne),
        2 => Ok(CompareOp::Lt),
        3 => Ok(CompareOp::Le),
        4 => Ok(CompareOp::Gt),
        5 => Ok(CompareOp::Ge),
        tag => Err(WireError::UnknownTag {
            what: "CompareOp",
            tag,
        }),
    }
}

fn encode_predicate(buf: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::True => put_u8(buf, 0),
        Predicate::Compare { column, op, value } => {
            put_u8(buf, 1);
            put_str(buf, column);
            encode_compare_op(buf, *op);
            encode_value(buf, value);
        }
        Predicate::Between { column, low, high } => {
            put_u8(buf, 2);
            put_str(buf, column);
            encode_value(buf, low);
            encode_value(buf, high);
        }
        Predicate::InList { column, values } => {
            put_u8(buf, 3);
            put_str(buf, column);
            put_u32(buf, values.len() as u32);
            for v in values {
                encode_value(buf, v);
            }
        }
        Predicate::And(ps) => {
            put_u8(buf, 4);
            put_u32(buf, ps.len() as u32);
            for p in ps {
                encode_predicate(buf, p);
            }
        }
        Predicate::Or(ps) => {
            put_u8(buf, 5);
            put_u32(buf, ps.len() as u32);
            for p in ps {
                encode_predicate(buf, p);
            }
        }
        Predicate::Not(inner) => {
            put_u8(buf, 6);
            encode_predicate(buf, inner);
        }
    }
}

fn decode_predicate(cur: &mut Cursor<'_>, depth: u32) -> Result<Predicate, WireError> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(WireError::DepthExceeded);
    }
    match cur.u8()? {
        0 => Ok(Predicate::True),
        1 => Ok(Predicate::Compare {
            column: cur.str()?,
            op: decode_compare_op(cur)?,
            value: decode_value(cur)?,
        }),
        2 => Ok(Predicate::Between {
            column: cur.str()?,
            low: decode_value(cur)?,
            high: decode_value(cur)?,
        }),
        3 => {
            let column = cur.str()?;
            let len = cur.collection_len(1)?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(decode_value(cur)?);
            }
            Ok(Predicate::InList { column, values })
        }
        tag @ (4 | 5) => {
            let len = cur.collection_len(1)?;
            let mut ps = Vec::with_capacity(len);
            for _ in 0..len {
                ps.push(decode_predicate(cur, depth + 1)?);
            }
            Ok(if tag == 4 {
                Predicate::And(ps)
            } else {
                Predicate::Or(ps)
            })
        }
        6 => Ok(Predicate::Not(Box::new(decode_predicate(cur, depth + 1)?))),
        tag => Err(WireError::UnknownTag {
            what: "Predicate",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Star queries
// ---------------------------------------------------------------------------

fn encode_column_ref(buf: &mut Vec<u8>, c: &ColumnRef) {
    match &c.table {
        TableRef::Fact => put_u8(buf, 0),
        TableRef::Dimension(name) => {
            put_u8(buf, 1);
            put_str(buf, name);
        }
    }
    put_str(buf, &c.column);
}

fn decode_column_ref(cur: &mut Cursor<'_>) -> Result<ColumnRef, WireError> {
    let table = match cur.u8()? {
        0 => TableRef::Fact,
        1 => TableRef::Dimension(cur.str()?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "TableRef",
                tag,
            })
        }
    };
    Ok(ColumnRef {
        table,
        column: cur.str()?,
    })
}

fn encode_option_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(buf, 0),
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
    }
}

fn decode_option_u64(cur: &mut Cursor<'_>) -> Result<Option<u64>, WireError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(cur.u64()?)),
        tag => Err(WireError::UnknownTag {
            what: "Option<u64>",
            tag,
        }),
    }
}

/// Encodes a [`StarQuery`] into `buf`.
pub fn encode_star_query(buf: &mut Vec<u8>, q: &StarQuery) {
    put_str(buf, &q.name);
    encode_predicate(buf, &q.fact_predicate);
    put_u32(buf, q.dimensions.len() as u32);
    for d in &q.dimensions {
        put_str(buf, &d.table);
        put_str(buf, &d.fact_fk_column);
        put_str(buf, &d.dim_key_column);
        encode_predicate(buf, &d.predicate);
    }
    put_u32(buf, q.group_by.len() as u32);
    for c in &q.group_by {
        encode_column_ref(buf, c);
    }
    put_u32(buf, q.aggregates.len() as u32);
    for a in &q.aggregates {
        encode_agg_func(buf, a.func);
        match &a.input {
            None => put_u8(buf, 0),
            Some(c) => {
                put_u8(buf, 1);
                encode_column_ref(buf, c);
            }
        }
    }
    encode_option_u64(buf, q.snapshot.map(|s| s.0));
    encode_option_u64(buf, q.deadline.map(|d| d.as_nanos() as u64));
}

/// Decodes a [`StarQuery`].
///
/// # Errors
/// Any malformed field yields a typed [`WireError`]; decoding never panics.
pub fn decode_star_query(cur: &mut Cursor<'_>) -> Result<StarQuery, WireError> {
    let name = cur.str()?;
    let fact_predicate = decode_predicate(cur, 0)?;
    let len = cur.collection_len(4)?;
    let mut dimensions = Vec::with_capacity(len);
    for _ in 0..len {
        dimensions.push(DimensionClause {
            table: cur.str()?,
            fact_fk_column: cur.str()?,
            dim_key_column: cur.str()?,
            predicate: decode_predicate(cur, 0)?,
        });
    }
    let len = cur.collection_len(4)?;
    let mut group_by = Vec::with_capacity(len);
    for _ in 0..len {
        group_by.push(decode_column_ref(cur)?);
    }
    let len = cur.collection_len(2)?;
    let mut aggregates = Vec::with_capacity(len);
    for _ in 0..len {
        let func = decode_agg_func(cur)?;
        let input = match cur.u8()? {
            0 => None,
            1 => Some(decode_column_ref(cur)?),
            tag => {
                return Err(WireError::UnknownTag {
                    what: "Option<ColumnRef>",
                    tag,
                })
            }
        };
        aggregates.push(AggregateSpec { func, input });
    }
    let snapshot = decode_option_u64(cur)?.map(SnapshotId);
    let deadline = decode_option_u64(cur)?.map(Duration::from_nanos);
    Ok(StarQuery {
        name,
        fact_predicate,
        dimensions,
        group_by,
        aggregates,
        snapshot,
        deadline,
    })
}

// ---------------------------------------------------------------------------
// Results and outcomes
// ---------------------------------------------------------------------------

/// Encodes a [`QueryResult`]. Row order is the result's own (deterministic,
/// key-sorted) order, so encode → decode → encode is byte-stable and the
/// served path can be compared bit-for-bit against in-process results.
pub fn encode_query_result(buf: &mut Vec<u8>, r: &QueryResult) {
    put_u32(buf, r.group_columns().len() as u32);
    for c in r.group_columns() {
        put_str(buf, c);
    }
    put_u32(buf, r.aggregate_columns().len() as u32);
    for c in r.aggregate_columns() {
        put_str(buf, c);
    }
    put_u32(buf, r.num_rows() as u32);
    for (key, aggs) in r.rows() {
        put_u32(buf, key.len() as u32);
        for v in key {
            encode_value(buf, v);
        }
        put_u32(buf, aggs.len() as u32);
        for a in aggs {
            encode_agg_value(buf, a);
        }
    }
}

/// Decodes a [`QueryResult`].
///
/// # Errors
/// Any malformed field yields a typed [`WireError`]; decoding never panics.
pub fn decode_query_result(cur: &mut Cursor<'_>) -> Result<QueryResult, WireError> {
    let len = cur.collection_len(4)?;
    let mut group_columns = Vec::with_capacity(len);
    for _ in 0..len {
        group_columns.push(cur.str()?);
    }
    let len = cur.collection_len(4)?;
    let mut aggregate_columns = Vec::with_capacity(len);
    for _ in 0..len {
        aggregate_columns.push(cur.str()?);
    }
    let mut result = QueryResult::new(group_columns, aggregate_columns);
    let rows = cur.collection_len(8)?;
    for _ in 0..rows {
        let klen = cur.collection_len(1)?;
        let mut key = Vec::with_capacity(klen);
        for _ in 0..klen {
            key.push(decode_value(cur)?);
        }
        let alen = cur.collection_len(1)?;
        let mut aggs = Vec::with_capacity(alen);
        for _ in 0..alen {
            aggs.push(decode_agg_value(cur)?);
        }
        result.insert(key, aggs);
    }
    Ok(result)
}

fn encode_query_error(buf: &mut Vec<u8>, e: &QueryError) {
    match e {
        QueryError::StageFailed { role, detail } => {
            put_u8(buf, 0);
            put_str(buf, role);
            put_str(buf, detail);
        }
        QueryError::DeadlineExceeded { deadline } => {
            put_u8(buf, 1);
            put_u64(buf, deadline.as_nanos() as u64);
        }
        QueryError::Cancelled => put_u8(buf, 2),
        QueryError::ShedAtAdmission {
            deadline,
            estimated,
        } => {
            put_u8(buf, 3);
            put_u64(buf, deadline.as_nanos() as u64);
            put_u64(buf, estimated.as_nanos() as u64);
        }
        QueryError::Engine(err) => {
            put_u8(buf, 4);
            put_str(buf, &err.to_string());
        }
    }
}

fn decode_query_error(cur: &mut Cursor<'_>) -> Result<QueryError, WireError> {
    match cur.u8()? {
        0 => Ok(QueryError::StageFailed {
            role: cur.str()?,
            detail: cur.str()?,
        }),
        1 => Ok(QueryError::DeadlineExceeded {
            deadline: Duration::from_nanos(cur.u64()?),
        }),
        2 => Ok(QueryError::Cancelled),
        3 => Ok(QueryError::ShedAtAdmission {
            deadline: Duration::from_nanos(cur.u64()?),
            estimated: Duration::from_nanos(cur.u64()?),
        }),
        4 => Ok(QueryError::Engine(Error::invalid_state(cur.str()?))),
        tag => Err(WireError::UnknownTag {
            what: "QueryError",
            tag,
        }),
    }
}

/// Encodes a full [`QueryOutcome`].
pub fn encode_outcome(buf: &mut Vec<u8>, outcome: &QueryOutcome) {
    match outcome {
        Ok(result) => {
            put_u8(buf, 0);
            encode_query_result(buf, result);
        }
        Err(e) => {
            put_u8(buf, 1);
            encode_query_error(buf, e);
        }
    }
}

/// Decodes a full [`QueryOutcome`].
///
/// # Errors
/// Any malformed field yields a typed [`WireError`]; decoding never panics.
pub fn decode_outcome(cur: &mut Cursor<'_>) -> Result<QueryOutcome, WireError> {
    match cur.u8()? {
        0 => Ok(Ok(decode_query_result(cur)?)),
        1 => Ok(Err(decode_query_error(cur)?)),
        tag => Err(WireError::UnknownTag {
            what: "QueryOutcome",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Server statistics
// ---------------------------------------------------------------------------

/// Per-tenant admission counters, as reported by `stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Queries admitted to the engine on this tenant's behalf.
    pub admitted: u64,
    /// Admitted queries whose outcome has been delivered.
    pub completed: u64,
    /// Submissions that waited in the tenant's backpressure queue.
    pub queued: u64,
    /// Submissions shed because the tenant was at its in-flight cap (shed
    /// policy, or queue policy with a full queue).
    pub shed_at_cap: u64,
    /// Submissions shed because the admission ETA already exceeded the
    /// query's deadline.
    pub shed_deadline: u64,
    /// Queries currently admitted and not yet delivered.
    pub in_flight: u64,
}

/// Server-wide statistics: the engine's counters plus per-tenant admission
/// decisions (sorted by tenant name for deterministic output).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// The wrapped engine's own counters.
    pub engine: EngineStats,
    /// One entry per tenant that has contacted the server.
    pub tenants: Vec<TenantStats>,
    /// The engine's elastic-scheduler summary (current per-axis widths and the
    /// last bottleneck verdict); `None` for engines without one.
    pub scheduler: Option<SchedulerSummary>,
}

fn encode_server_stats(buf: &mut Vec<u8>, s: &ServerStats) {
    put_u64(buf, s.engine.queries_submitted);
    put_u64(buf, s.engine.queries_completed);
    put_u64(buf, s.engine.active_queries as u64);
    put_u64(buf, s.engine.fact_tuples_scanned);
    put_u32(buf, s.tenants.len() as u32);
    for t in &s.tenants {
        put_str(buf, &t.tenant);
        put_u64(buf, t.admitted);
        put_u64(buf, t.completed);
        put_u64(buf, t.queued);
        put_u64(buf, t.shed_at_cap);
        put_u64(buf, t.shed_deadline);
        put_u64(buf, t.in_flight);
    }
    match &s.scheduler {
        None => put_u8(buf, 0),
        Some(sched) => {
            put_u8(buf, 1);
            put_u8(buf, u8::from(sched.auto_tune));
            put_u64(buf, sched.available_parallelism);
            put_u64(buf, sched.scan_workers);
            put_u64(buf, sched.stage_workers);
            put_u64(buf, sched.distributor_shards);
            put_u64(buf, sched.resizes);
            put_str(buf, &sched.last_verdict);
        }
    }
}

fn decode_server_stats(cur: &mut Cursor<'_>) -> Result<ServerStats, WireError> {
    let engine = EngineStats {
        queries_submitted: cur.u64()?,
        queries_completed: cur.u64()?,
        active_queries: cur.u64()? as usize,
        fact_tuples_scanned: cur.u64()?,
    };
    let len = cur.collection_len(8)?;
    let mut tenants = Vec::with_capacity(len);
    for _ in 0..len {
        tenants.push(TenantStats {
            tenant: cur.str()?,
            admitted: cur.u64()?,
            completed: cur.u64()?,
            queued: cur.u64()?,
            shed_at_cap: cur.u64()?,
            shed_deadline: cur.u64()?,
            in_flight: cur.u64()?,
        });
    }
    let scheduler = match cur.u8()? {
        0 => None,
        1 => Some(SchedulerSummary {
            auto_tune: cur.u8()? != 0,
            available_parallelism: cur.u64()?,
            scan_workers: cur.u64()?,
            stage_workers: cur.u64()?,
            distributor_shards: cur.u64()?,
            resizes: cur.u64()?,
            last_verdict: cur.str()?,
        }),
        tag => {
            return Err(WireError::UnknownTag {
                what: "scheduler summary",
                tag,
            })
        }
    };
    Ok(ServerStats {
        engine,
        tenants,
        scheduler,
    })
}

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

fn encode_values(buf: &mut Vec<u8>, values: &[Value]) {
    put_u32(buf, values.len() as u32);
    for v in values {
        encode_value(buf, v);
    }
}

fn decode_values(cur: &mut Cursor<'_>) -> Result<Vec<Value>, WireError> {
    let len = cur.collection_len(1)?;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(decode_value(cur)?);
    }
    Ok(values)
}

fn encode_ingest_batch(buf: &mut Vec<u8>, b: &IngestBatch) {
    put_u32(buf, b.facts.len() as u32);
    for row in &b.facts {
        encode_values(buf, row);
    }
    put_u32(buf, b.dim_upserts.len() as u32);
    for u in &b.dim_upserts {
        put_str(buf, &u.table);
        put_u32(buf, u.key_column as u32);
        encode_values(buf, &u.row);
    }
    put_u32(buf, b.dim_deletes.len() as u32);
    for d in &b.dim_deletes {
        put_str(buf, &d.table);
        put_u32(buf, d.key_column as u32);
        put_i64(buf, d.key);
    }
}

fn decode_ingest_batch(cur: &mut Cursor<'_>) -> Result<IngestBatch, WireError> {
    let len = cur.collection_len(4)?;
    let mut facts = Vec::with_capacity(len);
    for _ in 0..len {
        facts.push(decode_values(cur)?);
    }
    let len = cur.collection_len(4)?;
    let mut dim_upserts = Vec::with_capacity(len);
    for _ in 0..len {
        dim_upserts.push(DimUpsert {
            table: cur.str()?,
            key_column: cur.u32()? as usize,
            row: decode_values(cur)?,
        });
    }
    let len = cur.collection_len(4)?;
    let mut dim_deletes = Vec::with_capacity(len);
    for _ in 0..len {
        dim_deletes.push(DimDelete {
            table: cur.str()?,
            key_column: cur.u32()? as usize,
            key: cur.i64()?,
        });
    }
    Ok(IngestBatch {
        facts,
        dim_upserts,
        dim_deletes,
    })
}

fn encode_ingest_receipt(buf: &mut Vec<u8>, r: &IngestReceipt) {
    put_u64(buf, r.epoch);
    put_u64(buf, r.records);
    put_u64(buf, r.wal_bytes);
}

fn decode_ingest_receipt(cur: &mut Cursor<'_>) -> Result<IngestReceipt, WireError> {
    Ok(IngestReceipt {
        epoch: cur.u64()?,
        records: cur.u64()?,
        wal_bytes: cur.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// What a tenant wants done when its in-flight cap is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the query immediately with a typed shed outcome.
    Shed,
    /// Hold the submission in a bounded per-tenant queue until capacity frees
    /// (backpressure); shed only when the queue itself is full.
    Queue,
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a query on behalf of `tenant`.
    Submit {
        /// Tenant the admission decision is accounted against.
        tenant: String,
        /// What to do when the tenant is at its in-flight cap.
        policy: AdmissionPolicy,
        /// The query itself (boxed: it dwarfs every other request variant).
        query: Box<StarQuery>,
    },
    /// Block until the query behind `ticket` completes; the outcome comes back
    /// as [`Response::Outcome`].
    Wait {
        /// Ticket from a previous [`Response::Submitted`] on this connection.
        ticket: u64,
    },
    /// Cancel the query behind `ticket` (best effort).
    Cancel {
        /// Ticket from a previous [`Response::Submitted`] on this connection.
        ticket: u64,
    },
    /// Fetch [`ServerStats`].
    Stats,
    /// Stop the server: refuse new connections, then drain and exit.
    Shutdown,
    /// Atomically apply one ingestion batch on behalf of `tenant`. Answered
    /// synchronously with [`Response::Ingested`] once the batch is durable and
    /// visible, or with [`Response::Outcome`] carrying the typed failure.
    Ingest {
        /// Tenant the mutation is accounted against.
        tenant: String,
        /// The batch (boxed: it dwarfs every other request variant).
        batch: Box<IngestBatch>,
    },
}

/// A typed protocol-level failure the server answers instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolErrorKind {
    /// The request frame failed to decode.
    MalformedFrame,
    /// The frame decoded but its message tag is not a known request.
    UnknownMessage,
    /// A wait/cancel referenced a ticket this connection does not own.
    UnknownTicket,
    /// The declared frame length exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl ProtocolErrorKind {
    fn code(&self) -> u8 {
        match self {
            ProtocolErrorKind::MalformedFrame => 1,
            ProtocolErrorKind::UnknownMessage => 2,
            ProtocolErrorKind::UnknownTicket => 3,
            ProtocolErrorKind::FrameTooLarge => 4,
            ProtocolErrorKind::ShuttingDown => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            1 => Ok(ProtocolErrorKind::MalformedFrame),
            2 => Ok(ProtocolErrorKind::UnknownMessage),
            3 => Ok(ProtocolErrorKind::UnknownTicket),
            4 => Ok(ProtocolErrorKind::FrameTooLarge),
            5 => Ok(ProtocolErrorKind::ShuttingDown),
            tag => Err(WireError::UnknownTag {
                what: "ProtocolErrorKind",
                tag,
            }),
        }
    }
}

impl fmt::Display for ProtocolErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolErrorKind::MalformedFrame => "malformed frame",
            ProtocolErrorKind::UnknownMessage => "unknown message tag",
            ProtocolErrorKind::UnknownTicket => "unknown ticket",
            ProtocolErrorKind::FrameTooLarge => "frame too large",
            ProtocolErrorKind::ShuttingDown => "server shutting down",
        };
        f.write_str(s)
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query was admitted; wait on `ticket` for its outcome.
    Submitted {
        /// Connection-scoped ticket for `wait` / `cancel`.
        ticket: u64,
    },
    /// A final query outcome — the answer to `wait`, or the immediate answer
    /// to a `submit` that was shed or refused (no ticket was created).
    Outcome(QueryOutcome),
    /// The answer to `stats`.
    Stats(ServerStats),
    /// Plain acknowledgement (`cancel`, `shutdown`).
    Ack,
    /// The request could not be processed; the connection stays usable.
    Protocol {
        /// What went wrong, as a typed kind.
        kind: ProtocolErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The answer to a successful `ingest`: the batch is durable and visible.
    Ingested(IngestReceipt),
}

impl Request {
    /// Serializes into a frame payload (tag + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Submit {
                tenant,
                policy,
                query,
            } => {
                put_u8(&mut buf, 0x01);
                put_str(&mut buf, tenant);
                put_u8(
                    &mut buf,
                    match policy {
                        AdmissionPolicy::Shed => 0,
                        AdmissionPolicy::Queue => 1,
                    },
                );
                encode_star_query(&mut buf, query);
            }
            Request::Wait { ticket } => {
                put_u8(&mut buf, 0x02);
                put_u64(&mut buf, *ticket);
            }
            Request::Cancel { ticket } => {
                put_u8(&mut buf, 0x03);
                put_u64(&mut buf, *ticket);
            }
            Request::Stats => put_u8(&mut buf, 0x04),
            Request::Shutdown => put_u8(&mut buf, 0x05),
            Request::Ingest { tenant, batch } => {
                put_u8(&mut buf, 0x06);
                put_str(&mut buf, tenant);
                encode_ingest_batch(&mut buf, batch);
            }
        }
        buf
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    /// Any malformed byte yields a typed [`WireError`]; parsing never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut cur = Cursor::new(payload);
        let req = match cur.u8()? {
            0x01 => {
                let tenant = cur.str()?;
                let policy = match cur.u8()? {
                    0 => AdmissionPolicy::Shed,
                    1 => AdmissionPolicy::Queue,
                    tag => {
                        return Err(WireError::UnknownTag {
                            what: "AdmissionPolicy",
                            tag,
                        })
                    }
                };
                let query = Box::new(decode_star_query(&mut cur)?);
                Request::Submit {
                    tenant,
                    policy,
                    query,
                }
            }
            0x02 => Request::Wait { ticket: cur.u64()? },
            0x03 => Request::Cancel { ticket: cur.u64()? },
            0x04 => Request::Stats,
            0x05 => Request::Shutdown,
            0x06 => Request::Ingest {
                tenant: cur.str()?,
                batch: Box::new(decode_ingest_batch(&mut cur)?),
            },
            tag => {
                return Err(WireError::UnknownTag {
                    what: "Request",
                    tag,
                })
            }
        };
        cur.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a frame payload (tag + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Submitted { ticket } => {
                put_u8(&mut buf, 0x81);
                put_u64(&mut buf, *ticket);
            }
            Response::Outcome(outcome) => {
                put_u8(&mut buf, 0x82);
                encode_outcome(&mut buf, outcome);
            }
            Response::Stats(stats) => {
                put_u8(&mut buf, 0x83);
                encode_server_stats(&mut buf, stats);
            }
            Response::Ack => put_u8(&mut buf, 0x84),
            Response::Protocol { kind, message } => {
                put_u8(&mut buf, 0x85);
                put_u8(&mut buf, kind.code());
                put_str(&mut buf, message);
            }
            Response::Ingested(receipt) => {
                put_u8(&mut buf, 0x86);
                encode_ingest_receipt(&mut buf, receipt);
            }
        }
        buf
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    /// Any malformed byte yields a typed [`WireError`]; parsing never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut cur = Cursor::new(payload);
        let resp = match cur.u8()? {
            0x81 => Response::Submitted { ticket: cur.u64()? },
            0x82 => Response::Outcome(decode_outcome(&mut cur)?),
            0x83 => Response::Stats(decode_server_stats(&mut cur)?),
            0x84 => Response::Ack,
            0x85 => Response::Protocol {
                kind: ProtocolErrorKind::from_code(cur.u8()?)?,
                message: cur.str()?,
            },
            0x86 => Response::Ingested(decode_ingest_receipt(&mut cur)?),
            tag => {
                return Err(WireError::UnknownTag {
                    what: "Response",
                    tag,
                })
            }
        };
        cur.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing over a byte stream
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
/// Propagates I/O errors; refuses payloads over [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(payload.len() as u64).to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean connection close at a frame boundary. A close
/// *mid-frame* (a torn write) surfaces as `ErrorKind::UnexpectedEof`, and a
/// declared length over [`MAX_FRAME_LEN`] as `ErrorKind::InvalidData` — both
/// distinguishable from ordinary I/O failures so the server can answer with a
/// typed protocol error where a response is still possible.
///
/// # Errors
/// Propagates I/O errors (including read timeouts, which callers use to poll
/// shutdown flags).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(len as u64).to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::StarQuery;

    fn sample_query() -> StarQuery {
        StarQuery::builder("q1")
            .fact_predicate(Predicate::between("lo_discount", 1i64, 3i64))
            .join_dimension(
                "date",
                "lo_orderdate",
                "d_datekey",
                Predicate::eq("d_year", 1993i64),
            )
            .join_dimension(
                "part",
                "lo_partkey",
                "p_partkey",
                Predicate::in_list("p_color", vec!["red", "green"]).and(Predicate::Not(Box::new(
                    Predicate::eq("p_size", Value::Null),
                ))),
            )
            .group_by(ColumnRef::dim("date", "d_year"))
            .aggregate(AggregateSpec::count_star())
            .aggregate(AggregateSpec::over(
                AggFunc::Sum,
                ColumnRef::fact("lo_revenue"),
            ))
            .snapshot(SnapshotId(7))
            .deadline(Duration::from_millis(250))
            .build()
    }

    #[test]
    fn star_query_round_trips() {
        let q = sample_query();
        let mut buf = Vec::new();
        encode_star_query(&mut buf, &q);
        let mut cur = Cursor::new(&buf);
        let back = decode_star_query(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn outcome_round_trips_results_and_every_error() {
        let mut result = QueryResult::new(vec!["d_year".into()], vec!["count".into()]);
        result.insert(vec![Value::Int(1993)], vec![AggValue::Int(42)]);
        result.insert(
            vec![Value::str("x")],
            vec![AggValue::Float(1.5), AggValue::Null],
        );
        let outcomes: Vec<QueryOutcome> = vec![
            Ok(result),
            Err(QueryError::StageFailed {
                role: "distributor-shard-1".into(),
                detail: "injected".into(),
            }),
            Err(QueryError::DeadlineExceeded {
                deadline: Duration::from_millis(5),
            }),
            Err(QueryError::Cancelled),
            Err(QueryError::ShedAtAdmission {
                deadline: Duration::from_millis(5),
                estimated: Duration::from_millis(40),
            }),
        ];
        for outcome in outcomes {
            let mut buf = Vec::new();
            encode_outcome(&mut buf, &outcome);
            let mut cur = Cursor::new(&buf);
            let back = decode_outcome(&mut cur).unwrap();
            cur.finish().unwrap();
            assert_eq!(outcome, back);
        }
        // Engine errors survive as their rendered message.
        let mut buf = Vec::new();
        encode_outcome(
            &mut buf,
            &Err(QueryError::Engine(Error::invalid_state("boom"))),
        );
        let back = decode_outcome(&mut Cursor::new(&buf)).unwrap();
        match back {
            Err(QueryError::Engine(e)) => assert!(e.to_string().contains("boom")),
            other => panic!("expected engine error, got {other:?}"),
        }
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Submit {
                tenant: "acme".into(),
                policy: AdmissionPolicy::Queue,
                query: Box::new(sample_query()),
            },
            Request::Wait { ticket: 9 },
            Request::Cancel { ticket: 3 },
            Request::Stats,
            Request::Shutdown,
            Request::Ingest {
                tenant: "acme".into(),
                batch: Box::new(IngestBatch {
                    facts: vec![vec![Value::Int(1), Value::str("a")], vec![Value::Null]],
                    dim_upserts: vec![DimUpsert {
                        table: "part".into(),
                        key_column: 0,
                        row: vec![Value::Int(7), Value::str("crimson")],
                    }],
                    dim_deletes: vec![DimDelete {
                        table: "supplier".into(),
                        key_column: 0,
                        key: 3,
                    }],
                }),
            },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        let resps = vec![
            Response::Submitted { ticket: 12 },
            Response::Outcome(Err(QueryError::Cancelled)),
            Response::Stats(ServerStats {
                engine: EngineStats {
                    queries_submitted: 10,
                    queries_completed: 8,
                    active_queries: 2,
                    fact_tuples_scanned: 12345,
                },
                tenants: vec![TenantStats {
                    tenant: "acme".into(),
                    admitted: 10,
                    completed: 8,
                    queued: 3,
                    shed_at_cap: 1,
                    shed_deadline: 2,
                    in_flight: 2,
                }],
                scheduler: Some(SchedulerSummary {
                    auto_tune: true,
                    available_parallelism: 1,
                    scan_workers: 1,
                    stage_workers: 2,
                    distributor_shards: 1,
                    resizes: 3,
                    last_verdict: "stage-saturated".into(),
                }),
            }),
            Response::Stats(ServerStats::default()),
            Response::Ack,
            Response::Protocol {
                kind: ProtocolErrorKind::MalformedFrame,
                message: "truncated".into(),
            },
            Response::Ingested(IngestReceipt {
                epoch: 42,
                records: 4,
                wal_bytes: 512,
            }),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_and_garbage_payloads_decode_to_typed_errors() {
        let full = Request::Submit {
            tenant: "t".into(),
            policy: AdmissionPolicy::Shed,
            query: Box::new(sample_query()),
        }
        .encode();
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err());
        }
        assert!(Request::decode(&[0xff, 1, 2, 3]).is_err());
        // Trailing garbage after a valid message is rejected too.
        let mut padded = Request::Stats.encode();
        padded.push(0);
        assert_eq!(Request::decode(&padded), Err(WireError::TrailingBytes(1)));
        // Same discipline for ingestion frames.
        let full = Request::Ingest {
            tenant: "t".into(),
            batch: Box::new(IngestBatch {
                facts: vec![vec![Value::Int(1), Value::str("x")]],
                dim_upserts: vec![DimUpsert {
                    table: "d".into(),
                    key_column: 0,
                    row: vec![Value::Int(2)],
                }],
                dim_deletes: vec![DimDelete {
                    table: "d".into(),
                    key_column: 0,
                    key: 9,
                }],
            }),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_collection_lengths_do_not_allocate() {
        // InList claiming u32::MAX values inside a tiny frame.
        let mut buf = Vec::new();
        put_u8(&mut buf, 3);
        put_str(&mut buf, "c");
        put_u32(&mut buf, u32::MAX);
        let err = decode_predicate(&mut Cursor::new(&buf), 0).unwrap_err();
        assert!(matches!(err, WireError::BadLength(_)), "{err:?}");
    }

    #[test]
    fn predicate_nesting_is_depth_limited() {
        let mut buf = Vec::new();
        for _ in 0..200 {
            put_u8(&mut buf, 6); // Not(
        }
        put_u8(&mut buf, 0); // True
        let err = decode_predicate(&mut Cursor::new(&buf), 0).unwrap_err();
        assert_eq!(err, WireError::DepthExceeded);
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = Request::Stats.encode();
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        let mut read = &stream[..];
        assert_eq!(read_frame(&mut read).unwrap().unwrap(), payload);
        assert!(read_frame(&mut read).unwrap().is_none());

        // A torn frame (header promises more than arrives) is UnexpectedEof.
        let mut torn = &stream[..stream.len() - 1];
        let err = read_frame(&mut torn).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // An oversize declared length is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut &huge[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
