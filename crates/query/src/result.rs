//! Query results.
//!
//! Results are stored as a map from group-by key to finalized aggregate values, with
//! deterministic (sorted) iteration so that equality comparisons across engines and
//! across runs are stable.

use std::collections::BTreeMap;
use std::fmt;

use cjoin_storage::Value;

use crate::aggregate::AggValue;

/// The result of one star query: a header plus one row per group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    group_columns: Vec<String>,
    aggregate_columns: Vec<String>,
    rows: BTreeMap<Vec<Value>, Vec<AggValue>>,
}

impl QueryResult {
    /// Creates an empty result with the given header.
    pub fn new(group_columns: Vec<String>, aggregate_columns: Vec<String>) -> Self {
        Self {
            group_columns,
            aggregate_columns,
            rows: BTreeMap::new(),
        }
    }

    /// Group-by column names.
    pub fn group_columns(&self) -> &[String] {
        &self.group_columns
    }

    /// Aggregate column labels.
    pub fn aggregate_columns(&self) -> &[String] {
        &self.aggregate_columns
    }

    /// Inserts (or replaces) a group's aggregate values.
    pub fn insert(&mut self, key: Vec<Value>, aggregates: Vec<AggValue>) {
        self.rows.insert(key, aggregates);
    }

    /// Number of result rows (groups).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in deterministic (sorted group key) order.
    pub fn rows(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<AggValue>)> {
        self.rows.iter()
    }

    /// Looks up the aggregates for a specific group key.
    pub fn aggregate_for(&self, key: &[Value]) -> Option<&Vec<AggValue>> {
        self.rows.get(key)
    }

    /// Structural equality with per-value approximate float comparison.
    ///
    /// Used by tests and the experiment harness to check that CJOIN, the baseline
    /// engine and the reference oracle agree on every group and every aggregate.
    pub fn approx_eq(&self, other: &QueryResult) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        self.rows
            .iter()
            .zip(other.rows.iter())
            .all(|((ka, va), (kb, vb))| {
                ka == kb && va.len() == vb.len() && va.iter().zip(vb).all(|(a, b)| a.approx_eq(b))
            })
    }

    /// Describes the first difference from `other`, for test failure messages.
    pub fn diff(&self, other: &QueryResult) -> Option<String> {
        if self.rows.len() != other.rows.len() {
            return Some(format!(
                "row count differs: {} vs {}",
                self.rows.len(),
                other.rows.len()
            ));
        }
        for ((ka, va), (kb, vb)) in self.rows.iter().zip(other.rows.iter()) {
            if ka != kb {
                return Some(format!("group keys differ: {ka:?} vs {kb:?}"));
            }
            if va.len() != vb.len() {
                return Some(format!("aggregate count differs for group {ka:?}"));
            }
            for (i, (a, b)) in va.iter().zip(vb).enumerate() {
                if !a.approx_eq(b) {
                    return Some(format!("group {ka:?}, aggregate {i}: {a} vs {b}"));
                }
            }
        }
        None
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header: Vec<String> = self
            .group_columns
            .iter()
            .cloned()
            .chain(self.aggregate_columns.iter().cloned())
            .collect();
        writeln!(f, "{}", header.join(" | "))?;
        for (key, aggs) in &self.rows {
            let cells: Vec<String> = key
                .iter()
                .map(|v| v.to_string())
                .chain(aggs.iter().map(|a| a.to_string()))
                .collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(groups: &[(i64, i128)]) -> QueryResult {
        let mut r = QueryResult::new(vec!["g".into()], vec!["SUM(x)".into()]);
        for (g, s) in groups {
            r.insert(vec![Value::int(*g)], vec![AggValue::Int(*s)]);
        }
        r
    }

    #[test]
    fn insert_and_lookup() {
        let r = result_with(&[(1, 10), (2, 20)]);
        assert_eq!(r.num_rows(), 2);
        assert!(!r.is_empty());
        assert_eq!(
            r.aggregate_for(&[Value::int(2)]).unwrap()[0],
            AggValue::Int(20)
        );
        assert!(r.aggregate_for(&[Value::int(3)]).is_none());
        assert_eq!(r.group_columns(), &["g".to_string()]);
        assert_eq!(r.aggregate_columns(), &["SUM(x)".to_string()]);
    }

    #[test]
    fn rows_iterate_in_sorted_key_order() {
        let r = result_with(&[(5, 1), (1, 2), (3, 3)]);
        let keys: Vec<i64> = r.rows().map(|(k, _)| k[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = result_with(&[(1, 10), (2, 20)]);
        let b = result_with(&[(1, 10), (2, 20)]);
        assert!(a.approx_eq(&b));
        assert!(a.diff(&b).is_none());

        let c = result_with(&[(1, 10), (2, 21)]);
        assert!(!a.approx_eq(&c));
        assert!(a.diff(&c).unwrap().contains("aggregate 0"));

        let d = result_with(&[(1, 10)]);
        assert!(!a.approx_eq(&d));
        assert!(a.diff(&d).unwrap().contains("row count"));

        let e = result_with(&[(1, 10), (3, 20)]);
        assert!(a.diff(&e).unwrap().contains("group keys"));
    }

    #[test]
    fn float_aggregates_compare_approximately() {
        let mut a = QueryResult::new(vec![], vec!["AVG(x)".into()]);
        a.insert(vec![], vec![AggValue::Float(10.0)]);
        let mut b = QueryResult::new(vec![], vec!["AVG(x)".into()]);
        b.insert(vec![], vec![AggValue::Float(10.0 + 1e-13)]);
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let r = result_with(&[(1, 10)]);
        let s = r.to_string();
        assert!(s.contains("g | SUM(x)"));
        assert!(s.contains("1 | 10"));
    }

    #[test]
    fn insert_replaces_existing_group() {
        let mut r = result_with(&[(1, 10)]);
        r.insert(vec![Value::int(1)], vec![AggValue::Int(99)]);
        assert_eq!(r.num_rows(), 1);
        assert_eq!(
            r.aggregate_for(&[Value::int(1)]).unwrap()[0],
            AggValue::Int(99)
        );
    }
}
