//! `cjoin-server` — the TCP front door for a [`JoinEngine`].
//!
//! CJOIN's promise is an always-on operator that many clients share; this crate
//! is the serving layer that makes the sharing literal. A [`CjoinServer`] wraps
//! any engine behind the length-prefixed binary protocol defined in
//! [`cjoin_query::wire`] (submit / wait / cancel / stats / ingest / shutdown)
//! and adds the one policy the engine itself cannot own: **multi-tenant
//! admission**. Ingestion is answered synchronously, after the batch is
//! durable and visible engine-side.
//!
//! The design is deliberately small and dependency-free — a threaded
//! `std::net` accept loop, one handler thread per connection, no async
//! runtime:
//!
//! * **Connection-scoped tickets.** A `submit` answers with a ticket id that is
//!   only meaningful on the connection that created it; `wait` consumes it
//!   inline on the handler thread (mirroring [`QueryTicket::wait`]), and a
//!   disconnect cancels and drains every un-waited ticket so engine-side state
//!   never leaks.
//! * **Per-tenant admission.** Each tenant has an in-flight cap. At the cap the
//!   tenant's declared [`AdmissionPolicy`] decides: `Shed` answers immediately
//!   with a typed refusal, `Queue` parks the submission in a bounded
//!   backpressure queue (blocking that connection — the client *asked* to
//!   wait) until capacity frees or the queue itself overflows.
//! * **Honest deadline quotes.** A submission carrying a deadline is checked
//!   against [`JoinEngine::quote_eta`] — install latency plus one full scan
//!   cycle at the observed busy-scan rate. A submission that would have to
//!   queue first is quoted double (one cycle bounds the slot wait, one runs the
//!   query). Unreachable deadlines are shed at the door with
//!   [`QueryError::ShedAtAdmission`] instead of burning shared-scan work.
//! * **Typed protocol errors, never panics.** Malformed frames, unknown tags,
//!   oversized lengths, and stale tickets all come back as
//!   [`Response::Protocol`]; torn writes close the connection without taking
//!   the server down.
//!
//! Shutdown is cooperative: handler threads poll a shutdown flag on a read
//! timeout, the accept loop is unblocked with a loopback connect, and
//! [`CjoinServer::shutdown`] joins every thread (and shuts the wrapped engine
//! down) before returning, so tests can assert nothing leaked.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use cjoin_common::{Error, Result};
use cjoin_query::wire::{
    write_frame, AdmissionPolicy, ProtocolErrorKind, Request, Response, ServerStats, TenantStats,
    WireError, MAX_FRAME_LEN,
};
use cjoin_query::{IngestBatch, JoinEngine, QueryError, QueryTicket, StarQuery};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables for the serving layer (the engine keeps its own config).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queries a single tenant may have admitted-but-undelivered at
    /// once. At the cap, the tenant's [`AdmissionPolicy`] decides between an
    /// immediate shed and queued backpressure.
    pub tenant_inflight_cap: usize,
    /// Bound on a tenant's backpressure queue (submissions parked waiting for
    /// an in-flight slot). A full queue sheds even under `Queue` policy.
    pub tenant_queue_cap: usize,
    /// How often blocked threads (idle connection reads, queued submitters)
    /// wake to poll the shutdown flag. Bounds shutdown latency.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tenant_inflight_cap: 4,
            tenant_queue_cap: 8,
            poll_interval: Duration::from_millis(50),
        }
    }
}

impl ServerConfig {
    /// Sets the per-tenant in-flight cap.
    #[must_use]
    pub fn with_tenant_inflight_cap(mut self, cap: usize) -> Self {
        self.tenant_inflight_cap = cap.max(1);
        self
    }

    /// Sets the per-tenant backpressure queue bound.
    #[must_use]
    pub fn with_tenant_queue_cap(mut self, cap: usize) -> Self {
        self.tenant_queue_cap = cap;
        self
    }

    /// Sets the shutdown-flag polling interval.
    #[must_use]
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval.max(Duration::from_millis(1));
        self
    }
}

// ---------------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------------

/// Per-tenant admission bookkeeping (the wire-facing view is [`TenantStats`]).
#[derive(Debug, Default)]
struct TenantState {
    /// Queries admitted and not yet delivered (or released by a disconnect).
    in_flight: u64,
    /// Submissions currently parked in the backpressure queue.
    waiting: u64,
    /// Lifetime counters, mirrored into [`TenantStats`].
    admitted: u64,
    completed: u64,
    queued: u64,
    shed_at_cap: u64,
    shed_deadline: u64,
}

struct Shared {
    engine: Arc<dyn JoinEngine>,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    tenants: Mutex<HashMap<String, TenantState>>,
    /// Signalled whenever an in-flight slot frees or shutdown begins, waking
    /// queued submitters.
    capacity: Condvar,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Locks the tenant table, shrugging off poisoning: admission bookkeeping
    /// stays usable even if some handler thread died mid-update, which is
    /// exactly the "server never goes down" contract the fuzz tests assert.
    fn lock_tenants(&self) -> MutexGuard<'_, HashMap<String, TenantState>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.capacity.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Runs the full admission decision for one submission. `Ok(())` means an
    /// in-flight slot was consumed and the caller must pair it with
    /// [`Shared::release`]; `Err` carries the response to send instead
    /// (boxed: `Response` embeds full `ServerStats`, so the refusal variant
    /// would otherwise dominate the `Result`'s size).
    fn admit(
        &self,
        tenant: &str,
        policy: AdmissionPolicy,
        query: &StarQuery,
    ) -> std::result::Result<(), Box<Response>> {
        if self.shutting_down() {
            return Err(Box::new(shutting_down_response()));
        }
        let cap = self.config.tenant_inflight_cap as u64;
        let mut tenants = self.lock_tenants();
        let state = tenants.entry(tenant.to_string()).or_default();

        // Deadline-aware shed, before any capacity is consumed: quote the
        // engine's honest ETA (install latency + one busy scan cycle). A
        // submission that must queue first waits for a slot — bounded by
        // roughly one more cycle, since every in-flight query completes within
        // one full cycle of its install — so it is quoted double.
        if let Some(deadline) = query.deadline {
            if let Some(eta) = self.engine.quote_eta() {
                let estimated = if state.in_flight >= cap {
                    eta.saturating_mul(2)
                } else {
                    eta
                };
                if estimated > deadline {
                    state.shed_deadline += 1;
                    return Err(Box::new(Response::Outcome(Err(
                        QueryError::ShedAtAdmission {
                            deadline,
                            estimated,
                        },
                    ))));
                }
            }
        }

        if state.in_flight < cap {
            state.in_flight += 1;
            state.admitted += 1;
            return Ok(());
        }

        match policy {
            AdmissionPolicy::Shed => {
                state.shed_at_cap += 1;
                Err(Box::new(Response::Outcome(Err(QueryError::Engine(
                    Error::invalid_state(format!(
                        "tenant '{tenant}' is at its in-flight cap of {cap} (policy: shed)"
                    )),
                )))))
            }
            AdmissionPolicy::Queue => {
                if state.waiting >= self.config.tenant_queue_cap as u64 {
                    state.shed_at_cap += 1;
                    return Err(Box::new(Response::Outcome(Err(QueryError::Engine(
                        Error::invalid_state(format!(
                            "tenant '{tenant}' backpressure queue is full \
                             ({} submissions already waiting)",
                            state.waiting
                        )),
                    )))));
                }
                state.waiting += 1;
                state.queued += 1;
                loop {
                    let (guard, _) = self
                        .capacity
                        .wait_timeout(tenants, self.config.poll_interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    tenants = guard;
                    let state = tenants
                        .get_mut(tenant)
                        .expect("tenant states are never removed");
                    if self.shutting_down() {
                        state.waiting -= 1;
                        return Err(Box::new(shutting_down_response()));
                    }
                    if state.in_flight < cap {
                        state.waiting -= 1;
                        state.in_flight += 1;
                        state.admitted += 1;
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Returns a tenant's in-flight slot; `delivered` marks whether the
    /// outcome actually reached a client (vs. a disconnect drain).
    fn release(&self, tenant: &str, delivered: bool) {
        {
            let mut tenants = self.lock_tenants();
            if let Some(state) = tenants.get_mut(tenant) {
                state.in_flight = state.in_flight.saturating_sub(1);
                if delivered {
                    state.completed += 1;
                }
            }
        }
        self.capacity.notify_all();
    }

    fn server_stats(&self) -> ServerStats {
        let engine = self.engine.stats();
        let tenants_map = self.lock_tenants();
        let mut tenants: Vec<TenantStats> = tenants_map
            .iter()
            .map(|(name, s)| TenantStats {
                tenant: name.clone(),
                admitted: s.admitted,
                completed: s.completed,
                queued: s.queued,
                shed_at_cap: s.shed_at_cap,
                shed_deadline: s.shed_deadline,
                in_flight: s.in_flight,
            })
            .collect();
        drop(tenants_map);
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServerStats {
            engine,
            tenants,
            scheduler: self.engine.scheduler_summary(),
        }
    }
}

fn shutting_down_response() -> Response {
    Response::Protocol {
        kind: ProtocolErrorKind::ShuttingDown,
        message: "server is shutting down and no longer admits work".to_string(),
    }
}

fn io_error(context: &str, e: &io::Error) -> Error {
    Error::invalid_state(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Incremental frame reading
// ---------------------------------------------------------------------------

/// One step of the incremental reader.
enum ReadStep {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean close at a frame boundary.
    Closed,
    /// Read timed out with the partial state preserved — the caller polls the
    /// shutdown flag and comes back.
    Idle,
}

/// Incremental length-prefixed frame reader that survives read timeouts
/// *mid-frame* without losing bytes.
///
/// The blanket [`cjoin_query::wire::read_frame`] is fine for blocking
/// clients, but the server reads with a timeout so idle connections can poll
/// the shutdown flag — and a timeout must not discard a half-received header
/// or payload, or the stream desynchronizes.
#[derive(Default)]
struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    payload: Option<Vec<u8>>,
    payload_filled: usize,
}

impl FrameReader {
    fn poll(&mut self, stream: &mut TcpStream) -> io::Result<ReadStep> {
        loop {
            if let Some(payload) = self.payload.as_mut() {
                if self.payload_filled == payload.len() {
                    let frame = self.payload.take().unwrap_or_default();
                    self.header_filled = 0;
                    self.payload_filled = 0;
                    return Ok(ReadStep::Frame(frame));
                }
                match stream.read(&mut payload[self.payload_filled..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    }
                    Ok(n) => self.payload_filled += n,
                    Err(e) => return idle_or_fail(e),
                }
            } else if self.header_filled < self.header.len() {
                match stream.read(&mut self.header[self.header_filled..]) {
                    Ok(0) if self.header_filled == 0 => return Ok(ReadStep::Closed),
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame-header",
                        ))
                    }
                    Ok(n) => self.header_filled += n,
                    Err(e) => return idle_or_fail(e),
                }
            } else {
                let len = u32::from_le_bytes(self.header);
                if len > MAX_FRAME_LEN {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        WireError::FrameTooLarge(len as u64).to_string(),
                    ));
                }
                self.payload = Some(vec![0u8; len as usize]);
                self.payload_filled = 0;
            }
        }
    }
}

fn idle_or_fail(e: io::Error) -> io::Result<ReadStep> {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted => {
            Ok(ReadStep::Idle)
        }
        _ => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Per-connection handler
// ---------------------------------------------------------------------------

/// An un-waited submission held by one connection.
struct Slot {
    tenant: String,
    ticket: Box<dyn QueryTicket>,
}

struct Connection {
    stream: TcpStream,
    shared: Arc<Shared>,
    slots: HashMap<u64, Slot>,
    next_ticket: u64,
}

impl Connection {
    fn serve(&mut self) {
        let mut reader = FrameReader::default();
        loop {
            if self.shared.shutting_down() {
                return;
            }
            match reader.poll(&mut self.stream) {
                Ok(ReadStep::Idle) => continue,
                Ok(ReadStep::Closed) => return,
                Ok(ReadStep::Frame(payload)) => {
                    let (response, disconnect) = self.dispatch(&payload);
                    if write_frame(&mut self.stream, &response.encode()).is_err() {
                        return;
                    }
                    if disconnect {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // The declared length exceeds the frame cap. The refused
                    // payload bytes are still in the stream, so there is no
                    // way to resynchronize: answer with the typed error, then
                    // close.
                    let response = Response::Protocol {
                        kind: ProtocolErrorKind::FrameTooLarge,
                        message: e.to_string(),
                    };
                    let _ = write_frame(&mut self.stream, &response.encode());
                    return;
                }
                // Torn write (UnexpectedEof) or transport failure: the peer is
                // gone; there is no one left to answer.
                Err(_) => return,
            }
        }
    }

    /// Handles one decoded frame; the bool asks the serve loop to close the
    /// connection after the response is written.
    fn dispatch(&mut self, payload: &[u8]) -> (Response, bool) {
        let request = match Request::decode(payload) {
            Ok(request) => request,
            Err(e) => {
                let kind = match e {
                    WireError::UnknownTag {
                        what: "Request", ..
                    } => ProtocolErrorKind::UnknownMessage,
                    _ => ProtocolErrorKind::MalformedFrame,
                };
                return (
                    Response::Protocol {
                        kind,
                        message: e.to_string(),
                    },
                    false,
                );
            }
        };
        match request {
            Request::Submit {
                tenant,
                policy,
                query,
            } => (self.submit(tenant, policy, *query), false),
            Request::Wait { ticket } => (self.wait(ticket), false),
            Request::Cancel { ticket } => (self.cancel(ticket), false),
            Request::Stats => (Response::Stats(self.shared.server_stats()), false),
            Request::Shutdown => {
                self.shared.begin_shutdown();
                // Unblock the accept loop so the server owner's join returns
                // promptly.
                let _ = TcpStream::connect(self.shared.addr);
                (Response::Ack, true)
            }
            Request::Ingest { tenant, batch } => (self.ingest(&tenant, *batch), false),
        }
    }

    fn submit(&mut self, tenant: String, policy: AdmissionPolicy, query: StarQuery) -> Response {
        if let Err(refusal) = self.shared.admit(&tenant, policy, &query) {
            return *refusal;
        }
        match self.shared.engine.submit(query) {
            Ok(ticket) => {
                let id = self.next_ticket;
                self.next_ticket += 1;
                self.slots.insert(id, Slot { tenant, ticket });
                Response::Submitted { ticket: id }
            }
            Err(e) => {
                self.shared.release(&tenant, false);
                Response::Outcome(Err(QueryError::Engine(e)))
            }
        }
    }

    fn wait(&mut self, id: u64) -> Response {
        match self.slots.remove(&id) {
            None => Response::Protocol {
                kind: ProtocolErrorKind::UnknownTicket,
                message: format!("ticket {id} is not live on this connection"),
            },
            Some(slot) => {
                let outcome = slot.ticket.wait();
                self.shared.release(&slot.tenant, true);
                Response::Outcome(outcome)
            }
        }
    }

    /// Synchronous durable ingestion on the connection's handler thread: the
    /// engine serializes commits internally, and the answer is sent only after
    /// the batch is durable and visible — exactly the acknowledgement
    /// semantics a feed client needs. Tenants are named for parity with
    /// `submit` (and future per-tenant mutation accounting); ingestion does
    /// not consume the tenant's query in-flight slots.
    fn ingest(&mut self, _tenant: &str, batch: IngestBatch) -> Response {
        if self.shared.shutting_down() {
            return shutting_down_response();
        }
        match self.shared.engine.ingest(batch) {
            Ok(receipt) => Response::Ingested(receipt),
            Err(e) => Response::Outcome(Err(QueryError::Engine(e))),
        }
    }

    fn cancel(&mut self, id: u64) -> Response {
        match self.slots.get(&id) {
            None => Response::Protocol {
                kind: ProtocolErrorKind::UnknownTicket,
                message: format!("ticket {id} is not live on this connection"),
            },
            Some(slot) => {
                slot.ticket.cancel();
                Response::Ack
            }
        }
    }

    /// Drains every un-waited ticket when the connection goes away: cancel,
    /// collect the (now prompt) outcome so engine-side state is released, and
    /// return the tenant's in-flight slot.
    fn drain(&mut self) {
        for (_, slot) in self.slots.drain() {
            slot.ticket.cancel();
            let Slot { tenant, ticket } = slot;
            let _ = ticket.wait();
            self.shared.release(&tenant, false);
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut connection = Connection {
        stream,
        shared,
        slots: HashMap::new(),
        next_ticket: 1,
    };
    connection.serve();
    connection.drain();
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutting_down() {
            return;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let shared_for_conn = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("cjoin-server-conn".to_string())
            .spawn(move || handle_connection(stream, shared_for_conn));
        if let Ok(handle) = spawned {
            shared
                .handlers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
        }
    }
}

// ---------------------------------------------------------------------------
// The server handle
// ---------------------------------------------------------------------------

/// A running server: an accept loop plus per-connection handler threads over
/// one wrapped [`JoinEngine`].
///
/// ```no_run
/// use std::sync::Arc;
/// use cjoin_server::{CjoinServer, ServerConfig};
/// # fn engine() -> Arc<dyn cjoin_query::JoinEngine> { unimplemented!() }
/// let server = CjoinServer::start(engine(), ServerConfig::default()).unwrap();
/// println!("serving on {}", server.local_addr());
/// server.shutdown(); // joins every thread, shuts the engine down
/// ```
pub struct CjoinServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl CjoinServer {
    /// Starts a server on an ephemeral loopback port (`127.0.0.1:0`).
    ///
    /// # Errors
    /// Fails if the listener cannot be bound or the accept thread not spawned.
    pub fn start(engine: Arc<dyn JoinEngine>, config: ServerConfig) -> Result<Self> {
        Self::bind(engine, config, "127.0.0.1:0")
    }

    /// Starts a server on an explicit bind address.
    ///
    /// # Errors
    /// Fails if the listener cannot be bound or the accept thread not spawned.
    pub fn bind(
        engine: Arc<dyn JoinEngine>,
        config: ServerConfig,
        bind: impl ToSocketAddrs,
    ) -> Result<Self> {
        let listener = TcpListener::bind(bind).map_err(|e| io_error("server bind failed", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_error("server local_addr failed", &e))?;
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
            capacity: Condvar::new(),
            handlers: Mutex::new(Vec::new()),
        });
        let shared_for_accept = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("cjoin-server-accept".to_string())
            .spawn(move || accept_loop(listener, shared_for_accept))
            .map_err(|e| io_error("server accept thread spawn failed", &e))?;
        Ok(Self {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address the server is listening on (with the resolved ephemeral
    /// port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time snapshot of engine counters and per-tenant admission
    /// decisions.
    pub fn stats(&self) -> ServerStats {
        self.shared.server_stats()
    }

    /// Stops the server: refuses new work, unblocks and joins the accept loop
    /// and every handler thread, and shuts the wrapped engine down (resolving
    /// any still-waiting tickets with the engine's typed outcomes).
    ///
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        // Unblock the accept loop with a no-op loopback connect.
        let _ = TcpStream::connect(self.addr);
        let accept = self
            .accept
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        // Resolve every in-flight wait before joining handlers, so a handler
        // blocked in `ticket.wait()` comes back with a typed outcome instead
        // of deadlocking the join.
        self.shared.engine.shutdown();
        let handlers: Vec<_> = self
            .shared
            .handlers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl Drop for CjoinServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
