//! `cjoin-client` — the thin TCP client for `cjoin-server`.
//!
//! The one design decision that matters here: [`RemoteEngine`] implements
//! [`JoinEngine`]. Everything written against `&dyn JoinEngine` — the
//! correctness-oracle tests, the closed-loop benchmark driver, the examples —
//! drives a *served* engine over the wire without changing a line, which is
//! how the equivalence suite proves the socket path bit-identical to the
//! in-process path.
//!
//! The transport is session multiplexing lite: the engine keeps a small pool
//! of idle connections and `submit` reuses one when available — the submit
//! frame, the ticket and the later wait frame all travel on that single
//! connection (mirroring the server's connection-scoped tickets), and a
//! cleanly finished `wait` returns the connection to the pool for the next
//! query. A pool miss, or an I/O failure on a reused connection the server
//! may have dropped while idle, falls back to the original
//! one-connection-per-query path by opening a fresh socket. Control requests
//! (`stats`, `ingest`, `shutdown`) each use a short-lived connection.
//!
//! Admission identity travels with the engine handle: [`RemoteEngine::with_tenant`]
//! names the tenant every submission is accounted against, and
//! [`RemoteEngine::with_policy`] picks what the server does when that tenant is
//! at its in-flight cap — shed immediately, or queue as backpressure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use cjoin_common::{Error, Result};
use cjoin_query::wire::{read_frame, write_frame, AdmissionPolicy, Request, Response, ServerStats};
use cjoin_query::{
    EngineStats, IngestBatch, IngestReceipt, JoinEngine, QueryError, QueryOutcome, QueryTicket,
    ReadyTicket, SchedulerSummary, StarQuery,
};

/// How many idle connections the engine keeps warm for reuse. Beyond this,
/// finished connections are simply closed — the cap bounds idle sockets held
/// against the server, it never limits concurrency (a pool miss opens a fresh
/// connection).
const POOL_CAP: usize = 8;

/// The shared idle-connection pool; a plain LIFO so the most recently used
/// (least likely to have been reaped as idle) connection is reused first.
type Pool = Arc<Mutex<Vec<TcpStream>>>;

/// Returns `stream` to the pool, or closes it if the pool is at capacity.
fn check_in(pool: &Pool, stream: TcpStream) {
    let mut idle = pool.lock().unwrap_or_else(|e| e.into_inner());
    if idle.len() < POOL_CAP {
        idle.push(stream);
    }
}

fn io_error(context: &str, e: &io::Error) -> Error {
    Error::invalid_state(format!("{context}: {e}"))
}

fn unexpected_response(context: &str, response: &Response) -> Error {
    let what = match response {
        Response::Submitted { .. } => "Submitted",
        Response::Outcome(_) => "Outcome",
        Response::Stats(_) => "Stats",
        Response::Ack => "Ack",
        Response::Ingested(_) => "Ingested",
        Response::Protocol { .. } => "Protocol",
    };
    Error::invalid_state(format!("unexpected server response to {context}: {what}"))
}

/// A [`JoinEngine`] whose pipeline lives on the other side of a TCP socket.
///
/// ```no_run
/// use cjoin_client::RemoteEngine;
/// use cjoin_query::wire::AdmissionPolicy;
/// use cjoin_query::JoinEngine;
///
/// let engine = RemoteEngine::connect("127.0.0.1:7878")
///     .unwrap()
///     .with_tenant("analytics")
///     .with_policy(AdmissionPolicy::Queue);
/// # let query: cjoin_query::StarQuery = unimplemented!();
/// let result = engine.execute(&query).unwrap();
/// ```
pub struct RemoteEngine {
    addr: SocketAddr,
    tenant: String,
    policy: AdmissionPolicy,
    name: String,
    pool: Pool,
}

impl RemoteEngine {
    /// Connects to a `cjoin-server` at `addr`, verifying reachability with a
    /// stats round trip. Defaults: tenant `"default"`, policy
    /// [`AdmissionPolicy::Queue`], display name `"served"`.
    ///
    /// # Errors
    /// Fails if the address does not resolve or the server does not answer.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| io_error("server address did not resolve", &e))?
            .next()
            .ok_or_else(|| Error::invalid_state("server address resolved to nothing"))?;
        let engine = Self {
            addr,
            tenant: "default".to_string(),
            policy: AdmissionPolicy::Queue,
            name: "served".to_string(),
            pool: Pool::default(),
        };
        engine.server_stats()?;
        Ok(engine)
    }

    /// Sets the tenant every subsequent submission is accounted against.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets what the server does when this client's tenant is at its
    /// in-flight cap.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the display name reported by [`JoinEngine::name`] (used in
    /// experiment tables).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The server address this engine talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn open(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)
            .map_err(|e| io_error("could not connect to cjoin-server", &e))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Result<Response> {
        match read_frame(stream).map_err(|e| io_error("reading server response failed", &e))? {
            None => Err(Error::invalid_state(
                "server closed the connection without answering",
            )),
            Some(payload) => Response::decode(&payload)
                .map_err(|e| Error::invalid_state(format!("undecodable server response: {e}"))),
        }
    }

    fn roundtrip(&self, request: &Request) -> Result<Response> {
        let mut stream = self.open()?;
        write_frame(&mut stream, &request.encode())
            .map_err(|e| io_error("sending request failed", &e))?;
        Self::read_response(&mut stream)
    }

    /// Fetches the full [`ServerStats`] (engine counters plus per-tenant
    /// admission decisions).
    ///
    /// # Errors
    /// Propagates transport failures and protocol errors.
    pub fn server_stats(&self) -> Result<ServerStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Protocol { kind, message } => Err(Error::invalid_state(format!(
                "server refused stats ({kind}): {message}"
            ))),
            other => Err(unexpected_response("stats", &other)),
        }
    }

    /// Turns the server's answer to a submit frame into a ticket, deciding
    /// what happens to the connection: a live ticket keeps it (the wait frame
    /// travels on it), while an immediately resolved or refused submission
    /// leaves the connection clean, so it goes back to the pool.
    fn finish_submit(&self, stream: TcpStream, response: Response) -> Result<Box<dyn QueryTicket>> {
        match response {
            Response::Submitted { ticket } => Ok(Box::new(RemoteTicket {
                stream,
                ticket,
                pool: Arc::clone(&self.pool),
            })),
            // A shed or refused submission comes back as an immediate outcome;
            // hand it to the caller as a pre-resolved ticket so the typed
            // QueryError surfaces through wait(), exactly like in-process.
            Response::Outcome(outcome) => {
                check_in(&self.pool, stream);
                Ok(Box::new(ReadyTicket::new(outcome)))
            }
            Response::Protocol { kind, message } => {
                check_in(&self.pool, stream);
                Err(Error::invalid_state(format!(
                    "server refused submit ({kind}): {message}"
                )))
            }
            other => Err(unexpected_response("submit", &other)),
        }
    }
}

impl JoinEngine for RemoteEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, query: StarQuery) -> Result<Box<dyn QueryTicket>> {
        let payload = Request::Submit {
            tenant: self.tenant.clone(),
            policy: self.policy,
            query: Box::new(query),
        }
        .encode();
        // Prefer a pooled connection. The server may have dropped it while
        // idle, so a transport failure on the reused socket falls back to the
        // per-query path below instead of surfacing to the caller. (If the
        // server had in fact admitted the submit before the connection died,
        // its connection drain cancels the orphaned ticket, so the retry
        // costs at most transient duplicate scan work, never leaked state.)
        let pooled = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        if let Some(mut stream) = pooled {
            if write_frame(&mut stream, &payload).is_ok() {
                if let Ok(response) = Self::read_response(&mut stream) {
                    return self.finish_submit(stream, response);
                }
            }
        }
        let mut stream = self.open()?;
        write_frame(&mut stream, &payload).map_err(|e| io_error("sending submit failed", &e))?;
        let response = Self::read_response(&mut stream)?;
        self.finish_submit(stream, response)
    }

    fn stats(&self) -> EngineStats {
        self.server_stats().map(|s| s.engine).unwrap_or_default()
    }

    fn scheduler_summary(&self) -> Option<SchedulerSummary> {
        self.server_stats().ok().and_then(|s| s.scheduler)
    }

    fn ingest(&self, batch: IngestBatch) -> Result<IngestReceipt> {
        // A short-lived connection like the other control requests: the
        // server answers only after the batch is durable and visible, so
        // receiving the receipt *is* the durability acknowledgement.
        let request = Request::Ingest {
            tenant: self.tenant.clone(),
            batch: Box::new(batch),
        };
        match self.roundtrip(&request)? {
            Response::Ingested(receipt) => Ok(receipt),
            Response::Outcome(Err(QueryError::Engine(e))) => Err(e),
            Response::Outcome(Err(other)) => Err(Error::invalid_state(format!(
                "server rejected ingest: {other}"
            ))),
            Response::Protocol { kind, message } => Err(Error::invalid_state(format!(
                "server refused ingest ({kind}): {message}"
            ))),
            other => Err(unexpected_response("ingest", &other)),
        }
    }

    fn shutdown(&self) {
        // Best effort: the server may already be gone, which is fine — the
        // contract is idempotence.
        let _ = self.roundtrip(&Request::Shutdown);
    }
}

/// Completion handle for one remotely submitted query; owns the connection
/// its ticket is scoped to, and returns it to the engine's pool once the
/// outcome has been cleanly received.
pub struct RemoteTicket {
    stream: TcpStream,
    ticket: u64,
    pool: Pool,
}

impl QueryTicket for RemoteTicket {
    fn wait(self: Box<Self>) -> QueryOutcome {
        let ticket = self.ticket;
        let pool = self.pool;
        let mut stream = self.stream;
        let response = (|| -> Result<Response> {
            write_frame(&mut stream, &Request::Wait { ticket }.encode())
                .map_err(|e| io_error("sending wait failed", &e))?;
            RemoteEngine::read_response(&mut stream)
        })();
        match response {
            // A full submit/wait exchange completed: the connection carries no
            // residue and is safe to reuse for the next query.
            Ok(Response::Outcome(outcome)) => {
                check_in(&pool, stream);
                outcome
            }
            // Anything else leaves the connection in an unknown framing state;
            // dropping `stream` here closes it instead of pooling it.
            Ok(Response::Protocol { kind, message }) => Err(QueryError::Engine(
                Error::invalid_state(format!("server refused wait ({kind}): {message}")),
            )),
            Ok(other) => Err(QueryError::Engine(unexpected_response("wait", &other))),
            Err(e) => Err(QueryError::Engine(e)),
        }
    }

    fn cancel(&self) {
        // `&TcpStream` is `Read + Write`, so a shared borrow suffices here;
        // wait() later reuses the same connection for the outcome.
        let mut stream = &self.stream;
        if write_frame(
            &mut stream,
            &Request::Cancel {
                ticket: self.ticket,
            }
            .encode(),
        )
        .is_ok()
        {
            let _ = read_frame(&mut stream);
        }
    }
}
