//! `cjoin-client` — the thin TCP client for `cjoin-server`.
//!
//! The one design decision that matters here: [`RemoteEngine`] implements
//! [`JoinEngine`]. Everything written against `&dyn JoinEngine` — the
//! correctness-oracle tests, the closed-loop benchmark driver, the examples —
//! drives a *served* engine over the wire without changing a line, which is
//! how the equivalence suite proves the socket path bit-identical to the
//! in-process path.
//!
//! The transport is deliberately simple: one connection per submitted query.
//! `submit` opens a connection, sends the submit frame, and keeps the
//! connection inside the returned [`RemoteTicket`]; `wait` sends the wait
//! frame on that same connection and blocks for the outcome (mirroring the
//! server's connection-scoped tickets). Control requests (`stats`,
//! `shutdown`) each use a short-lived connection.
//!
//! Admission identity travels with the engine handle: [`RemoteEngine::with_tenant`]
//! names the tenant every submission is accounted against, and
//! [`RemoteEngine::with_policy`] picks what the server does when that tenant is
//! at its in-flight cap — shed immediately, or queue as backpressure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use cjoin_common::{Error, Result};
use cjoin_query::wire::{read_frame, write_frame, AdmissionPolicy, Request, Response, ServerStats};
use cjoin_query::{
    EngineStats, JoinEngine, QueryError, QueryOutcome, QueryTicket, ReadyTicket, StarQuery,
};

fn io_error(context: &str, e: &io::Error) -> Error {
    Error::invalid_state(format!("{context}: {e}"))
}

fn unexpected_response(context: &str, response: &Response) -> Error {
    let what = match response {
        Response::Submitted { .. } => "Submitted",
        Response::Outcome(_) => "Outcome",
        Response::Stats(_) => "Stats",
        Response::Ack => "Ack",
        Response::Protocol { .. } => "Protocol",
    };
    Error::invalid_state(format!("unexpected server response to {context}: {what}"))
}

/// A [`JoinEngine`] whose pipeline lives on the other side of a TCP socket.
///
/// ```no_run
/// use cjoin_client::RemoteEngine;
/// use cjoin_query::wire::AdmissionPolicy;
/// use cjoin_query::JoinEngine;
///
/// let engine = RemoteEngine::connect("127.0.0.1:7878")
///     .unwrap()
///     .with_tenant("analytics")
///     .with_policy(AdmissionPolicy::Queue);
/// # let query: cjoin_query::StarQuery = unimplemented!();
/// let result = engine.execute(&query).unwrap();
/// ```
pub struct RemoteEngine {
    addr: SocketAddr,
    tenant: String,
    policy: AdmissionPolicy,
    name: String,
}

impl RemoteEngine {
    /// Connects to a `cjoin-server` at `addr`, verifying reachability with a
    /// stats round trip. Defaults: tenant `"default"`, policy
    /// [`AdmissionPolicy::Queue`], display name `"served"`.
    ///
    /// # Errors
    /// Fails if the address does not resolve or the server does not answer.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| io_error("server address did not resolve", &e))?
            .next()
            .ok_or_else(|| Error::invalid_state("server address resolved to nothing"))?;
        let engine = Self {
            addr,
            tenant: "default".to_string(),
            policy: AdmissionPolicy::Queue,
            name: "served".to_string(),
        };
        engine.server_stats()?;
        Ok(engine)
    }

    /// Sets the tenant every subsequent submission is accounted against.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets what the server does when this client's tenant is at its
    /// in-flight cap.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the display name reported by [`JoinEngine::name`] (used in
    /// experiment tables).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The server address this engine talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn open(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)
            .map_err(|e| io_error("could not connect to cjoin-server", &e))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Result<Response> {
        match read_frame(stream).map_err(|e| io_error("reading server response failed", &e))? {
            None => Err(Error::invalid_state(
                "server closed the connection without answering",
            )),
            Some(payload) => Response::decode(&payload)
                .map_err(|e| Error::invalid_state(format!("undecodable server response: {e}"))),
        }
    }

    fn roundtrip(&self, request: &Request) -> Result<Response> {
        let mut stream = self.open()?;
        write_frame(&mut stream, &request.encode())
            .map_err(|e| io_error("sending request failed", &e))?;
        Self::read_response(&mut stream)
    }

    /// Fetches the full [`ServerStats`] (engine counters plus per-tenant
    /// admission decisions).
    ///
    /// # Errors
    /// Propagates transport failures and protocol errors.
    pub fn server_stats(&self) -> Result<ServerStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Protocol { kind, message } => Err(Error::invalid_state(format!(
                "server refused stats ({kind}): {message}"
            ))),
            other => Err(unexpected_response("stats", &other)),
        }
    }
}

impl JoinEngine for RemoteEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, query: StarQuery) -> Result<Box<dyn QueryTicket>> {
        let mut stream = self.open()?;
        let request = Request::Submit {
            tenant: self.tenant.clone(),
            policy: self.policy,
            query: Box::new(query),
        };
        write_frame(&mut stream, &request.encode())
            .map_err(|e| io_error("sending submit failed", &e))?;
        match Self::read_response(&mut stream)? {
            Response::Submitted { ticket } => Ok(Box::new(RemoteTicket { stream, ticket })),
            // A shed or refused submission comes back as an immediate outcome;
            // hand it to the caller as a pre-resolved ticket so the typed
            // QueryError surfaces through wait(), exactly like in-process.
            Response::Outcome(outcome) => Ok(Box::new(ReadyTicket::new(outcome))),
            Response::Protocol { kind, message } => Err(Error::invalid_state(format!(
                "server refused submit ({kind}): {message}"
            ))),
            other => Err(unexpected_response("submit", &other)),
        }
    }

    fn stats(&self) -> EngineStats {
        self.server_stats().map(|s| s.engine).unwrap_or_default()
    }

    fn shutdown(&self) {
        // Best effort: the server may already be gone, which is fine — the
        // contract is idempotence.
        let _ = self.roundtrip(&Request::Shutdown);
    }
}

/// Completion handle for one remotely submitted query; owns the connection
/// its ticket is scoped to.
pub struct RemoteTicket {
    stream: TcpStream,
    ticket: u64,
}

impl QueryTicket for RemoteTicket {
    fn wait(self: Box<Self>) -> QueryOutcome {
        let ticket = self.ticket;
        let mut stream = self.stream;
        let response = (|| -> Result<Response> {
            write_frame(&mut stream, &Request::Wait { ticket }.encode())
                .map_err(|e| io_error("sending wait failed", &e))?;
            RemoteEngine::read_response(&mut stream)
        })();
        match response {
            Ok(Response::Outcome(outcome)) => outcome,
            Ok(Response::Protocol { kind, message }) => Err(QueryError::Engine(
                Error::invalid_state(format!("server refused wait ({kind}): {message}")),
            )),
            Ok(other) => Err(QueryError::Engine(unexpected_response("wait", &other))),
            Err(e) => Err(QueryError::Engine(e)),
        }
    }

    fn cancel(&self) {
        // `&TcpStream` is `Read + Write`, so a shared borrow suffices here;
        // wait() later reuses the same connection for the outcome.
        let mut stream = &self.stream;
        if write_frame(
            &mut stream,
            &Request::Cancel {
                ticket: self.ticket,
            }
            .encode(),
        )
        .is_ok()
        {
            let _ = read_frame(&mut stream);
        }
    }
}
