//! The Filter step and the ordered filter chain (§3.2.2).
//!
//! A Filter takes a batch of in-flight fact tuples and, for each tuple, probes its
//! dimension hash table with the tuple's foreign key, combines the tuple's bit-vector
//! with the matching entry's bit-vector (or with the dimension's complement bitmap on
//! a miss), attaches the joining dimension row for downstream aggregation, and drops
//! the tuple if its bit-vector became zero.
//!
//! [`FilterChain`] holds the current *order* of Filters. The order is shared by all
//! worker threads and can be changed at run time by the optimizer (§3.4); workers
//! take a snapshot of the order once per batch, so a reordering simply applies from
//! the next batch onwards.
//!
//! ## Two hot-path implementations
//!
//! [`FilterChain::process_batch`] dispatches on the `batched_probing` knob
//! ([`CjoinConfig::batched_probing`](crate::config::CjoinConfig::batched_probing)):
//!
//! * **batched** (default): a *filter-major* loop. For each Filter the entries read
//!   lock is taken once ([`DimensionTable::probe_batch`]), entries are borrowed
//!   instead of `Arc`-cloned, per-filter statistics accumulate in batch-local
//!   counters flushed with one `fetch_add` per counter per (batch, filter), the
//!   AND + emptiness test is fused into a single word pass, and survivors are
//!   compacted in place with stable swap-retention.
//! * **per-tuple** (ablation baseline): the tuple-major loop the paper's
//!   description starts from — one lock acquisition, one `Arc` clone and up to four
//!   atomic increments per tuple per Filter via [`apply_filter`].
//!
//! Both produce identical surviving tuples and statistics totals; the
//! `abl_probe_locking` benchmark quantifies the difference. (When dimension churn
//! creates multi-version keys, split tuples are appended at the batch tail and the
//! two paths may order those splits differently — survivors, bits and attached
//! rows still agree, and downstream aggregation is order-insensitive.)

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::RwLock;

use cjoin_common::QuerySet;

use crate::dimension::{DimEntry, DimensionTable, FilterStats};
use crate::tuple::{Batch, InFlightTuple};

/// Combines a fact tuple with the content *versions* stored for its key when more
/// than one exists (a dimension row was upserted while queries referencing the old
/// contents are still live — see the snapshot-versioning notes in
/// [`crate::dimension`]).
///
/// Claimed-split: walking versions oldest-first, each version takes the tuple bits
/// it carries that no earlier version claimed (a referencing query's bit lives on
/// exactly one version; an ignoring query's bit lives on all versions and is
/// claimed by the first, whose attached row it never reads). The first version
/// with a non-empty take keeps the tuple in place; every later take becomes a
/// **split** — a clone of the tuple carrying that version's row in `dims[slot]` —
/// so no downstream consumer ever sees one tuple mixing two versions' attribute
/// values. Bits claimed by no version are dropped, exactly as a probe miss drops
/// them. Returns whether the in-place tuple survives; splits (which always
/// survive) are appended to `splits` and must be routed through the *remaining*
/// filters by the caller.
fn combine_versions(
    versions: &[Arc<DimEntry>],
    slot: usize,
    tuple: &mut InFlightTuple,
    splits: &mut Vec<InFlightTuple>,
) -> bool {
    debug_assert!(versions.len() > 1);
    let mut claimed = QuerySet::new(tuple.bits.capacity());
    let mut first: Option<(usize, QuerySet)> = None;
    for (vi, version) in versions.iter().enumerate() {
        let mut take = tuple.bits.clone();
        version.bits.and_into(&mut take);
        take.and_not_assign(&claimed);
        if take.is_empty() {
            continue;
        }
        claimed.or_assign(&take);
        if first.is_none() {
            first = Some((vi, take));
        } else {
            // Clone the tuple's pre-combine state (the in-place tuple is only
            // mutated below, after the loop) with this version's row attached.
            let mut split = tuple.clone();
            split.bits = take;
            split.ensure_slots(slot + 1);
            split.dims[slot] = Some(version.row.clone());
            splits.push(split);
        }
    }
    match first {
        None => {
            tuple.bits.clear();
            false
        }
        Some((vi, take)) => {
            tuple.bits = take;
            tuple.ensure_slots(slot + 1);
            tuple.dims[slot] = Some(versions[vi].row.clone());
            true
        }
    }
}

/// Applies one Filter to a single tuple (the `batched_probing = false` baseline).
///
/// Returns `true` if the tuple survives (non-zero bit-vector). `early_skip` enables
/// the §3.2.2 optimisation: when every query the tuple is still relevant to ignores
/// this dimension (`bτ AND ¬bDj == 0`), the probe is skipped entirely.
///
/// When the key has several content versions (dimension churn), the tuple is
/// claimed-split: extra surviving tuples — one per additional claiming version —
/// are appended to `splits`, and the caller must run them through the filters
/// *after* this one. A `false` return implies `splits` gained nothing.
#[inline]
pub fn apply_filter(
    dim: &DimensionTable,
    tuple: &mut InFlightTuple,
    early_skip: bool,
    splits: &mut Vec<InFlightTuple>,
) -> bool {
    let stats = &dim.stats;
    stats.tuples_in.fetch_add(1, Ordering::Relaxed);

    if early_skip && dim.complement.contains_all(&tuple.bits) {
        // No live query for this tuple references the dimension: forward as-is.
        stats.skips.fetch_add(1, Ordering::Relaxed);
        return true;
    }

    stats.probes.fetch_add(1, Ordering::Relaxed);
    let fk = tuple.row.int(dim.fact_fk_column);
    let versions = dim.probe_versions(fk);
    match versions.as_slice() {
        [] => {
            // The joining dimension tuple is not stored: it satisfies no registered
            // predicate, so only queries that ignore this dimension may keep the tuple.
            dim.complement.and_into(&mut tuple.bits);
            if tuple.bits.is_empty() {
                stats.tuples_dropped.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                true
            }
        }
        [entry] => {
            entry.bits.and_into(&mut tuple.bits);
            if tuple.bits.is_empty() {
                stats.tuples_dropped.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                tuple.ensure_slots(dim.slot + 1);
                tuple.dims[dim.slot] = Some(entry.row.clone());
                true
            }
        }
        versions => {
            if combine_versions(versions, dim.slot, tuple, splits) {
                true
            } else {
                stats.tuples_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

/// The ordered sequence of Filters shared by all worker threads.
#[derive(Debug, Default)]
pub struct FilterChain {
    filters: RwLock<Vec<Arc<DimensionTable>>>,
}

impl FilterChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of Filters currently in the chain.
    pub fn len(&self) -> usize {
        self.filters.read().len()
    }

    /// Whether the chain has no Filters.
    pub fn is_empty(&self) -> bool {
        self.filters.read().is_empty()
    }

    /// Returns the Filter covering `dimension`, if present.
    pub fn find(&self, dimension: &str) -> Option<Arc<DimensionTable>> {
        self.filters
            .read()
            .iter()
            .find(|f| f.name == dimension)
            .cloned()
    }

    /// Appends a Filter (new Filters are appended; the optimizer may move them later,
    /// §3.3.1).
    pub fn push(&self, filter: Arc<DimensionTable>) {
        self.filters.write().push(filter);
    }

    /// Removes the Filter covering `dimension` (used when its hash table becomes
    /// empty after a query finishes, Algorithm 2).
    pub fn remove(&self, dimension: &str) -> bool {
        let mut filters = self.filters.write();
        let before = filters.len();
        filters.retain(|f| f.name != dimension);
        filters.len() != before
    }

    /// A point-in-time snapshot of the chain order.
    pub fn snapshot(&self) -> Vec<Arc<DimensionTable>> {
        self.filters.read().clone()
    }

    /// Current order as dimension names (diagnostics / tests).
    pub fn order(&self) -> Vec<String> {
        self.filters.read().iter().map(|f| f.name.clone()).collect()
    }

    /// Replaces the order with `new_order` (a permutation expressed as dimension
    /// names). Names not present in the chain are ignored; filters missing from
    /// `new_order` keep their relative order at the end. Returns `true` if the order
    /// changed.
    pub fn reorder(&self, new_order: &[String]) -> bool {
        let mut filters = self.filters.write();
        let old_names: Vec<String> = filters.iter().map(|f| f.name.clone()).collect();
        let mut remaining = std::mem::take(&mut *filters);
        let mut reordered: Vec<Arc<DimensionTable>> = Vec::with_capacity(remaining.len());
        for name in new_order {
            if let Some(pos) = remaining.iter().position(|f| &f.name == name) {
                reordered.push(remaining.remove(pos));
            }
        }
        // Whatever remains (not mentioned in new_order) keeps its old relative order.
        reordered.append(&mut remaining);
        let changed = reordered
            .iter()
            .map(|f| f.name.as_str())
            .ne(old_names.iter().map(String::as_str));
        *filters = reordered;
        changed
    }

    /// Runs a batch through the given filter sequence in order, dropping tuples whose
    /// bit-vector becomes zero. Returns the number of tuples dropped.
    ///
    /// `batched_probing` selects between the batch-vectorized filter-major hot path
    /// and the per-tuple baseline (see the module docs). Dropped tuples become batch
    /// spares and keep their allocations; the relative order of survivors is
    /// preserved by both paths.
    ///
    /// This is the body of a Stage worker: it is deliberately a free function over a
    /// snapshot of the order so that vertical configurations can run a sub-sequence.
    pub fn process_batch(
        filters: &[Arc<DimensionTable>],
        batch: &mut Batch,
        early_skip: bool,
        batched_probing: bool,
    ) -> usize {
        let before = batch.len();
        if batched_probing {
            Self::process_batch_batched(filters, batch, early_skip);
        } else {
            Self::process_batch_per_tuple(filters, batch, early_skip);
        }
        // Multi-version splits can grow the batch past its input size, in which
        // case the net drop count floors at zero (per-filter drop statistics are
        // tracked exactly in FilterStats either way).
        before.saturating_sub(batch.len())
    }

    /// Filter-major batched hot path: one lock acquisition, borrowed entries and one
    /// stats flush per (batch, filter); fused AND + emptiness word pass per tuple.
    fn process_batch_batched(filters: &[Arc<DimensionTable>], batch: &mut Batch, early_skip: bool) {
        for dim in filters {
            let live = batch.len();
            if live == 0 {
                return;
            }
            let mut stats = BatchLocalStats {
                tuples_in: live as u64,
                ..BatchLocalStats::default()
            };
            let slot = dim.slot;
            let guard = dim.probe_batch();
            // Splits produced by multi-version keys (dimension churn): appended to
            // the batch tail after compaction, so the outer filter-major loop runs
            // them through the *remaining* filters — they already carry this
            // filter's outcome.
            let mut splits: Vec<InFlightTuple> = Vec::new();
            // Stable swap-retention: survivors are compacted to the front in order;
            // dropped tuples end up beyond `kept` and become recyclable spares.
            let mut kept = 0usize;
            for i in 0..live {
                let tuple = &mut batch[i];
                let survives = if early_skip && dim.complement.contains_all(&tuple.bits) {
                    stats.skips += 1;
                    true
                } else {
                    stats.probes += 1;
                    let fk = tuple.row.int(dim.fact_fk_column);
                    match guard.get(fk) {
                        Some([entry]) => {
                            if entry.bits.and_into_with_zero_check(&mut tuple.bits) {
                                stats.tuples_dropped += 1;
                                false
                            } else {
                                tuple.ensure_slots(slot + 1);
                                tuple.dims[slot] = Some(entry.row.clone());
                                true
                            }
                        }
                        Some(versions) => {
                            if combine_versions(versions, slot, tuple, &mut splits) {
                                true
                            } else {
                                stats.tuples_dropped += 1;
                                false
                            }
                        }
                        None => {
                            if dim.complement.and_into_with_zero_check(&mut tuple.bits) {
                                stats.tuples_dropped += 1;
                                false
                            } else {
                                true
                            }
                        }
                    }
                };
                if survives {
                    if kept != i {
                        batch.swap(kept, i);
                    }
                    kept += 1;
                }
            }
            drop(guard);
            batch.truncate_live(kept);
            for split in splits {
                batch.push(split);
            }
            stats.flush(&dim.stats);
        }
    }

    /// Tuple-major baseline: per-tuple locking, `Arc` clones and atomic statistics
    /// (kept for the `batched_probing` ablation).
    fn process_batch_per_tuple(
        filters: &[Arc<DimensionTable>],
        batch: &mut Batch,
        early_skip: bool,
    ) {
        let live = batch.len();
        let mut kept = 0usize;
        // Worklist of (split tuple, index of the first filter it still needs).
        // Multi-version keys can split while a split is mid-chain, so this drains
        // FIFO until no filter produces further splits.
        let mut worklist: std::collections::VecDeque<(InFlightTuple, usize)> =
            std::collections::VecDeque::new();
        let mut splits: Vec<InFlightTuple> = Vec::new();
        for i in 0..live {
            let mut survives = true;
            for (fi, dim) in filters.iter().enumerate() {
                survives = apply_filter(dim, &mut batch[i], early_skip, &mut splits);
                for split in splits.drain(..) {
                    worklist.push_back((split, fi + 1));
                }
                if !survives {
                    break;
                }
            }
            if survives {
                if kept != i {
                    batch.swap(kept, i);
                }
                kept += 1;
            }
        }
        batch.truncate_live(kept);
        while let Some((mut tuple, start)) = worklist.pop_front() {
            let mut survives = true;
            for (fi, dim) in filters.iter().enumerate().skip(start) {
                survives = apply_filter(dim, &mut tuple, early_skip, &mut splits);
                for split in splits.drain(..) {
                    worklist.push_back((split, fi + 1));
                }
                if !survives {
                    break;
                }
            }
            if survives {
                batch.push(tuple);
            }
        }
    }
}

/// Per-(batch, filter) statistics accumulated in registers/stack and flushed to the
/// shared [`FilterStats`] atomics once, instead of up to four `fetch_add`s per tuple.
#[derive(Debug, Default)]
struct BatchLocalStats {
    tuples_in: u64,
    tuples_dropped: u64,
    probes: u64,
    skips: u64,
}

impl BatchLocalStats {
    #[inline]
    fn flush(&self, stats: &FilterStats) {
        if self.tuples_in > 0 {
            stats.tuples_in.fetch_add(self.tuples_in, Ordering::Relaxed);
        }
        if self.tuples_dropped > 0 {
            stats
                .tuples_dropped
                .fetch_add(self.tuples_dropped, Ordering::Relaxed);
        }
        if self.probes > 0 {
            stats.probes.fetch_add(self.probes, Ordering::Relaxed);
        }
        if self.skips > 0 {
            stats.skips.fetch_add(self.skips, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_common::{QueryId, QuerySet};
    use cjoin_storage::{Row, RowId, Value};

    /// Builds a dimension table named `name` at `slot`, reading the foreign key from
    /// fact column `fk_col`, with query 0 selecting the given keys and query 1 not
    /// referencing the dimension.
    fn dim(name: &str, slot: usize, fk_col: usize, selected_by_q0: &[i64]) -> Arc<DimensionTable> {
        let t = DimensionTable::new(name, slot, fk_col, 0, 8, &QuerySet::new(8));
        let rows: Vec<(i64, Row)> = selected_by_q0
            .iter()
            .map(|&k| {
                (
                    k,
                    Row::new(vec![Value::int(k), Value::str(format!("{name}-{k}"))]),
                )
            })
            .collect();
        t.register_query(QueryId(0), &rows);
        t.register_unreferencing_query(QueryId(1));
        Arc::new(t)
    }

    fn fact_tuple(fk1: i64, fk2: i64) -> InFlightTuple {
        InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(fk1), Value::int(fk2), Value::int(100)]),
            QuerySet::from_bits(8, [0, 1]),
            2,
        )
    }

    #[test]
    fn hit_keeps_selected_queries_and_attaches_row() {
        let d = dim("color", 0, 0, &[7]);
        let mut t = fact_tuple(7, 0);
        assert!(apply_filter(&d, &mut t, false, &mut Vec::new()));
        assert_eq!(t.bits.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(t.dims[0].is_some());
        assert_eq!(
            t.dims[0].as_ref().unwrap().get(1).as_str().unwrap(),
            "color-7"
        );
    }

    #[test]
    fn miss_keeps_only_unreferencing_queries() {
        let d = dim("color", 0, 0, &[7]);
        let mut t = fact_tuple(9, 0); // key 9 not selected by query 0
        assert!(apply_filter(&d, &mut t, false, &mut Vec::new()));
        assert_eq!(
            t.bits.iter().collect::<Vec<_>>(),
            vec![1],
            "only the ignoring query survives"
        );
        assert!(t.dims[0].is_none());
    }

    #[test]
    fn tuple_dropped_when_no_query_remains() {
        let d = DimensionTable::new("color", 0, 0, 0, 8, &QuerySet::new(8));
        d.register_query(QueryId(0), &[(7, Row::new(vec![Value::int(7)]))]);
        // Only query 0 is registered and it selects key 7 only.
        let mut t = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(9)]),
            QuerySet::from_bits(8, [0]),
            1,
        );
        assert!(!apply_filter(&d, &mut t, false, &mut Vec::new()));
        assert!(t.bits.is_empty());
        assert_eq!(d.stats.tuples_dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn early_skip_avoids_probe_when_no_live_query_references_dimension() {
        let d = dim("color", 0, 0, &[7]);
        // Tuple only relevant to query 1, which ignores the dimension.
        let mut t = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(9)]),
            QuerySet::from_bits(8, [1]),
            1,
        );
        assert!(apply_filter(&d, &mut t, true, &mut Vec::new()));
        let (_, _, probes, skips) = d.stats.snapshot();
        assert_eq!(probes, 0);
        assert_eq!(skips, 1);
        // Without early skip the probe happens but the outcome is identical.
        let mut t2 = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(9)]),
            QuerySet::from_bits(8, [1]),
            1,
        );
        assert!(apply_filter(&d, &mut t2, false, &mut Vec::new()));
        assert_eq!(t2.bits.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn chain_processes_filters_in_sequence() {
        let d1 = dim("color", 0, 0, &[7]);
        let d2 = dim("size", 1, 1, &[3]);
        let chain = FilterChain::new();
        chain.push(Arc::clone(&d1));
        chain.push(Arc::clone(&d2));
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.order(), vec!["color", "size"]);

        for batched in [true, false] {
            let mut batch = Batch::from(vec![
                fact_tuple(7, 3), // joins both selected tuples: stays relevant to q0 and q1
                fact_tuple(7, 9), // second dimension miss: only q1 remains
                fact_tuple(9, 9), // both miss: only q1 remains
            ]);
            let dropped = FilterChain::process_batch(&chain.snapshot(), &mut batch, true, batched);
            assert_eq!(
                dropped, 0,
                "query 1 ignores both dimensions so nothing is dropped"
            );
            assert_eq!(batch[0].bits.iter().collect::<Vec<_>>(), vec![0, 1]);
            assert_eq!(batch[1].bits.iter().collect::<Vec<_>>(), vec![1]);
            assert_eq!(batch[2].bits.iter().collect::<Vec<_>>(), vec![1]);
            assert!(batch[0].dims[0].is_some() && batch[0].dims[1].is_some());
        }
    }

    #[test]
    fn chain_drops_tuples_relevant_to_no_query() {
        let d1 = DimensionTable::new("color", 0, 0, 0, 8, &QuerySet::new(8));
        d1.register_query(QueryId(0), &[(7, Row::new(vec![Value::int(7)]))]);
        let chain = FilterChain::new();
        chain.push(Arc::new(d1));
        for batched in [true, false] {
            let mut batch = Batch::from(vec![InFlightTuple::new(
                RowId(0),
                Row::new(vec![Value::int(9)]),
                QuerySet::from_bits(8, [0]),
                1,
            )]);
            let dropped = FilterChain::process_batch(&chain.snapshot(), &mut batch, true, batched);
            assert_eq!(dropped, 1);
            assert!(batch.is_empty());
            assert_eq!(batch.spare_tuples(), 1, "dropped tuple is kept as a spare");
        }
    }

    #[test]
    fn find_push_remove() {
        let chain = FilterChain::new();
        assert!(chain.is_empty());
        chain.push(dim("color", 0, 0, &[1]));
        chain.push(dim("size", 1, 1, &[1]));
        assert!(chain.find("color").is_some());
        assert!(chain.find("shape").is_none());
        assert!(chain.remove("color"));
        assert!(!chain.remove("color"));
        assert_eq!(chain.order(), vec!["size"]);
    }

    #[test]
    fn reorder_applies_permutation_and_keeps_unmentioned_filters() {
        let chain = FilterChain::new();
        chain.push(dim("a", 0, 0, &[1]));
        chain.push(dim("b", 1, 1, &[1]));
        chain.push(dim("c", 2, 2, &[1]));
        let changed = chain.reorder(&["c".into(), "a".into()]);
        assert!(changed);
        assert_eq!(chain.order(), vec!["c", "a", "b"]);
        // Unknown names are ignored.
        chain.reorder(&["zzz".into(), "b".into()]);
        assert_eq!(chain.order(), vec!["b", "c", "a"]);
    }

    #[test]
    fn filter_order_does_not_change_surviving_bits() {
        // The filtering invariant (§3.2.2) is order-independent; verify on a batch.
        let d1 = dim("color", 0, 0, &[7, 8]);
        let d2 = dim("size", 1, 1, &[3]);
        let make_batch = || -> Batch {
            Batch::from(vec![
                fact_tuple(7, 3),
                fact_tuple(8, 9),
                fact_tuple(1, 3),
                fact_tuple(2, 2),
            ])
        };
        for batched in [true, false] {
            let mut b1 = make_batch();
            FilterChain::process_batch(&[Arc::clone(&d1), Arc::clone(&d2)], &mut b1, true, batched);
            let mut b2 = make_batch();
            FilterChain::process_batch(&[Arc::clone(&d2), Arc::clone(&d1)], &mut b2, true, batched);
            let bits = |b: &Batch| -> Vec<Vec<usize>> {
                b.iter().map(|t| t.bits.iter().collect()).collect()
            };
            assert_eq!(bits(&b1), bits(&b2));
        }
    }

    #[test]
    fn dimension_churn_splits_tuples_instead_of_mixing_versions() {
        // Query 0 was admitted before an upsert changed key 7's attributes and
        // query 2 after it; query 1 ignores the dimension. A fact tuple joining
        // key 7 must reach downstream as per-version tuples: one carrying "old"
        // for queries 0 and 1, one carrying "new" for query 2 — never one tuple
        // with a mixed bit-set.
        let d = DimensionTable::new("color", 0, 0, 0, 8, &QuerySet::new(8));
        d.register_query(
            QueryId(0),
            &[(7, Row::new(vec![Value::int(7), Value::str("old")]))],
        );
        d.register_unreferencing_query(QueryId(1));
        d.register_query(
            QueryId(2),
            &[(7, Row::new(vec![Value::int(7), Value::str("new")]))],
        );
        let filters = [Arc::new(d)];
        for batched in [true, false] {
            for early_skip in [true, false] {
                let mut batch = Batch::from(vec![InFlightTuple::new(
                    RowId(0),
                    Row::new(vec![Value::int(7)]),
                    QuerySet::from_bits(8, [0, 1, 2]),
                    1,
                )]);
                let dropped = FilterChain::process_batch(&filters, &mut batch, early_skip, batched);
                assert_eq!(dropped, 0, "batched={batched}");
                assert_eq!(batch.len(), 2, "tuple split into one per version");
                let old = &batch[0];
                assert_eq!(old.bits.iter().collect::<Vec<_>>(), vec![0, 1]);
                assert_eq!(
                    old.dims[0].as_ref().unwrap().get(1).as_str().unwrap(),
                    "old"
                );
                let new = &batch[1];
                assert_eq!(new.bits.iter().collect::<Vec<_>>(), vec![2]);
                assert_eq!(
                    new.dims[0].as_ref().unwrap().get(1).as_str().unwrap(),
                    "new"
                );
            }
        }
    }

    #[test]
    fn single_version_path_is_unchanged_by_versioning() {
        // With exactly one version per key the split machinery must not engage:
        // no extra tuples, identical bits and stats to the pre-versioning path.
        let d = dim("color", 0, 0, &[7]);
        let mut batch = Batch::from(vec![fact_tuple(7, 0), fact_tuple(9, 0)]);
        let dropped = FilterChain::process_batch(&[Arc::clone(&d)], &mut batch, false, true);
        assert_eq!(dropped, 0);
        assert_eq!(batch.len(), 2, "no splits appeared");
        assert_eq!(d.stats.snapshot(), (2, 0, 2, 0));
    }

    #[test]
    fn batched_and_per_tuple_paths_agree_on_survivors_order_and_stats() {
        let make_dims = || (dim("color", 0, 0, &[7, 8]), dim("size", 1, 1, &[3]));
        let make_batch = || -> Batch {
            // Mix of hits, misses and tuples relevant only to the ignoring query.
            let mut tuples = vec![
                fact_tuple(7, 3),
                fact_tuple(8, 9),
                fact_tuple(1, 3),
                fact_tuple(2, 2),
                fact_tuple(8, 3),
            ];
            tuples.push(InFlightTuple::new(
                RowId(9),
                Row::new(vec![Value::int(1), Value::int(1), Value::int(0)]),
                QuerySet::from_bits(8, [0]),
                2,
            ));
            Batch::from(tuples)
        };
        let fingerprint = |b: &Batch| -> Vec<(u64, Vec<usize>, Vec<bool>)> {
            b.iter()
                .map(|t| {
                    (
                        t.row_id.0,
                        t.bits.iter().collect(),
                        t.dims.iter().map(Option::is_some).collect(),
                    )
                })
                .collect()
        };
        for early_skip in [true, false] {
            // Fresh dimension tables per arm so the statistics are comparable.
            let (b1_d1, b1_d2) = make_dims();
            let mut b1 = make_batch();
            let dropped1 = FilterChain::process_batch(
                &[Arc::clone(&b1_d1), Arc::clone(&b1_d2)],
                &mut b1,
                early_skip,
                true,
            );
            let (b2_d1, b2_d2) = make_dims();
            let mut b2 = make_batch();
            let dropped2 = FilterChain::process_batch(
                &[Arc::clone(&b2_d1), Arc::clone(&b2_d2)],
                &mut b2,
                early_skip,
                false,
            );
            assert_eq!(dropped1, dropped2, "early_skip={early_skip}");
            assert_eq!(
                fingerprint(&b1),
                fingerprint(&b2),
                "survivors, their order, bits and attached dims must match"
            );
            assert_eq!(
                b1_d1.stats.snapshot(),
                b2_d1.stats.snapshot(),
                "batch-local stats flush to identical totals (filter 1)"
            );
            assert_eq!(
                b1_d2.stats.snapshot(),
                b2_d2.stats.snapshot(),
                "batch-local stats flush to identical totals (filter 2)"
            );
        }
    }
}
