//! Stage layout and worker threads (§4).
//!
//! The Filters of the CJOIN pipeline are boxed into *Stages*; each Stage has its own
//! input queue and one or more worker threads. The paper studies three layouts:
//!
//! * **horizontal** — a single Stage containing the whole Filter sequence, with all
//!   worker threads assigned to it (each thread runs every Filter on disjoint
//!   batches). Best in the paper's measurements (Figure 4) and our default.
//! * **vertical** — one Stage per Filter with one thread each; batches hop from queue
//!   to queue, trading cache locality of the hash tables for inter-thread traffic.
//! * **hybrid** — several Stages, each covering a contiguous run of Filters.
//!
//! Because queries (and therefore Filters) come and go at run time, a Stage does not
//! own a fixed set of Filters; instead each worker snapshots the current filter chain
//! per batch and processes the contiguous slice assigned to its Stage. With a single
//! Stage this is the entire chain.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use crate::config::StageLayout;
use crate::dimension::DimensionTable;
use crate::filter::FilterChain;
use crate::tuple::Message;

/// The thread layout derived from a [`StageLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    /// Number of worker threads per Stage; `threads_per_stage.len()` is the number of
    /// Stages.
    pub threads_per_stage: Vec<usize>,
}

impl StagePlan {
    /// Derives the plan from the configured layout and total worker-thread budget.
    pub fn derive(layout: &StageLayout, worker_threads: usize) -> Self {
        let threads_per_stage = match layout {
            StageLayout::Horizontal => vec![worker_threads.max(1)],
            StageLayout::Vertical => vec![1; worker_threads.max(1)],
            StageLayout::Hybrid(groups) => {
                if groups.is_empty() {
                    vec![worker_threads.max(1)]
                } else {
                    groups.clone()
                }
            }
        };
        Self { threads_per_stage }
    }

    /// Number of Stages.
    pub fn num_stages(&self) -> usize {
        self.threads_per_stage.len()
    }

    /// Total number of worker threads.
    pub fn total_threads(&self) -> usize {
        self.threads_per_stage.iter().sum()
    }
}

/// Returns the contiguous slice of the filter chain snapshot that Stage
/// `stage_index` (of `num_stages`) is responsible for.
pub fn stage_slice(
    filters: &[Arc<DimensionTable>],
    stage_index: usize,
    num_stages: usize,
) -> &[Arc<DimensionTable>] {
    let len = filters.len();
    if num_stages <= 1 {
        return filters;
    }
    let lo = stage_index * len / num_stages;
    let hi = ((stage_index + 1) * len / num_stages).min(len);
    &filters[lo..hi]
}

/// Body of one Stage worker thread.
///
/// Data batches are run through the Stage's slice of the filter chain and forwarded —
/// even when they end up empty, so the Distributor's in-flight accounting (used by
/// the control-tuple drain barrier) stays exact. Control tuples do not travel through
/// Stages (they take the direct Preprocessor → Distributor path) but are forwarded
/// defensively if ever seen. A `Shutdown` message stops the worker without being
/// forwarded; the engine shuts each Stage down explicitly.
pub fn run_stage_worker(
    stage_index: usize,
    num_stages: usize,
    input: Receiver<Message>,
    output: Sender<Message>,
    chain: Arc<FilterChain>,
    early_skip: bool,
    batched_probing: bool,
) {
    while let Ok(msg) = input.recv() {
        match msg {
            Message::Data(mut batch) => {
                let filters = chain.snapshot();
                let slice = stage_slice(&filters, stage_index, num_stages);
                FilterChain::process_batch(slice, &mut batch, early_skip, batched_probing);
                if output.send(Message::Data(batch)).is_err() {
                    return;
                }
            }
            Message::Control(control) => {
                if output.send(Message::Control(control)).is_err() {
                    return;
                }
            }
            Message::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Batch, InFlightTuple};
    use cjoin_common::{QueryId, QuerySet};
    use cjoin_storage::{Row, RowId, Value};
    use crossbeam::channel::unbounded;

    #[test]
    fn horizontal_plan_has_one_stage() {
        let p = StagePlan::derive(&StageLayout::Horizontal, 5);
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.total_threads(), 5);
    }

    #[test]
    fn vertical_plan_has_one_thread_per_stage() {
        let p = StagePlan::derive(&StageLayout::Vertical, 4);
        assert_eq!(p.num_stages(), 4);
        assert_eq!(p.threads_per_stage, vec![1, 1, 1, 1]);
    }

    #[test]
    fn hybrid_plan_uses_explicit_groups() {
        let p = StagePlan::derive(&StageLayout::Hybrid(vec![2, 3]), 99);
        assert_eq!(p.num_stages(), 2);
        assert_eq!(p.total_threads(), 5);
        // Degenerate empty hybrid falls back to horizontal.
        let p = StagePlan::derive(&StageLayout::Hybrid(vec![]), 3);
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.total_threads(), 3);
    }

    #[test]
    fn zero_threads_still_yields_a_worker() {
        let p = StagePlan::derive(&StageLayout::Horizontal, 0);
        assert_eq!(p.total_threads(), 1);
    }

    #[test]
    fn stage_slices_partition_the_chain() {
        let filters: Vec<Arc<DimensionTable>> = (0..5)
            .map(|i| {
                Arc::new(DimensionTable::new(
                    format!("d{i}"),
                    i,
                    0,
                    0,
                    4,
                    &QuerySet::new(4),
                ))
            })
            .collect();
        // Union of slices over all stages covers the chain exactly once, in order.
        for num_stages in 1..=6 {
            let mut covered = Vec::new();
            for s in 0..num_stages {
                covered.extend(
                    stage_slice(&filters, s, num_stages)
                        .iter()
                        .map(|f| f.name.clone()),
                );
            }
            assert_eq!(
                covered,
                vec!["d0", "d1", "d2", "d3", "d4"],
                "stages={num_stages}"
            );
        }
    }

    #[test]
    fn worker_forwards_filtered_batches_and_stops_on_shutdown() {
        let chain = Arc::new(FilterChain::new());
        // One filter that drops everything (no query registered => every bit cleared).
        let dim = DimensionTable::new("d", 0, 0, 0, 4, &QuerySet::new(4));
        dim.register_query(QueryId(0), &[(42, Row::new(vec![Value::int(42)]))]);
        chain.push(Arc::new(dim));

        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let worker = {
            let chain = Arc::clone(&chain);
            std::thread::spawn(move || run_stage_worker(0, 1, in_rx, out_tx, chain, true, true))
        };

        // A tuple relevant to query 0 whose fk misses the dimension table: dropped.
        let miss = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(7)]),
            QuerySet::from_bits(4, [0]),
            1,
        );
        // A tuple that hits: survives.
        let hit = InFlightTuple::new(
            RowId(1),
            Row::new(vec![Value::int(42)]),
            QuerySet::from_bits(4, [0]),
            1,
        );
        in_tx
            .send(Message::Data(Batch::from(vec![miss, hit])))
            .unwrap();
        in_tx.send(Message::Shutdown).unwrap();
        worker.join().unwrap();

        match out_rx.try_recv().unwrap() {
            Message::Data(batch) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].row_id, RowId(1));
            }
            other => panic!("expected data, got {other:?}"),
        }
        assert!(out_rx.try_recv().is_err(), "shutdown is not forwarded");
    }

    #[test]
    fn worker_forwards_empty_batches_for_in_flight_accounting() {
        let chain = Arc::new(FilterChain::new());
        let dim = DimensionTable::new("d", 0, 0, 0, 4, &QuerySet::new(4));
        dim.register_query(QueryId(0), &[(42, Row::new(vec![Value::int(42)]))]);
        chain.push(Arc::new(dim));
        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let worker =
            std::thread::spawn(move || run_stage_worker(0, 1, in_rx, out_tx, chain, true, true));
        let miss = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(7)]),
            QuerySet::from_bits(4, [0]),
            1,
        );
        in_tx.send(Message::Data(Batch::from(vec![miss]))).unwrap();
        in_tx.send(Message::Shutdown).unwrap();
        worker.join().unwrap();
        assert!(
            matches!(out_rx.try_recv().unwrap(), Message::Data(b) if b.is_empty()),
            "empty batch still forwarded"
        );
    }
}
