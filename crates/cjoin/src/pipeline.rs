//! Stage layout and worker threads (§4).
//!
//! The Filters of the CJOIN pipeline are boxed into *Stages*; each Stage has its own
//! input queue and one or more worker threads. The paper studies three layouts:
//!
//! * **horizontal** — a single Stage containing the whole Filter sequence, with all
//!   worker threads assigned to it (each thread runs every Filter on disjoint
//!   batches). Best in the paper's measurements (Figure 4) and our default.
//! * **vertical** — one Stage per Filter with one thread each; batches hop from queue
//!   to queue, trading cache locality of the hash tables for inter-thread traffic.
//! * **hybrid** — several Stages, each covering a contiguous run of Filters.
//!
//! Because queries (and therefore Filters) come and go at run time, a Stage does not
//! own a fixed set of Filters; instead each worker snapshots the current filter chain
//! per batch and processes the contiguous slice assigned to its Stage. With a single
//! Stage this is the entire chain.
//!
//! Downstream of the Filter Stages sits the **aggregation stage**: a single
//! Distributor thread by default, or — with `CjoinConfig::distributor_shards > 1` —
//! a router plus that many parallel aggregation shards and a merger (see
//! [`crate::distributor`]). The [`StagePlan`] records both halves of the thread
//! layout so diagnostics and tests can reason about the whole pipeline.
//!
//! # Supervision and barrier release on failure
//!
//! Every pipeline role is spawned through [`spawn_supervised`], which wraps the
//! role body in `catch_unwind` and reports a [`RoleFailure`] on the supervisor's
//! failure channel instead of silently unwinding the thread. The concurrency
//! argument above assumes every role *keeps draining its input queue*; a dead
//! role violates that, and two barriers would otherwise wait forever:
//!
//! * the Preprocessor's **drain barrier** (install/finalize waits for
//!   `in_flight == 0`) never terminates if a Stage worker or Distributor died
//!   holding batches, and
//! * the **ShardMerger end-barrier** (a query finalizes after all N shard
//!   partials arrived) never completes if a shard died before emitting its
//!   partial.
//!
//! Release-on-failure is therefore part of the pipeline contract: the
//! supervisor first resolves every in-flight query's outcome channel with
//! `QueryError::StageFailed` (so no client can observe a truncated `Ok`), then
//! *poisons* the pipeline — the drain barrier re-checks the poison flag in its
//! backoff loop and exits early, parked scan workers are released through the
//! `ScanStall` shutdown path, and queue senders/receivers are dropped so every
//! surviving role's `recv()`/`send()` returns a disconnect and the role exits
//! its loop. Only after every thread is joined does the supervisor respawn the
//! pipeline with the failed axis degraded to its classic path. Ordering matters:
//! outcomes are resolved *before* barriers are poisoned, so a poisoned barrier
//! can never let a finalize path deliver a result computed from a partial scan.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender};

use crate::config::StageLayout;
use crate::dimension::DimensionTable;
use crate::fault::{self, FaultPlan, FaultSite};
use crate::filter::FilterChain;
use crate::tuple::Message;

/// Identity of one supervised pipeline role, used in thread names, failure
/// reports and [`cjoin_query::QueryError::StageFailed`] messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleKind {
    /// Segment scan worker `i` (the classic single Preprocessor is worker 0).
    ScanWorker(usize),
    /// The scan admission coordinator (sharded front-end only).
    ScanCoordinator,
    /// Worker `worker` of filter Stage `stage`.
    StageWorker {
        /// Stage index in the [`StagePlan`].
        stage: usize,
        /// Worker index within the Stage.
        worker: usize,
    },
    /// The distributor shard router (sharded aggregation only).
    ShardRouter,
    /// Distributor aggregation shard `i` (the classic Distributor is shard 0).
    DistributorShard(usize),
    /// The end-of-query merge barrier (sharded aggregation only).
    ShardMerger,
    /// The pipeline manager (filter reordering, query cleanup).
    Manager,
}

impl RoleKind {
    /// The OS thread name the role runs under.
    pub fn thread_name(&self) -> String {
        match self {
            RoleKind::ScanWorker(i) => format!("cjoin-scan-w{i}"),
            RoleKind::ScanCoordinator => "cjoin-scan-coord".into(),
            RoleKind::StageWorker { stage, worker } => format!("cjoin-stage{stage}-w{worker}"),
            RoleKind::ShardRouter => "cjoin-dist-router".into(),
            RoleKind::DistributorShard(i) => format!("cjoin-distributor-s{i}"),
            RoleKind::ShardMerger => "cjoin-dist-merger".into(),
            RoleKind::Manager => "cjoin-manager".into(),
        }
    }

    /// The fault-injection site the role hosts ([`FaultSite`] is coarser than
    /// `RoleKind`: it does not distinguish worker indices, and the manager has
    /// no injection site).
    pub fn fault_site(&self) -> Option<FaultSite> {
        match self {
            RoleKind::ScanWorker(_) => Some(FaultSite::ScanWorker),
            RoleKind::ScanCoordinator => Some(FaultSite::ScanCoordinator),
            RoleKind::StageWorker { .. } => Some(FaultSite::StageWorker),
            RoleKind::ShardRouter => Some(FaultSite::ShardRouter),
            RoleKind::DistributorShard(_) => Some(FaultSite::DistributorShard),
            RoleKind::ShardMerger => Some(FaultSite::ShardMerger),
            RoleKind::Manager => None,
        }
    }
}

impl std::fmt::Display for RoleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoleKind::ScanWorker(i) => write!(f, "scan-worker-{i}"),
            RoleKind::ScanCoordinator => f.write_str("scan-coordinator"),
            RoleKind::StageWorker { stage, worker } => {
                write!(f, "stage-{stage}-worker-{worker}")
            }
            RoleKind::ShardRouter => f.write_str("shard-router"),
            RoleKind::DistributorShard(i) => write!(f, "distributor-shard-{i}"),
            RoleKind::ShardMerger => f.write_str("shard-merger"),
            RoleKind::Manager => f.write_str("manager"),
        }
    }
}

/// Report of a role thread that died by panic, sent to the supervisor.
#[derive(Debug, Clone)]
pub struct RoleFailure {
    /// Which role died.
    pub role: RoleKind,
    /// The panic payload, best effort (`&str`/`String` payloads are extracted,
    /// anything else is described generically).
    pub detail: String,
}

/// An event on the supervisor's channel.
///
/// The channel carries more than failures so the supervisor loop is the one
/// place that decides how to interleave recovery with housekeeping (the
/// deadline reaper). Benign traffic must never be able to starve the reaper:
/// the supervisor bounds its inter-reap interval regardless of how fast events
/// arrive (see `engine::run_supervisor`).
#[derive(Debug, Clone)]
pub enum SupervisorEvent {
    /// A supervised role died by panic; triggers resolve/teardown/respawn.
    Failure(RoleFailure),
    /// A query with a deadline was admitted. Purely a wake-up nudge so the
    /// reaper notices fresh deadlines promptly; carries no payload and
    /// requires no action beyond the loop's bounded reap.
    DeadlineAdmitted,
}

/// Renders a panic payload for a [`RoleFailure`].
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Spawns one pipeline role.
///
/// With `supervised == true` the role body runs under `catch_unwind`; a panic
/// is converted into a [`RoleFailure`] on `failure_tx` (best effort — if the
/// supervisor is gone, the failure is dropped and the thread just exits). With
/// `supervised == false` the body runs bare, reproducing the pre-supervision
/// behaviour for the overhead A/B.
///
/// # Panics
/// Panics only if the OS refuses to spawn a thread.
pub fn spawn_supervised(
    role: RoleKind,
    supervised: bool,
    failure_tx: Sender<SupervisorEvent>,
    f: impl FnOnce() + Send + 'static,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(role.thread_name())
        .spawn(move || {
            if !supervised {
                f();
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let failure = RoleFailure {
                    role,
                    detail: panic_detail(payload.as_ref()),
                };
                let _ = failure_tx.send(SupervisorEvent::Failure(failure));
            }
        })
        .expect("failed to spawn pipeline thread")
}

/// The thread layout derived from a [`StageLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    /// Number of worker threads per Stage; `threads_per_stage.len()` is the number of
    /// Stages.
    pub threads_per_stage: Vec<usize>,
    /// Number of parallel aggregation (Distributor) shards downstream of the Stages.
    pub distributor_shards: usize,
    /// Number of parallel continuous-scan (Preprocessor) workers upstream of the
    /// Stages.
    pub scan_workers: usize,
}

impl StagePlan {
    /// Derives the plan from the configured layout and total worker-thread budget,
    /// with a single-shard aggregation stage and the classic single-scan front-end.
    pub fn derive(layout: &StageLayout, worker_threads: usize) -> Self {
        let threads_per_stage = match layout {
            StageLayout::Horizontal => vec![worker_threads.max(1)],
            StageLayout::Vertical => vec![1; worker_threads.max(1)],
            StageLayout::Hybrid(groups) => {
                if groups.is_empty() {
                    vec![worker_threads.max(1)]
                } else {
                    groups.clone()
                }
            }
        };
        Self {
            threads_per_stage,
            distributor_shards: 1,
            scan_workers: 1,
        }
    }

    /// The same plan with a sharded aggregation stage.
    pub fn with_distributor_shards(mut self, shards: usize) -> Self {
        self.distributor_shards = shards.max(1);
        self
    }

    /// The same plan with a sharded continuous-scan front-end.
    pub fn with_scan_workers(mut self, workers: usize) -> Self {
        self.scan_workers = workers.max(1);
        self
    }

    /// Number of Stages.
    pub fn num_stages(&self) -> usize {
        self.threads_per_stage.len()
    }

    /// Total number of Filter worker threads.
    pub fn total_threads(&self) -> usize {
        self.threads_per_stage.iter().sum()
    }

    /// Threads spawned for the aggregation stage: the classic Distributor needs one;
    /// a sharded stage needs one per shard plus the router and the merger.
    pub fn aggregation_threads(&self) -> usize {
        if self.distributor_shards <= 1 {
            1
        } else {
            self.distributor_shards + 2
        }
    }

    /// Threads spawned for the scan front-end: the classic Preprocessor needs one;
    /// a sharded front-end needs one per segment worker plus the admission
    /// coordinator.
    pub fn scan_threads(&self) -> usize {
        if self.scan_workers <= 1 {
            1
        } else {
            self.scan_workers + 1
        }
    }
}

/// Returns the contiguous slice of the filter chain snapshot that Stage
/// `stage_index` (of `num_stages`) is responsible for.
pub fn stage_slice(
    filters: &[Arc<DimensionTable>],
    stage_index: usize,
    num_stages: usize,
) -> &[Arc<DimensionTable>] {
    let len = filters.len();
    if num_stages <= 1 {
        return filters;
    }
    let lo = stage_index * len / num_stages;
    let hi = ((stage_index + 1) * len / num_stages).min(len);
    &filters[lo..hi]
}

/// Body of one Stage worker thread.
///
/// Data batches are run through the Stage's slice of the filter chain and forwarded —
/// even when they end up empty, so the Distributor's in-flight accounting (used by
/// the control-tuple drain barrier) stays exact. Control tuples do not travel through
/// Stages (they take the direct Preprocessor → Distributor path) but are forwarded
/// defensively if ever seen. A `Shutdown` message stops the worker without being
/// forwarded; the engine shuts each Stage down explicitly.
///
/// Multi-Stage layouts must tolerate the filter chain growing, shrinking or being
/// reordered *while a batch travels between Stages* (query admission and the
/// run-time optimizer both mutate the chain): slice boundaries computed from one
/// Stage's snapshot need not line up with the next Stage's, so naively slicing
/// could process a Filter twice or — worse — skip it entirely, leaking tuples that
/// should have been dropped. Each batch therefore records which Filters already
/// processed it (by slot id, unique per Filter instance), every Stage skips those,
/// and the **final Stage applies all remaining Filters of its snapshot** rather
/// than just its slice, so no Filter present at the end of the pipe is ever
/// missed. Filters admitted after a batch entered the pipeline are safe on both
/// sides: the batch's tuples cannot carry the new query's bit, and the new Filter
/// passes unreferencing queries' tuples through unchanged. With a single Stage the
/// snapshot is taken and applied atomically per batch, so the untracked fast path
/// is kept.
#[allow(clippy::too_many_arguments)]
pub fn run_stage_worker(
    stage_index: usize,
    num_stages: usize,
    input: Receiver<Message>,
    output: Sender<Message>,
    chain: Arc<FilterChain>,
    early_skip: bool,
    batched_probing: bool,
    faults: Option<Arc<FaultPlan>>,
) {
    // Worker-local scratch for the tracked multi-Stage path, reused across
    // batches so per-batch bookkeeping allocates nothing at steady state.
    let mut todo_scratch: Vec<Arc<DimensionTable>> = Vec::new();
    while let Ok(msg) = input.recv() {
        match msg {
            Message::Data(mut batch) => {
                fault::inject(&faults, FaultSite::StageWorker);
                let filters = chain.snapshot();
                if num_stages <= 1 {
                    FilterChain::process_batch(&filters, &mut batch, early_skip, batched_probing);
                } else {
                    let last = stage_index + 1 == num_stages;
                    let candidates: &[Arc<DimensionTable>] = if last {
                        &filters
                    } else {
                        stage_slice(&filters, stage_index, num_stages)
                    };
                    todo_scratch.clear();
                    todo_scratch.extend(
                        candidates
                            .iter()
                            .filter(|f| !batch.filter_applied(f.slot))
                            .cloned(),
                    );
                    for f in &todo_scratch {
                        batch.mark_filter_applied(f.slot);
                    }
                    FilterChain::process_batch(
                        &todo_scratch,
                        &mut batch,
                        early_skip,
                        batched_probing,
                    );
                }
                if output.send(Message::Data(batch)).is_err() {
                    return;
                }
            }
            Message::Control(control) => {
                if output.send(Message::Control(control)).is_err() {
                    return;
                }
            }
            Message::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Batch, InFlightTuple};
    use cjoin_common::{QueryId, QuerySet};
    use cjoin_storage::{Row, RowId, Value};
    use crossbeam::channel::unbounded;

    #[test]
    fn horizontal_plan_has_one_stage() {
        let p = StagePlan::derive(&StageLayout::Horizontal, 5);
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.total_threads(), 5);
    }

    #[test]
    fn vertical_plan_has_one_thread_per_stage() {
        let p = StagePlan::derive(&StageLayout::Vertical, 4);
        assert_eq!(p.num_stages(), 4);
        assert_eq!(p.threads_per_stage, vec![1, 1, 1, 1]);
    }

    #[test]
    fn hybrid_plan_uses_explicit_groups() {
        let p = StagePlan::derive(&StageLayout::Hybrid(vec![2, 3]), 99);
        assert_eq!(p.num_stages(), 2);
        assert_eq!(p.total_threads(), 5);
        // Degenerate empty hybrid falls back to horizontal.
        let p = StagePlan::derive(&StageLayout::Hybrid(vec![]), 3);
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.total_threads(), 3);
    }

    #[test]
    fn zero_threads_still_yields_a_worker() {
        let p = StagePlan::derive(&StageLayout::Horizontal, 0);
        assert_eq!(p.total_threads(), 1);
    }

    #[test]
    fn aggregation_thread_budget_tracks_sharding() {
        let solo = StagePlan::derive(&StageLayout::Horizontal, 2);
        assert_eq!(solo.distributor_shards, 1);
        assert_eq!(solo.aggregation_threads(), 1, "classic single Distributor");
        let sharded = StagePlan::derive(&StageLayout::Horizontal, 2).with_distributor_shards(4);
        assert_eq!(sharded.distributor_shards, 4);
        assert_eq!(
            sharded.aggregation_threads(),
            6,
            "4 shards + router + merger"
        );
        // Degenerate zero clamps to the single-shard plan.
        let clamped = StagePlan::derive(&StageLayout::Horizontal, 2).with_distributor_shards(0);
        assert_eq!(clamped.distributor_shards, 1);
    }

    #[test]
    fn scan_thread_budget_tracks_the_front_end_sharding() {
        let solo = StagePlan::derive(&StageLayout::Horizontal, 2);
        assert_eq!(solo.scan_workers, 1);
        assert_eq!(solo.scan_threads(), 1, "classic single Preprocessor");
        let sharded = StagePlan::derive(&StageLayout::Horizontal, 2).with_scan_workers(4);
        assert_eq!(sharded.scan_workers, 4);
        assert_eq!(sharded.scan_threads(), 5, "4 segment workers + coordinator");
        // Degenerate zero clamps to the classic plan.
        let clamped = StagePlan::derive(&StageLayout::Horizontal, 2).with_scan_workers(0);
        assert_eq!(clamped.scan_workers, 1);
    }

    #[test]
    fn stage_slices_partition_the_chain() {
        let filters: Vec<Arc<DimensionTable>> = (0..5)
            .map(|i| {
                Arc::new(DimensionTable::new(
                    format!("d{i}"),
                    i,
                    0,
                    0,
                    4,
                    &QuerySet::new(4),
                ))
            })
            .collect();
        // Union of slices over all stages covers the chain exactly once, in order.
        for num_stages in 1..=6 {
            let mut covered = Vec::new();
            for s in 0..num_stages {
                covered.extend(
                    stage_slice(&filters, s, num_stages)
                        .iter()
                        .map(|f| f.name.clone()),
                );
            }
            assert_eq!(
                covered,
                vec!["d0", "d1", "d2", "d3", "d4"],
                "stages={num_stages}"
            );
        }
    }

    #[test]
    fn worker_forwards_filtered_batches_and_stops_on_shutdown() {
        let chain = Arc::new(FilterChain::new());
        // One filter that drops everything (no query registered => every bit cleared).
        let dim = DimensionTable::new("d", 0, 0, 0, 4, &QuerySet::new(4));
        dim.register_query(QueryId(0), &[(42, Row::new(vec![Value::int(42)]))]);
        chain.push(Arc::new(dim));

        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let worker = {
            let chain = Arc::clone(&chain);
            std::thread::spawn(move || {
                run_stage_worker(0, 1, in_rx, out_tx, chain, true, true, None)
            })
        };

        // A tuple relevant to query 0 whose fk misses the dimension table: dropped.
        let miss = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(7)]),
            QuerySet::from_bits(4, [0]),
            1,
        );
        // A tuple that hits: survives.
        let hit = InFlightTuple::new(
            RowId(1),
            Row::new(vec![Value::int(42)]),
            QuerySet::from_bits(4, [0]),
            1,
        );
        in_tx
            .send(Message::Data(Batch::from(vec![miss, hit])))
            .unwrap();
        in_tx.send(Message::Shutdown).unwrap();
        worker.join().unwrap();

        match out_rx.try_recv().unwrap() {
            Message::Data(batch) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].row_id, RowId(1));
            }
            other => panic!("expected data, got {other:?}"),
        }
        assert!(out_rx.try_recv().is_err(), "shutdown is not forwarded");
    }

    /// Regression for the layout/shard matrix flake: with a vertical layout, a
    /// batch that passed Stage 0 while the chain had one Filter must still be
    /// processed by a Filter admitted (or reordered in) before it reaches the
    /// final Stage — the final Stage sweeps every not-yet-applied Filter instead
    /// of trusting its slice boundaries.
    #[test]
    fn final_stage_applies_filters_missed_by_shifted_slices() {
        let chain = Arc::new(FilterChain::new());
        // Filter A (slot 0, fact column 0) keeps only fk0 == 42 for query 0.
        let a = DimensionTable::new("a", 0, 0, 0, 4, &QuerySet::new(4));
        a.register_query(QueryId(0), &[(42, Row::new(vec![Value::int(42)]))]);
        chain.push(Arc::new(a));

        let tuple = |id: u64, k0: i64, k1: i64| {
            InFlightTuple::new(
                RowId(id),
                Row::new(vec![Value::int(k0), Value::int(k1)]),
                QuerySet::from_bits(4, [0]),
                2,
            )
        };
        // t0 is dropped by A, t1 by B (added below), t2 survives both.
        let batch = Batch::from(vec![tuple(0, 1, 7), tuple(1, 42, 1), tuple(2, 42, 7)]);

        // Stage 0 of 2: with a one-Filter chain its slice is empty, so the batch
        // passes through untouched (the pre-fix behavior as well).
        let (in0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let worker0 = {
            let chain = Arc::clone(&chain);
            std::thread::spawn(move || run_stage_worker(0, 2, rx0, tx1, chain, true, true, None))
        };
        in0.send(Message::Data(batch)).unwrap();
        in0.send(Message::Shutdown).unwrap();
        worker0.join().unwrap();

        // Between the Stages a second query's admission grows the chain: Filter B
        // (slot 1, fact column 1) keeps only fk1 == 7 for query 0.
        let b = DimensionTable::new("b", 1, 1, 0, 4, &QuerySet::new(4));
        b.register_query(QueryId(0), &[(7, Row::new(vec![Value::int(7)]))]);
        chain.push(Arc::new(b));

        // Stage 1 of 2 (the final Stage): its slice under the new snapshot is
        // [B] only, but it must also apply A, which the shifted slices skipped.
        let (tx2, rx2) = unbounded();
        let worker1 = {
            let chain = Arc::clone(&chain);
            std::thread::spawn(move || run_stage_worker(1, 2, rx1, tx2, chain, true, true, None))
        };
        worker1.join().unwrap();

        match rx2.try_recv().unwrap() {
            Message::Data(batch) => {
                assert_eq!(batch.len(), 1, "both Filters must have processed the batch");
                assert_eq!(batch[0].row_id, RowId(2));
                assert!(batch.filter_applied(0) && batch.filter_applied(1));
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn worker_forwards_empty_batches_for_in_flight_accounting() {
        let chain = Arc::new(FilterChain::new());
        let dim = DimensionTable::new("d", 0, 0, 0, 4, &QuerySet::new(4));
        dim.register_query(QueryId(0), &[(42, Row::new(vec![Value::int(42)]))]);
        chain.push(Arc::new(dim));
        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let worker = std::thread::spawn(move || {
            run_stage_worker(0, 1, in_rx, out_tx, chain, true, true, None)
        });
        let miss = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(7)]),
            QuerySet::from_bits(4, [0]),
            1,
        );
        in_tx.send(Message::Data(Batch::from(vec![miss]))).unwrap();
        in_tx.send(Message::Shutdown).unwrap();
        worker.join().unwrap();
        assert!(
            matches!(out_rx.try_recv().unwrap(), Message::Data(b) if b.is_empty()),
            "empty batch still forwarded"
        );
    }
}
