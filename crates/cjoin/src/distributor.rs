//! The Distributor (§3.2.2).
//!
//! The Distributor consumes the pipeline's output: for each surviving fact tuple it
//! inspects the query bit-vector and routes the tuple to the aggregation operator of
//! every query whose bit is set. Group-by columns and aggregate inputs that live on
//! dimension tables are read through the dimension rows the Filters attached to the
//! tuple, so no re-probing is necessary.
//!
//! Control tuples drive query lifecycle: *query start* creates the aggregation
//! operator before any of the query's tuples can arrive, *query end* finalizes it,
//! delivers the result on the query's result channel, and notifies the engine's
//! manager so Algorithm 2 (dimension-table cleanup and id recycling) can run.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use cjoin_common::QueryId;
use cjoin_query::GroupedAggregator;
use cjoin_storage::Row;

use crate::pool::BatchPool;
use crate::stats::SharedCounters;
use crate::tuple::{Batch, ControlTuple, Message, QueryRuntime};

/// Aggregation state of one registered query.
struct QueryAggregation {
    runtime: Arc<QueryRuntime>,
    aggregator: GroupedAggregator,
}

/// The Distributor: single-threaded consumer of the pipeline's output.
pub struct Distributor {
    input: Receiver<Message>,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    counters: Arc<SharedCounters>,
    /// Notifies the engine's manager thread that a query finished (for Algorithm 2).
    finished_tx: Sender<QueryId>,
    queries: Vec<Option<QueryAggregation>>,
    /// Reusable scratch buffer mapping a query's dimension clauses to attached rows.
    dim_scratch: Vec<Option<Row>>,
}

impl Distributor {
    /// Creates a Distributor for a pipeline with the given `maxConc`.
    pub fn new(
        input: Receiver<Message>,
        in_flight: Arc<AtomicI64>,
        pool: Arc<BatchPool>,
        counters: Arc<SharedCounters>,
        finished_tx: Sender<QueryId>,
        max_concurrency: usize,
    ) -> Self {
        Self {
            input,
            in_flight,
            pool,
            counters,
            finished_tx,
            queries: (0..max_concurrency).map(|_| None).collect(),
            dim_scratch: Vec::new(),
        }
    }

    /// Runs the Distributor loop until a shutdown message arrives or every sender is
    /// dropped.
    pub fn run(&mut self) {
        while let Ok(msg) = self.input.recv() {
            match msg {
                Message::Data(batch) => self.handle_batch(batch),
                Message::Control(control) => self.handle_control(control),
                Message::Shutdown => break,
            }
        }
    }

    fn handle_batch(&mut self, batch: Batch) {
        SharedCounters::add(&self.counters.tuples_distributed, batch.len() as u64);
        let mut routings = 0u64;
        for tuple in &batch {
            for bit in tuple.bits.iter() {
                let Some(Some(state)) = self.queries.get_mut(bit) else {
                    continue;
                };
                routings += 1;
                // Map the query's dimension clauses to the rows attached by the
                // Filters (slot_map[k] = pipeline slot of the k-th clause).
                self.dim_scratch.clear();
                for &slot in &state.runtime.slot_map {
                    self.dim_scratch
                        .push(tuple.dims.get(slot).cloned().flatten());
                }
                let dims: Vec<Option<&Row>> = self.dim_scratch.iter().map(Option::as_ref).collect();
                state.aggregator.accumulate(&tuple.row, &dims);
            }
        }
        SharedCounters::add(&self.counters.routings, routings);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.pool.put(batch);
    }

    fn handle_control(&mut self, control: ControlTuple) {
        match control {
            ControlTuple::QueryStart(runtime) => {
                let bit = runtime.id.index();
                let aggregator = GroupedAggregator::new(&runtime.bound);
                self.queries[bit] = Some(QueryAggregation {
                    runtime,
                    aggregator,
                });
            }
            ControlTuple::QueryEnd(id) => {
                if let Some(state) = self.queries[id.index()].take() {
                    let result = state.aggregator.finalize();
                    // Count completion before delivering the result: a client that
                    // wakes on the result channel must observe its own query in
                    // `queries_completed`.
                    SharedCounters::add(&self.counters.queries_completed, 1);
                    // The receiver may have been dropped (caller lost interest); the
                    // query still completes and is cleaned up.
                    let _ = state.runtime.result_tx.send(result);
                    let _ = self.finished_tx.send(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::InFlightTuple;
    use cjoin_common::QuerySet;
    use cjoin_query::{AggFunc, AggValue, AggregateSpec, ColumnRef, Predicate, StarQuery};
    use cjoin_storage::{Catalog, Column, RowId, Schema, SnapshotId, Table, Value};
    use crossbeam::channel::{bounded, unbounded};
    use std::time::Instant;

    /// Catalog: fact(fk, amount) + dim color(k, name).
    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("amount")],
        ));
        let dim = Table::new(Schema::new(
            "color",
            vec![Column::int("k"), Column::str("name")],
        ));
        dim.insert(vec![Value::int(1), Value::str("red")], SnapshotId::INITIAL)
            .unwrap();
        dim.insert(
            vec![Value::int(2), Value::str("green")],
            SnapshotId::INITIAL,
        )
        .unwrap();
        catalog.add_fact_table(Arc::new(fact));
        catalog.add_table(Arc::new(dim));
        catalog
    }

    fn runtime(
        catalog: &Catalog,
        bit: u32,
        group_by_dim: bool,
    ) -> (Arc<QueryRuntime>, Receiver<cjoin_query::QueryResult>) {
        let mut builder = StarQuery::builder(format!("q{bit}"))
            .join_dimension("color", "fk", "k", Predicate::True)
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")));
        if group_by_dim {
            builder = builder.group_by(ColumnRef::dim("color", "name"));
        }
        let bound = builder.build().bind(catalog).unwrap();
        let (tx, rx) = bounded(1);
        (
            Arc::new(QueryRuntime {
                id: QueryId(bit),
                name: format!("q{bit}"),
                bound: Arc::new(bound),
                slot_map: vec![0],
                result_tx: tx,
                admitted_at: Instant::now(),
                progress: Arc::new(crate::progress::QueryProgress::new(0)),
            }),
            rx,
        )
    }

    fn tuple(bits: &[usize], fk: i64, amount: i64, dim_name: Option<&str>) -> InFlightTuple {
        let mut t = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(fk), Value::int(amount)]),
            QuerySet::from_bits(8, bits.iter().copied()),
            1,
        );
        if let Some(name) = dim_name {
            t.dims[0] = Some(Row::new(vec![Value::int(fk), Value::str(name)]));
        }
        t
    }

    #[allow(clippy::type_complexity)]
    fn harness() -> (
        Distributor,
        Sender<Message>,
        Receiver<QueryId>,
        Arc<AtomicI64>,
    ) {
        let (tx, rx) = unbounded();
        let (fin_tx, fin_rx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let d = Distributor::new(
            rx,
            Arc::clone(&in_flight),
            BatchPool::new(4, true),
            SharedCounters::new(),
            fin_tx,
            8,
        );
        (d, tx, fin_rx, in_flight)
    }

    #[test]
    fn routes_tuples_to_registered_queries_and_finalizes() {
        let catalog = catalog();
        let (mut d, tx, fin_rx, in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 0, true);

        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(Message::Data(Batch::from(vec![
            tuple(&[0], 1, 10, Some("red")),
            tuple(&[0], 2, 20, Some("green")),
            tuple(&[0], 1, 5, Some("red")),
        ])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();

        let result = result_rx.try_recv().unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(
            result.aggregate_for(&[Value::str("red")]).unwrap()[0],
            AggValue::Int(15)
        );
        assert_eq!(
            result.aggregate_for(&[Value::str("green")]).unwrap()[0],
            AggValue::Int(20)
        );
        assert_eq!(fin_rx.try_recv().unwrap(), QueryId(0));
        assert_eq!(
            in_flight.load(Ordering::Acquire),
            0,
            "data batch acknowledged"
        );
    }

    #[test]
    fn tuples_for_unregistered_bits_are_ignored() {
        let catalog = catalog();
        let (mut d, tx, _fin_rx, in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 1, false);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        // Bit 5 has no registered aggregation; bit 1 does.
        tx.send(Message::Data(Batch::from(vec![tuple(
            &[1, 5],
            1,
            7,
            Some("red"),
        )])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(1))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        let result = result_rx.try_recv().unwrap();
        assert_eq!(result.rows().next().unwrap().1[0], AggValue::Int(7));
    }

    #[test]
    fn multiple_concurrent_queries_share_one_tuple() {
        let catalog = catalog();
        let (mut d, tx, fin_rx, in_flight) = harness();
        let (rt0, rx0) = runtime(&catalog, 0, false);
        let (rt1, rx1) = runtime(&catalog, 1, true);
        tx.send(Message::Control(ControlTuple::QueryStart(rt0)))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryStart(rt1)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(Message::Data(Batch::from(vec![tuple(
            &[0, 1],
            1,
            100,
            Some("red"),
        )])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(1))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        assert_eq!(
            rx0.try_recv().unwrap().rows().next().unwrap().1[0],
            AggValue::Int(100)
        );
        assert_eq!(
            rx1.try_recv()
                .unwrap()
                .aggregate_for(&[Value::str("red")])
                .unwrap()[0],
            AggValue::Int(100)
        );
        let finished: Vec<_> = fin_rx.try_iter().collect();
        assert_eq!(finished, vec![QueryId(0), QueryId(1)]);
    }

    #[test]
    fn query_with_no_matching_tuples_still_delivers_a_result() {
        let catalog = catalog();
        let (mut d, tx, _fin, _in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 0, true);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        let result = result_rx.try_recv().unwrap();
        assert!(
            result.is_empty(),
            "grouped query with no input has no groups"
        );
    }

    #[test]
    fn dropped_result_receiver_does_not_wedge_the_pipeline() {
        let catalog = catalog();
        let (mut d, tx, fin_rx, _in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 0, false);
        drop(result_rx);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        assert_eq!(
            fin_rx.try_recv().unwrap(),
            QueryId(0),
            "cleanup still notified"
        );
    }

    #[test]
    fn exits_when_senders_disconnect() {
        let (mut d, tx, _fin, _inf) = harness();
        drop(tx);
        d.run(); // must return immediately rather than block forever
    }
}
