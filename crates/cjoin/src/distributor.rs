//! The Distributor (§3.2.2), sharded into parallel aggregation workers.
//!
//! The Distributor consumes the pipeline's output: for each surviving fact tuple it
//! inspects the query bit-vector and routes the tuple to the aggregation operator of
//! every query whose bit is set. Group-by columns and aggregate inputs that live on
//! dimension tables are read through the dimension rows the Filters attached to the
//! tuple, so no re-probing is necessary.
//!
//! With `CjoinConfig::distributor_shards = 1` (the default) a single [`Distributor`]
//! thread owns all per-query aggregation state — the paper's original design. With
//! `N > 1` the final stage becomes three kinds of threads:
//!
//! * a [`ShardRouter`] that consumes the pipeline's output queue and splits every
//!   surviving batch into per-shard sub-batches,
//! * `N` [`Distributor`] shard workers, each owning its *own* per-query
//!   [`GroupedAggregator`] partials, and
//! * a [`ShardMerger`] that combines the `N` partials of a finished query into the
//!   final [`QueryResult`](cjoin_query::QueryResult).
//!
//! ## Routing
//!
//! Hash aggregation is commutative and associative, so *any* tuple→shard assignment
//! is correct as long as each surviving tuple reaches exactly one shard. The router
//! therefore picks shards for load balance and merge locality: a tuple is routed by
//! an [`FxHasher`] hash of its **group-by key** (the group-by values of the first
//! registered grouped query whose bit it carries, read through the attached
//! dimension rows), so all tuples of one group land on one shard and the final
//! merge mostly concatenates disjoint group maps. Tuples claimed only by ungrouped
//! (scalar) queries fall back to round-robin — a scalar partial is a single row per
//! shard, so locality does not matter.
//!
//! ## Control tuples and the end-barrier
//!
//! Control tuples drive query lifecycle and are **broadcast** to every shard
//! (every shard owns partial state for every query):
//!
//! * *query start* creates the shard-local aggregation operator. The Preprocessor
//!   enqueues the start tuple before any data carrying the query's bit exists, the
//!   router broadcasts it before routing any later batch, and each shard queue is
//!   FIFO — so no shard can see a query's tuple before its start tuple
//!   (invariant 1, asserted by `tests/distributor_sharding.rs`).
//! * *query end* is only enqueued by the Preprocessor after its drain barrier
//!   observed the in-flight batch counter at zero — and the router adds every
//!   sub-batch it creates to that counter *before* acknowledging the parent batch,
//!   so "in-flight = 0" covers routed sub-batches too. When the end tuple reaches a
//!   shard, the shard has already drained every tuple of that query; it detaches
//!   its partial and emits it to the merger. The merger finalizes a query only
//!   after receiving all `N` partials — the **end-barrier** — and only then
//!   delivers the result, counts the completion, and notifies the manager
//!   (invariant 2). Query ids are recycled strictly after that notification, so a
//!   recycled id can never collide with an unfinished merge.
//!
//! Shutdown flows the same way: the router broadcasts it to the shards, each shard
//! exits and drops its side of the partials channel, and the merger exits when the
//! channel disconnects.
//!
//! ## Failure and barrier release
//!
//! Two barriers in this stage can wait forever if a role dies: the Preprocessor's
//! drain barrier (a dead shard never decrements the in-flight counter) and the
//! merger's end-barrier (a dead shard never emits its partial, so `received`
//! never reaches `N`). Neither barrier polls a failure flag itself — instead the
//! supervisor (see [`crate::pipeline`]) first resolves every in-flight query's
//! outcome with a typed `StageFailed` error through the [`QueryRuntime`]'s
//! first-wins latch, *then* poisons the drain barrier and tears the stage down.
//! The teardown releases both barriers mechanically: poisoning unblocks the
//! drain barrier, and dropping the shard queues / partials channel disconnects
//! the surviving roles' `recv` loops so they exit and can be joined. Because the
//! outcome latch was already taken, a partially-merged result can never be
//! delivered — result delivery goes through [`QueryRuntime::resolve`], which
//! silently discards the loser.

use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use cjoin_common::{FxHashMap, FxHasher, QueryId};
use cjoin_query::GroupedAggregator;
use cjoin_storage::Row;

use crate::fault::{self, FaultPlan, FaultSite};
use crate::pool::BatchPool;
use crate::queue::ShardSenders;
use crate::stats::{ShardCounters, SharedCounters};
use crate::tuple::{Batch, ControlTuple, InFlightTuple, Message, QueryRuntime};

/// Aggregation state of one registered query (shard-local in sharded mode).
struct QueryAggregation {
    runtime: Arc<QueryRuntime>,
    aggregator: GroupedAggregator,
}

/// One shard's partial aggregation state for a finished query, en route to the
/// [`ShardMerger`].
pub struct ShardPartial {
    /// Index of the shard that produced the partial.
    pub shard: usize,
    /// The finished query's runtime (identifies the query and carries its result
    /// channel).
    pub runtime: Arc<QueryRuntime>,
    /// The shard's partial aggregation.
    pub partial: GroupedAggregator,
}

/// What a [`Distributor`] does with a query's aggregation state at query end.
enum ShardOutput {
    /// Single-shard mode: finalize, deliver the result, notify the manager.
    Finalize { finished_tx: Sender<QueryId> },
    /// Sharded mode: detach the partial and emit it to the merger.
    Partials { partials_tx: Sender<ShardPartial> },
}

/// An aggregation worker: the classic single-threaded Distributor, or one shard of
/// the sharded aggregation stage (the two differ only in what happens at query end).
pub struct Distributor {
    shard: usize,
    input: Receiver<Message>,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    counters: Arc<SharedCounters>,
    shard_counters: Arc<ShardCounters>,
    output: ShardOutput,
    queries: Vec<Option<QueryAggregation>>,
    faults: Option<Arc<FaultPlan>>,
}

impl Distributor {
    /// Creates the classic single-threaded Distributor: it owns all aggregation
    /// state and finalizes queries itself. `max_concurrency` is the pipeline's
    /// `maxConc`.
    #[allow(clippy::too_many_arguments)]
    pub fn single(
        input: Receiver<Message>,
        in_flight: Arc<AtomicI64>,
        pool: Arc<BatchPool>,
        counters: Arc<SharedCounters>,
        shard_counters: Arc<ShardCounters>,
        finished_tx: Sender<QueryId>,
        max_concurrency: usize,
    ) -> Self {
        Self {
            shard: 0,
            input,
            in_flight,
            pool,
            counters,
            shard_counters,
            output: ShardOutput::Finalize { finished_tx },
            queries: (0..max_concurrency).map(|_| None).collect(),
            faults: None,
        }
    }

    /// Creates shard `shard` of a sharded aggregation stage: at query end it emits
    /// its partial to the merger instead of finalizing.
    #[allow(clippy::too_many_arguments)]
    pub fn sharded(
        shard: usize,
        input: Receiver<Message>,
        in_flight: Arc<AtomicI64>,
        pool: Arc<BatchPool>,
        counters: Arc<SharedCounters>,
        shard_counters: Arc<ShardCounters>,
        partials_tx: Sender<ShardPartial>,
        max_concurrency: usize,
    ) -> Self {
        Self {
            shard,
            input,
            in_flight,
            pool,
            counters,
            shard_counters,
            output: ShardOutput::Partials { partials_tx },
            queries: (0..max_concurrency).map(|_| None).collect(),
            faults: None,
        }
    }

    /// Attaches a fault-injection plan (supervision tests only).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Runs the worker loop until a shutdown message arrives or every sender is
    /// dropped.
    pub fn run(&mut self) {
        while let Ok(msg) = self.input.recv() {
            fault::inject(&self.faults, FaultSite::DistributorShard);
            match msg {
                Message::Data(batch) => self.handle_batch(batch),
                Message::Control(control) => self.handle_control(control),
                Message::Shutdown => break,
            }
        }
    }

    fn handle_batch(&mut self, batch: Batch) {
        SharedCounters::add(&self.counters.tuples_distributed, batch.len() as u64);
        SharedCounters::add(&self.shard_counters.tuples_distributed, batch.len() as u64);
        SharedCounters::add(&self.shard_counters.batches_drained, 1);
        let mut routings = 0u64;
        // Batch-scoped scratch mapping a query's dimension clauses to attached
        // rows: refs borrow straight from the batch's tuples (no `Row` clones)
        // and the buffer is reused across routing events (no per-routing
        // allocation once it has capacity).
        let mut dims_scratch: Vec<Option<&Row>> = Vec::new();
        for tuple in &batch {
            for bit in tuple.bits.iter() {
                let Some(Some(state)) = self.queries.get_mut(bit) else {
                    continue;
                };
                routings += 1;
                // slot_map[k] = pipeline slot of the query's k-th clause.
                dims_scratch.clear();
                dims_scratch.extend(
                    state
                        .runtime
                        .slot_map
                        .iter()
                        .map(|&slot| tuple.dims.get(slot).and_then(Option::as_ref)),
                );
                state.aggregator.accumulate(&tuple.row, &dims_scratch);
            }
        }
        SharedCounters::add(&self.counters.routings, routings);
        SharedCounters::add(&self.shard_counters.routings, routings);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.pool.put(batch);
    }

    fn handle_control(&mut self, control: ControlTuple) {
        match control {
            ControlTuple::QueryStart(runtime) => {
                let bit = runtime.id.index();
                let aggregator = GroupedAggregator::new(&runtime.bound);
                self.queries[bit] = Some(QueryAggregation {
                    runtime,
                    aggregator,
                });
            }
            ControlTuple::QueryEnd(id) => {
                let Some(state) = self.queries[id.index()].take() else {
                    // A query end without a preceding start would violate the
                    // broadcast FIFO invariant; never happens in a running pipeline.
                    debug_assert!(false, "query end for unregistered query {id:?}");
                    return;
                };
                match &self.output {
                    ShardOutput::Finalize { finished_tx } => {
                        let result = state.aggregator.finalize();
                        // Count completion before delivering the result: a client
                        // that wakes on the result channel must observe its own
                        // query in `queries_completed`.
                        SharedCounters::add(&self.counters.queries_completed, 1);
                        // First-wins delivery: if the supervisor or the deadline
                        // reaper already failed this query, the Ok outcome is
                        // dropped here. The lifecycle (finished notification, id
                        // recycling) still completes either way.
                        state.runtime.resolve(Ok(result));
                        let _ = finished_tx.send(id);
                    }
                    ShardOutput::Partials { partials_tx } => {
                        SharedCounters::add(&self.shard_counters.partials_emitted, 1);
                        let _ = partials_tx.send(ShardPartial {
                            shard: self.shard,
                            runtime: state.runtime,
                            partial: state.aggregator,
                        });
                    }
                }
            }
        }
    }
}

/// Routing metadata for one active query, tracked by the [`ShardRouter`] as
/// control tuples pass through it.
struct RouteInfo {
    runtime: Arc<QueryRuntime>,
    grouped: bool,
}

/// The router of the sharded aggregation stage: consumes the pipeline's output
/// queue, broadcasts control tuples, and splits each surviving data batch into
/// per-shard sub-batches (see the module docs for the routing policy).
pub struct ShardRouter {
    input: Receiver<Message>,
    /// Sender-only handle: the shard workers are the sole receivers of their
    /// queues, so a dead shard surfaces here as a send error (handled in
    /// [`route_batch`](ShardRouter::route_batch)) instead of a blocked queue.
    shards: ShardSenders,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    batch_size: usize,
    routes: Vec<Option<RouteInfo>>,
    /// Round-robin cursor for tuples claimed only by ungrouped queries.
    rr: usize,
    /// Reusable per-shard sub-batch slots (`None` between batches), so routing a
    /// batch allocates no bookkeeping at steady state.
    subs: Vec<Option<Batch>>,
    faults: Option<Arc<FaultPlan>>,
}

impl ShardRouter {
    /// Creates a router feeding `shards`.
    pub fn new(
        input: Receiver<Message>,
        shards: ShardSenders,
        in_flight: Arc<AtomicI64>,
        pool: Arc<BatchPool>,
        batch_size: usize,
        max_concurrency: usize,
    ) -> Self {
        let num_shards = shards.num_shards();
        Self {
            input,
            shards,
            in_flight,
            pool,
            batch_size,
            routes: (0..max_concurrency).map(|_| None).collect(),
            rr: 0,
            subs: (0..num_shards).map(|_| None).collect(),
            faults: None,
        }
    }

    /// Attaches a fault-injection plan (supervision tests only).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Runs the router loop until shutdown, then tears the shards down too.
    pub fn run(&mut self) {
        while let Ok(msg) = self.input.recv() {
            fault::inject(&self.faults, FaultSite::ShardRouter);
            match msg {
                Message::Data(batch) => self.route_batch(batch),
                Message::Control(control) => {
                    self.observe_control(&control);
                    self.shards.broadcast_control(&control);
                }
                Message::Shutdown => break,
            }
        }
        // Either an explicit shutdown or every producer hung up: stop the shards.
        self.shards.broadcast_shutdown();
    }

    /// Tracks query lifecycle for routing decisions (the shard workers keep the
    /// authoritative aggregation state; the router only needs group-by metadata).
    fn observe_control(&mut self, control: &ControlTuple) {
        match control {
            ControlTuple::QueryStart(runtime) => {
                let grouped = !runtime.bound.group_by.is_empty();
                self.routes[runtime.id.index()] = Some(RouteInfo {
                    runtime: Arc::clone(runtime),
                    grouped,
                });
            }
            ControlTuple::QueryEnd(id) => {
                self.routes[id.index()] = None;
            }
        }
    }

    /// Splits one surviving batch across the shards. The in-flight counter is
    /// raised by the number of sub-batches *before* the parent batch is
    /// acknowledged, so the Preprocessor's drain barrier (in-flight = 0) never
    /// fires while routed work is still pending. Routing bookkeeping (the
    /// per-shard slots and the dims scratch) is reused, so the loop allocates
    /// nothing per tuple at steady state — the sub-batch tuples themselves come
    /// recycled from the [`BatchPool`].
    fn route_batch(&mut self, batch: Batch) {
        let n = self.shards.num_shards();
        let mut dims_scratch: Vec<Option<&Row>> = Vec::new();
        for tuple in &batch {
            let shard = self.shard_of(tuple, n, &mut dims_scratch);
            let sub = match &mut self.subs[shard] {
                Some(sub) => sub,
                none => none.insert(self.pool.take(self.batch_size)),
            };
            let (slot, _) = sub.next_slot(tuple.bits.capacity());
            slot.copy_from_tuple(tuple);
        }
        let outgoing = self.subs.iter().filter(|s| s.is_some()).count() as i64;
        self.in_flight.fetch_add(outgoing, Ordering::AcqRel);
        for (shard, slot) in self.subs.iter_mut().enumerate() {
            let Some(sub) = slot.take() else { continue };
            if let Err(unsent) = self.shards.send_to(shard, Message::Data(sub)) {
                // Shard gone (teardown or a dead worker); undo its in-flight slot
                // so barriers don't hang, and recycle the unsent sub-batch.
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                if let Message::Data(sub) = unsent.0 {
                    self.pool.put(sub);
                }
            }
        }
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.pool.put(batch);
    }

    /// Picks the destination shard for one tuple (module docs: group-key hash of
    /// the first registered grouped query claiming the tuple, else round-robin).
    /// `dims_scratch` is the caller's reusable clause→row mapping buffer.
    fn shard_of<'t>(
        &mut self,
        tuple: &'t InFlightTuple,
        n: usize,
        dims_scratch: &mut Vec<Option<&'t Row>>,
    ) -> usize {
        for bit in tuple.bits.iter() {
            let Some(Some(route)) = self.routes.get(bit) else {
                continue;
            };
            if !route.grouped {
                continue;
            }
            let runtime = &route.runtime;
            // Map the query's dimension clauses to attached rows, borrowing
            // straight from the tuple — no per-tuple `Row` clones on this path.
            dims_scratch.clear();
            dims_scratch.extend(
                runtime
                    .slot_map
                    .iter()
                    .map(|&slot| tuple.dims.get(slot).and_then(Option::as_ref)),
            );
            let mut hasher = FxHasher::default();
            for col in &runtime.bound.group_by {
                col.value(&tuple.row, dims_scratch).hash(&mut hasher);
            }
            return (hasher.finish() % n as u64) as usize;
        }
        self.rr = (self.rr + 1) % n;
        self.rr
    }
}

/// A query whose partials are still being collected by the [`ShardMerger`].
struct PendingMerge {
    runtime: Arc<QueryRuntime>,
    partial: GroupedAggregator,
    received: usize,
}

/// The merger of the sharded aggregation stage: collects each finished query's
/// `N` shard partials (the end-barrier), merges them, and delivers the result.
pub struct ShardMerger {
    partials_rx: Receiver<ShardPartial>,
    num_shards: usize,
    counters: Arc<SharedCounters>,
    finished_tx: Sender<QueryId>,
    pending: FxHashMap<u32, PendingMerge>,
    faults: Option<Arc<FaultPlan>>,
}

impl ShardMerger {
    /// Creates a merger expecting `num_shards` partials per finished query.
    pub fn new(
        partials_rx: Receiver<ShardPartial>,
        num_shards: usize,
        counters: Arc<SharedCounters>,
        finished_tx: Sender<QueryId>,
    ) -> Self {
        Self {
            partials_rx,
            num_shards,
            counters,
            finished_tx,
            pending: FxHashMap::default(),
            faults: None,
        }
    }

    /// Attaches a fault-injection plan (supervision tests only).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Number of queries whose end-barrier has not completed yet (tests).
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    /// Runs until every shard has dropped its sender (pipeline teardown).
    pub fn run(&mut self) {
        while let Ok(partial) = self.partials_rx.recv() {
            fault::inject(&self.faults, FaultSite::ShardMerger);
            self.absorb(partial);
        }
    }

    /// Folds one shard partial into the query's pending merge; finalizes the query
    /// once all `num_shards` partials arrived. Exposed for barrier unit tests.
    pub fn absorb(&mut self, partial: ShardPartial) {
        let id = partial.runtime.id;
        let received = match self.pending.entry(id.0) {
            Entry::Vacant(v) => {
                v.insert(PendingMerge {
                    runtime: partial.runtime,
                    partial: partial.partial,
                    received: 1,
                });
                1
            }
            Entry::Occupied(mut o) => {
                let m = o.get_mut();
                m.partial.merge(partial.partial);
                m.received += 1;
                m.received
            }
        };
        if received >= self.num_shards {
            let merge = self.pending.remove(&id.0).expect("pending merge present");
            let result = merge.partial.finalize();
            // Same ordering contract as the single-shard path: completion is
            // counted before the result is delivered, and delivery goes through
            // the first-wins latch (a failed/reaped query drops the Ok here).
            SharedCounters::add(&self.counters.queries_completed, 1);
            merge.runtime.resolve(Ok(result));
            let _ = self.finished_tx.send(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShardQueues;
    use cjoin_common::QuerySet;
    use cjoin_query::{AggFunc, AggValue, AggregateSpec, ColumnRef, Predicate, StarQuery};
    use cjoin_storage::{Catalog, Column, RowId, Schema, SnapshotId, Table, Value};
    use crossbeam::channel::{bounded, unbounded};
    use std::time::Instant;

    /// Catalog: fact(fk, amount) + dim color(k, name).
    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("amount")],
        ));
        let dim = Table::new(Schema::new(
            "color",
            vec![Column::int("k"), Column::str("name")],
        ));
        dim.insert(vec![Value::int(1), Value::str("red")], SnapshotId::INITIAL)
            .unwrap();
        dim.insert(
            vec![Value::int(2), Value::str("green")],
            SnapshotId::INITIAL,
        )
        .unwrap();
        catalog.add_fact_table(Arc::new(fact));
        catalog.add_table(Arc::new(dim));
        catalog
    }

    fn runtime(
        catalog: &Catalog,
        bit: u32,
        group_by_dim: bool,
    ) -> (Arc<QueryRuntime>, Receiver<cjoin_query::QueryOutcome>) {
        let mut builder = StarQuery::builder(format!("q{bit}"))
            .join_dimension("color", "fk", "k", Predicate::True)
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")));
        if group_by_dim {
            builder = builder.group_by(ColumnRef::dim("color", "name"));
        }
        let bound = builder.build().bind(catalog).unwrap();
        let (tx, rx) = bounded(1);
        (
            Arc::new(QueryRuntime {
                id: QueryId(bit),
                name: format!("q{bit}"),
                bound: Arc::new(bound),
                slot_map: vec![0],
                result_tx: tx,
                resolved: std::sync::atomic::AtomicBool::new(false),
                cancelled: std::sync::atomic::AtomicBool::new(false),
                deadline_at: None,
                admitted_at: Instant::now(),
                snapshot: SnapshotId::INITIAL,
                progress: Arc::new(crate::progress::QueryProgress::new(0)),
            }),
            rx,
        )
    }

    fn tuple(bits: &[usize], fk: i64, amount: i64, dim_name: Option<&str>) -> InFlightTuple {
        let mut t = InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(fk), Value::int(amount)]),
            QuerySet::from_bits(8, bits.iter().copied()),
            1,
        );
        if let Some(name) = dim_name {
            t.dims[0] = Some(Row::new(vec![Value::int(fk), Value::str(name)]));
        }
        t
    }

    #[allow(clippy::type_complexity)]
    fn harness() -> (
        Distributor,
        Sender<Message>,
        Receiver<QueryId>,
        Arc<AtomicI64>,
    ) {
        let (tx, rx) = unbounded();
        let (fin_tx, fin_rx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let d = Distributor::single(
            rx,
            Arc::clone(&in_flight),
            BatchPool::new(4, true),
            SharedCounters::new(),
            Arc::new(ShardCounters::default()),
            fin_tx,
            8,
        );
        (d, tx, fin_rx, in_flight)
    }

    #[test]
    fn routes_tuples_to_registered_queries_and_finalizes() {
        let catalog = catalog();
        let (mut d, tx, fin_rx, in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 0, true);

        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(Message::Data(Batch::from(vec![
            tuple(&[0], 1, 10, Some("red")),
            tuple(&[0], 2, 20, Some("green")),
            tuple(&[0], 1, 5, Some("red")),
        ])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();

        let result = result_rx.try_recv().unwrap().unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(
            result.aggregate_for(&[Value::str("red")]).unwrap()[0],
            AggValue::Int(15)
        );
        assert_eq!(
            result.aggregate_for(&[Value::str("green")]).unwrap()[0],
            AggValue::Int(20)
        );
        assert_eq!(fin_rx.try_recv().unwrap(), QueryId(0));
        assert_eq!(
            in_flight.load(Ordering::Acquire),
            0,
            "data batch acknowledged"
        );
    }

    #[test]
    fn tuples_for_unregistered_bits_are_ignored() {
        let catalog = catalog();
        let (mut d, tx, _fin_rx, in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 1, false);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        // Bit 5 has no registered aggregation; bit 1 does.
        tx.send(Message::Data(Batch::from(vec![tuple(
            &[1, 5],
            1,
            7,
            Some("red"),
        )])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(1))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        let result = result_rx.try_recv().unwrap().unwrap();
        assert_eq!(result.rows().next().unwrap().1[0], AggValue::Int(7));
    }

    #[test]
    fn multiple_concurrent_queries_share_one_tuple() {
        let catalog = catalog();
        let (mut d, tx, fin_rx, in_flight) = harness();
        let (rt0, rx0) = runtime(&catalog, 0, false);
        let (rt1, rx1) = runtime(&catalog, 1, true);
        tx.send(Message::Control(ControlTuple::QueryStart(rt0)))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryStart(rt1)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(Message::Data(Batch::from(vec![tuple(
            &[0, 1],
            1,
            100,
            Some("red"),
        )])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(1))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        assert_eq!(
            rx0.try_recv().unwrap().unwrap().rows().next().unwrap().1[0],
            AggValue::Int(100)
        );
        assert_eq!(
            rx1.try_recv()
                .unwrap()
                .unwrap()
                .aggregate_for(&[Value::str("red")])
                .unwrap()[0],
            AggValue::Int(100)
        );
        let finished: Vec<_> = fin_rx.try_iter().collect();
        assert_eq!(finished, vec![QueryId(0), QueryId(1)]);
    }

    #[test]
    fn query_with_no_matching_tuples_still_delivers_a_result() {
        let catalog = catalog();
        let (mut d, tx, _fin, _in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 0, true);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        let result = result_rx.try_recv().unwrap().unwrap();
        assert!(
            result.is_empty(),
            "grouped query with no input has no groups"
        );
    }

    #[test]
    fn dropped_result_receiver_does_not_wedge_the_pipeline() {
        let catalog = catalog();
        let (mut d, tx, fin_rx, _in_flight) = harness();
        let (rt, result_rx) = runtime(&catalog, 0, false);
        drop(result_rx);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        d.run();
        assert_eq!(
            fin_rx.try_recv().unwrap(),
            QueryId(0),
            "cleanup still notified"
        );
    }

    #[test]
    fn exits_when_senders_disconnect() {
        let (mut d, tx, _fin, _inf) = harness();
        drop(tx);
        d.run(); // must return immediately rather than block forever
    }

    // ------------------------------------------------------------------
    // Sharded mode: router, shard workers, merge barrier
    // ------------------------------------------------------------------

    fn router_harness(
        shards: usize,
    ) -> (ShardRouter, Sender<Message>, ShardQueues, Arc<AtomicI64>) {
        let (tx, rx) = unbounded();
        let queues = ShardQueues::new(shards, 16);
        let in_flight = Arc::new(AtomicI64::new(0));
        let router = ShardRouter::new(
            rx,
            queues.senders(),
            Arc::clone(&in_flight),
            BatchPool::new(16, true),
            64,
            8,
        );
        (router, tx, queues, in_flight)
    }

    /// Invariant 1 at the unit level: the query-start broadcast reaches every shard
    /// before any data the router routes afterwards, and routing covers each tuple
    /// exactly once.
    #[test]
    fn router_broadcasts_start_before_routed_data_and_partitions_tuples() {
        let catalog = catalog();
        let (mut router, tx, queues, in_flight) = router_harness(3);
        let (rt, _res) = runtime(&catalog, 0, true);
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        let names = ["red", "green", "red", "green", "red"];
        tx.send(Message::Data(
            names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let mut t = tuple(&[0], (i % 2 + 1) as i64, i as i64, Some(name));
                    t.row_id = RowId(i as u64);
                    t
                })
                .collect(),
        ))
        .unwrap();
        tx.send(Message::Shutdown).unwrap();
        router.run();

        let mut routed = 0usize;
        let mut group_shards: std::collections::BTreeMap<
            String,
            std::collections::BTreeSet<usize>,
        > = std::collections::BTreeMap::new();
        for s in 0..3 {
            // First message on every shard queue is the broadcast start tuple.
            match queues.shard(s).recv().unwrap() {
                Message::Control(ControlTuple::QueryStart(rt)) => assert_eq!(rt.id, QueryId(0)),
                other => panic!("shard {s}: expected QueryStart first, got {other:?}"),
            }
            loop {
                match queues.shard(s).recv().unwrap() {
                    Message::Data(batch) => {
                        routed += batch.len();
                        for t in &batch {
                            // Dimension rows attached upstream survive the routing copy.
                            let name = t.dims[0].as_ref().unwrap().get(1);
                            group_shards.entry(format!("{name}")).or_default().insert(s);
                        }
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                    Message::Shutdown => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(routed, names.len(), "each tuple routed exactly once");
        // Group-key routing: every tuple of one group lands on one shard.
        assert_eq!(group_shards.len(), 2);
        for (group, shards) in &group_shards {
            assert_eq!(shards.len(), 1, "group {group} split across shards");
        }
        assert_eq!(in_flight.load(Ordering::Acquire), 0, "accounting balanced");
    }

    #[test]
    fn router_spreads_ungrouped_tuples_round_robin() {
        let catalog = catalog();
        let (mut router, tx, queues, in_flight) = router_harness(2);
        let (rt, _res) = runtime(&catalog, 0, false); // scalar query: no group-by
        tx.send(Message::Control(ControlTuple::QueryStart(rt)))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(Message::Data(
            (0..6).map(|i| tuple(&[0], 1, i, Some("red"))).collect(),
        ))
        .unwrap();
        tx.send(Message::Shutdown).unwrap();
        router.run();
        let mut per_shard = [0usize; 2];
        for (s, count) in per_shard.iter_mut().enumerate() {
            while let Some(msg) = queues.shard(s).recv() {
                match msg {
                    Message::Data(b) => *count += b.len(),
                    Message::Shutdown => break,
                    Message::Control(_) => {}
                }
            }
        }
        assert_eq!(per_shard, [3, 3], "round-robin balances scalar tuples");
    }

    /// Invariant 2 at the unit level: the merger finalizes a query only after all
    /// shards' partials arrived, and merges them into the exact global result.
    #[test]
    fn merger_end_barrier_waits_for_every_shard() {
        let catalog = catalog();
        let (rt, result_rx) = runtime(&catalog, 0, true);
        let counters = SharedCounters::new();
        let (fin_tx, fin_rx) = unbounded();
        let (_ptx, prx) = unbounded();
        let mut merger = ShardMerger::new(prx, 3, Arc::clone(&counters), fin_tx);

        let partial_with = |rows: &[(i64, &str, i64)]| -> GroupedAggregator {
            let mut agg = GroupedAggregator::new(&rt.bound);
            for &(fk, name, amount) in rows {
                let t = tuple(&[0], fk, amount, Some(name));
                let dims = [t.dims[0].as_ref()];
                agg.accumulate(&t.row, &dims);
            }
            agg
        };
        for (shard, rows) in [
            vec![(1, "red", 10)],
            vec![(2, "green", 20), (1, "red", 1)],
            vec![],
        ]
        .into_iter()
        .enumerate()
        .take(2)
        {
            merger.absorb(ShardPartial {
                shard,
                runtime: Arc::clone(&rt),
                partial: partial_with(&rows),
            });
            assert_eq!(merger.pending_queries(), 1);
            assert!(
                result_rx.try_recv().is_err(),
                "no result before the barrier completes"
            );
            assert_eq!(counters.queries_completed.load(Ordering::Relaxed), 0);
            assert!(fin_rx.try_recv().is_err());
        }
        // The last shard (an empty partial — it drained no tuples) completes it.
        merger.absorb(ShardPartial {
            shard: 2,
            runtime: Arc::clone(&rt),
            partial: partial_with(&[]),
        });
        assert_eq!(merger.pending_queries(), 0);
        let result = result_rx.try_recv().unwrap().unwrap();
        assert_eq!(
            result.aggregate_for(&[Value::str("red")]).unwrap()[0],
            AggValue::Int(11)
        );
        assert_eq!(
            result.aggregate_for(&[Value::str("green")]).unwrap()[0],
            AggValue::Int(20)
        );
        assert_eq!(counters.queries_completed.load(Ordering::Relaxed), 1);
        assert_eq!(fin_rx.try_recv().unwrap(), QueryId(0));
    }

    #[test]
    fn sharded_worker_emits_partials_instead_of_finalizing() {
        let catalog = catalog();
        let (rt, result_rx) = runtime(&catalog, 0, true);
        let (tx, rx) = unbounded();
        let (ptx, prx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let counters = SharedCounters::new();
        let shard_counters = Arc::new(ShardCounters::default());
        let mut worker = Distributor::sharded(
            1,
            rx,
            Arc::clone(&in_flight),
            BatchPool::new(4, true),
            Arc::clone(&counters),
            Arc::clone(&shard_counters),
            ptx,
            8,
        );
        tx.send(Message::Control(ControlTuple::QueryStart(Arc::clone(&rt))))
            .unwrap();
        in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(Message::Data(Batch::from(vec![tuple(
            &[0],
            1,
            42,
            Some("red"),
        )])))
        .unwrap();
        tx.send(Message::Control(ControlTuple::QueryEnd(QueryId(0))))
            .unwrap();
        tx.send(Message::Shutdown).unwrap();
        worker.run();

        assert!(
            result_rx.try_recv().is_err(),
            "a shard never delivers results directly"
        );
        assert_eq!(counters.queries_completed.load(Ordering::Relaxed), 0);
        let p = prx.try_recv().unwrap();
        assert_eq!(p.shard, 1);
        assert_eq!(p.runtime.id, QueryId(0));
        assert_eq!(
            p.partial
                .finalize()
                .aggregate_for(&[Value::str("red")])
                .unwrap()[0],
            AggValue::Int(42)
        );
        assert_eq!(shard_counters.partials_emitted.load(Ordering::Relaxed), 1);
        assert_eq!(shard_counters.tuples_distributed.load(Ordering::Relaxed), 1);
        assert_eq!(
            counters.tuples_distributed.load(Ordering::Relaxed),
            1,
            "shard updates the global totals too"
        );
    }
}
