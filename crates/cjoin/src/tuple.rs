//! In-flight tuples, batches and control tuples.
//!
//! The Preprocessor augments every fact tuple with a query bit-vector `bτ` (§3.2.2)
//! and, as the tuple passes through the Filters, pointers to its joining dimension
//! tuples are attached so the aggregation operators can read dimension attributes
//! without re-probing (§3.2.2, last paragraph). Tuples travel through the pipeline in
//! batches to amortise queue synchronisation (§4).
//!
//! Control tuples (`query start` / `query end`, §3.3) carry query lifecycle events
//! from the Preprocessor to the Distributor. The pipeline guarantees they are never
//! reordered relative to data tuples (§3.3.3); see
//! [`Pipeline`](crate::pipeline::Pipeline) for how that ordering is enforced.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;

use cjoin_common::{QueryId, QuerySet};
use cjoin_query::{BoundStarQuery, QueryOutcome};
use cjoin_storage::{Row, RowId, SnapshotId};

use crate::progress::QueryProgress;

/// A fact tuple flowing through the pipeline.
#[derive(Debug, Clone)]
pub struct InFlightTuple {
    /// Position of the tuple in the fact table.
    pub row_id: RowId,
    /// The fact row itself (cheap `Arc` clone of the stored row).
    pub row: Row,
    /// The query bit-vector `bτ`: bit `i` is set while the tuple is still relevant to
    /// query `i`.
    pub bits: QuerySet,
    /// Joining dimension rows attached by the Filters, indexed by dimension *slot*
    /// (see [`crate::dimension::DimensionTable::slot`]).
    pub dims: Vec<Option<Row>>,
}

impl InFlightTuple {
    /// Creates a tuple with no dimension rows attached.
    pub fn new(row_id: RowId, row: Row, bits: QuerySet, num_slots: usize) -> Self {
        Self {
            row_id,
            row,
            bits,
            dims: vec![None; num_slots],
        }
    }

    /// Creates a placeholder tuple whose buffers are sized for `max_concurrency`
    /// query bits. Used by [`Batch::next_slot`] to grow a batch's spare-tuple pool;
    /// the tuple must be [`reset`](InFlightTuple::reset) before use.
    fn new_spare(max_concurrency: usize) -> Self {
        Self {
            row_id: RowId(0),
            row: Row::new(Vec::new()),
            bits: QuerySet::new(max_concurrency),
            dims: Vec::new(),
        }
    }

    /// Reinitialises a recycled tuple in place, reusing its existing `bits` words
    /// and `dims` allocation. The bit-vector buffer is only reallocated if the
    /// capacity changed (it never does within one engine, whose `maxConc` is fixed);
    /// the dimension-slot vector reuses its capacity across recycles.
    pub fn reset(&mut self, row_id: RowId, row: Row, bits: &QuerySet, num_slots: usize) {
        self.row_id = row_id;
        self.row = row;
        if self.bits.capacity() == bits.capacity() {
            self.bits.copy_from(bits);
        } else {
            self.bits = bits.clone();
        }
        self.dims.clear();
        self.dims.resize(num_slots, None);
    }

    /// Ensures the dimension-slot vector can hold `num_slots` entries (slots are only
    /// ever appended while a pipeline is running).
    pub fn ensure_slots(&mut self, num_slots: usize) {
        if self.dims.len() < num_slots {
            self.dims.resize(num_slots, None);
        }
    }

    /// Reinitialises a recycled tuple in place as a copy of `src`, including the
    /// dimension rows the Filters attached (`Row` clones are cheap `Arc` bumps).
    /// Used by the shard router to split a surviving batch across shard sub-batches
    /// without per-tuple heap allocation at steady state.
    pub fn copy_from_tuple(&mut self, src: &InFlightTuple) {
        self.row_id = src.row_id;
        self.row = src.row.clone();
        if self.bits.capacity() == src.bits.capacity() {
            self.bits.copy_from(&src.bits);
        } else {
            self.bits = src.bits.clone();
        }
        self.dims.clear();
        self.dims.extend(src.dims.iter().cloned());
    }
}

/// A batch of data tuples with zero-allocation recycling.
///
/// A `Batch` keeps two regions in one backing vector: `tuples[..live]` are the
/// batch's current data tuples, and `tuples[live..]` are **spare** tuples left over
/// from the batch's previous trips through the pipeline. Dropping a tuple
/// ([`truncate_live`](Batch::truncate_live)) or finishing a batch
/// ([`recycle`](Batch::recycle)) only moves the `live` watermark — the spare tuples
/// keep their heap allocations (`bits` words, `dims` vector) and are reinitialised
/// in place by [`next_slot`](Batch::next_slot) + [`InFlightTuple::reset`] on the
/// batch's next fill. Combined with the [`BatchPool`](crate::pool::BatchPool), the
/// steady-state scan path performs no per-tuple heap allocation at all, which is the
/// paper's "specialized allocator for fact tuples" (§4).
#[derive(Debug, Clone, Default)]
pub struct Batch {
    tuples: Vec<InFlightTuple>,
    /// Number of live tuples at the front of `tuples`.
    live: usize,
    /// Slots of the dimension Filters that have already processed this batch.
    /// Tracked only by multi-Stage layouts, where the filter chain can grow,
    /// shrink or be reordered while the batch is between Stages (see
    /// [`crate::pipeline::run_stage_worker`]); slot ids are never reused within
    /// one engine, so a slot uniquely identifies a Filter instance.
    applied_filters: Vec<usize>,
}

impl Batch {
    /// Creates an empty batch with no spare tuples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch whose backing vector can hold `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            tuples: Vec::with_capacity(capacity),
            live: 0,
            applied_filters: Vec::new(),
        }
    }

    /// Number of live tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the batch has no live tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity of the backing vector (diagnostics / tests).
    pub fn capacity(&self) -> usize {
        self.tuples.capacity()
    }

    /// Number of spare (recyclable) tuples beyond the live region.
    pub fn spare_tuples(&self) -> usize {
        self.tuples.len() - self.live
    }

    /// Appends a fully-formed tuple, overwriting a spare if one is available.
    pub fn push(&mut self, tuple: InFlightTuple) {
        if self.live < self.tuples.len() {
            self.tuples[self.live] = tuple;
        } else {
            self.tuples.push(tuple);
        }
        self.live += 1;
    }

    /// Returns a mutable slot for the next tuple, recycling a spare when one is
    /// available. The second return value is `true` if the slot was recycled
    /// (no heap allocation) and `false` if a fresh tuple had to be allocated.
    /// The caller must [`reset`](InFlightTuple::reset) the slot before reading it.
    #[inline]
    pub fn next_slot(&mut self, max_concurrency: usize) -> (&mut InFlightTuple, bool) {
        let recycled = self.live < self.tuples.len();
        if !recycled {
            self.tuples.push(InFlightTuple::new_spare(max_concurrency));
        }
        let slot = &mut self.tuples[self.live];
        self.live += 1;
        (slot, recycled)
    }

    /// Shrinks the live region to `len` tuples; the dropped tuples become spares
    /// and keep their allocations.
    #[inline]
    pub fn truncate_live(&mut self, len: usize) {
        debug_assert!(len <= self.live);
        self.live = self.live.min(len);
    }

    /// Empties the live region, turning every tuple into a spare. This is the
    /// pool-recycling entry point: nothing is deallocated.
    pub fn recycle(&mut self) {
        self.live = 0;
        self.applied_filters.clear();
    }

    /// Records that the Filter occupying dimension slot `slot` has processed this
    /// batch (multi-Stage layouts only).
    pub fn mark_filter_applied(&mut self, slot: usize) {
        if !self.applied_filters.contains(&slot) {
            self.applied_filters.push(slot);
        }
    }

    /// Whether the Filter occupying dimension slot `slot` already processed this
    /// batch.
    pub fn filter_applied(&self, slot: usize) -> bool {
        self.applied_filters.contains(&slot)
    }

    /// Swaps two live tuples (the filter loop's in-place survivor compaction).
    #[inline]
    pub fn swap(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.live && b < self.live);
        self.tuples.swap(a, b);
    }

    /// Iterates over the live tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, InFlightTuple> {
        self.tuples[..self.live].iter()
    }

    /// Iterates mutably over the live tuples.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, InFlightTuple> {
        self.tuples[..self.live].iter_mut()
    }

    /// The live tuples as a slice.
    pub fn as_slice(&self) -> &[InFlightTuple] {
        &self.tuples[..self.live]
    }
}

impl std::ops::Index<usize> for Batch {
    type Output = InFlightTuple;
    #[inline]
    fn index(&self, index: usize) -> &InFlightTuple {
        &self.tuples[..self.live][index]
    }
}

impl std::ops::IndexMut<usize> for Batch {
    #[inline]
    fn index_mut(&mut self, index: usize) -> &mut InFlightTuple {
        &mut self.tuples[..self.live][index]
    }
}

impl From<Vec<InFlightTuple>> for Batch {
    fn from(tuples: Vec<InFlightTuple>) -> Self {
        Self {
            live: tuples.len(),
            tuples,
            applied_filters: Vec::new(),
        }
    }
}

impl FromIterator<InFlightTuple> for Batch {
    fn from_iter<I: IntoIterator<Item = InFlightTuple>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<_>>())
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a InFlightTuple;
    type IntoIter = std::slice::Iter<'a, InFlightTuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Everything the Distributor needs to run one registered query: its bound form, the
/// mapping from its dimension clauses to pipeline dimension slots, and the channel the
/// final result is delivered on.
#[derive(Debug)]
pub struct QueryRuntime {
    /// The CJOIN-internal query id (bit-vector index).
    pub id: QueryId,
    /// Query name (for diagnostics).
    pub name: String,
    /// The schema-bound query.
    pub bound: Arc<BoundStarQuery>,
    /// `slot_map[k]` = dimension slot holding the row joined by the query's `k`-th
    /// dimension clause.
    pub slot_map: Vec<usize>,
    /// Channel on which the query's outcome is delivered — the Distributor's
    /// result on success, or a typed [`cjoin_query::QueryError`] when the
    /// supervisor fails the query, a deadline fires, or the client cancels.
    pub result_tx: Sender<QueryOutcome>,
    /// First-wins resolution latch: set by whichever of {Distributor/merger,
    /// supervisor, deadline reaper, client cancel} gets there first. A late
    /// Distributor result for an already-failed query is silently discarded.
    pub resolved: AtomicBool,
    /// Cooperative-cancellation flag: set together with a losing outcome so the
    /// scan front-end can retire the query's bit early instead of finishing the
    /// pass for a client that already went away.
    pub cancelled: AtomicBool,
    /// Absolute deadline derived from the query's relative deadline at
    /// submission; the supervisor's reaper cancels the query once this passes.
    pub deadline_at: Option<Instant>,
    /// When the query was admitted (start of Algorithm 1), for statistics.
    pub admitted_at: Instant,
    /// The storage snapshot the query was admitted against. An elastic resize
    /// re-installs in-flight queries on the new pipeline incarnation at this
    /// same snapshot, so the restarted pass sees exactly the rows the original
    /// admission saw.
    pub snapshot: SnapshotId,
    /// Progress tracker shared with the query's [`QueryHandle`](crate::engine::QueryHandle).
    pub progress: Arc<QueryProgress>,
}

impl QueryRuntime {
    /// Delivers `outcome` to the waiting [`QueryHandle`](crate::engine::QueryHandle)
    /// if nobody resolved the query yet. Returns whether this call won the race;
    /// losers' outcomes are dropped, which is what keeps result delivery
    /// exactly-once when the Distributor, the supervisor and the deadline reaper
    /// all race to finish the same query.
    pub fn resolve(&self, outcome: QueryOutcome) -> bool {
        if self.resolved.swap(true, Ordering::AcqRel) {
            return false;
        }
        // The handle holds a bounded(1) receiver; a dropped receiver (client
        // went away) makes this a no-op, never an error.
        let _ = self.result_tx.send(outcome);
        true
    }

    /// Whether the query has been cancelled (deadline, client cancel, or
    /// supervisor failure) and the scan may retire its bit early.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Marks the query cancelled. Idempotent; callers still need to deliver an
    /// outcome via [`QueryRuntime::resolve`].
    pub fn mark_cancelled(&self) {
        self.cancelled.store(true, Ordering::Release);
    }
}

/// A lifecycle event travelling from the Preprocessor to the Distributor.
///
/// Control tuples are `Clone` because the shard router *broadcasts* them: every
/// aggregation shard must set up (query start) or flush (query end) its own
/// partial state for the query. Cloning a `QueryStart` is an `Arc` bump.
#[derive(Debug, Clone)]
pub enum ControlTuple {
    /// A new query has been installed; the Distributor must set up its aggregation
    /// operator before any of its result tuples arrive (§3.3.1).
    QueryStart(Arc<QueryRuntime>),
    /// The continuous scan has wrapped around the query's starting tuple; the
    /// Distributor finalizes the aggregation and emits the result (§3.3.2).
    QueryEnd(QueryId),
}

/// A message travelling through pipeline queues.
#[derive(Debug)]
pub enum Message {
    /// A batch of data tuples.
    Data(Batch),
    /// A control tuple (only ever enqueued when no data is in flight ahead of it).
    Control(ControlTuple),
    /// Orderly shutdown: each worker forwards it once and exits.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_storage::Value;

    fn row() -> Row {
        Row::new(vec![Value::int(1), Value::int(2)])
    }

    #[test]
    fn new_tuple_has_empty_slots() {
        let t = InFlightTuple::new(RowId(3), row(), QuerySet::new(8), 2);
        assert_eq!(t.row_id, RowId(3));
        assert_eq!(t.dims.len(), 2);
        assert!(t.dims.iter().all(Option::is_none));
        assert!(t.bits.is_empty());
    }

    #[test]
    fn ensure_slots_grows_but_never_shrinks() {
        let mut t = InFlightTuple::new(RowId(0), row(), QuerySet::new(8), 1);
        t.dims[0] = Some(row());
        t.ensure_slots(3);
        assert_eq!(t.dims.len(), 3);
        assert!(t.dims[0].is_some());
        t.ensure_slots(2);
        assert_eq!(t.dims.len(), 3);
    }

    #[test]
    fn batch_push_truncate_and_recycle_keep_spares() {
        let mut b = Batch::new();
        for i in 0..4 {
            b.push(InFlightTuple::new(RowId(i), row(), QuerySet::new(8), 1));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.spare_tuples(), 0);
        b.truncate_live(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.spare_tuples(), 3, "dropped tuples become spares");
        b.recycle();
        assert!(b.is_empty());
        assert_eq!(b.spare_tuples(), 4);
        // Refill through next_slot: the first four slots recycle, the fifth allocates.
        for i in 0..5 {
            let (slot, recycled) = b.next_slot(8);
            slot.reset(RowId(i), row(), &QuerySet::from_bits(8, [0]), 2);
            assert_eq!(recycled, i < 4, "slot {i}");
        }
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|t| t.bits.get(0) && t.dims.len() == 2));
    }

    #[test]
    fn reset_reuses_buffers_and_handles_capacity_changes() {
        let mut t = InFlightTuple::new(RowId(0), row(), QuerySet::from_bits(8, [0, 3]), 3);
        t.dims[1] = Some(row());
        t.reset(RowId(7), row(), &QuerySet::from_bits(8, [5]), 2);
        assert_eq!(t.row_id, RowId(7));
        assert_eq!(t.bits.iter().collect::<Vec<_>>(), vec![5]);
        assert_eq!(t.dims.len(), 2);
        assert!(t.dims.iter().all(Option::is_none), "stale rows are cleared");
        // Capacity change (only possible across engines) falls back to a clone.
        t.reset(RowId(8), row(), &QuerySet::from_bits(16, [9]), 1);
        assert_eq!(t.bits.capacity(), 16);
        assert!(t.bits.get(9));
    }

    #[test]
    fn copy_from_tuple_replicates_bits_and_attached_dims() {
        let mut src = InFlightTuple::new(RowId(9), row(), QuerySet::from_bits(8, [1, 4]), 2);
        src.dims[1] = Some(row());
        // A recycled spare with stale contents takes on the source's state in place.
        let mut dst = InFlightTuple::new(RowId(0), row(), QuerySet::from_bits(8, [0]), 3);
        dst.dims[0] = Some(row());
        dst.copy_from_tuple(&src);
        assert_eq!(dst.row_id, RowId(9));
        assert_eq!(dst.bits.iter().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(dst.dims.len(), 2);
        assert!(dst.dims[0].is_none() && dst.dims[1].is_some());
        // Capacity mismatch (never within one engine) falls back to a clone.
        let mut wide = InFlightTuple::new(RowId(0), row(), QuerySet::new(16), 0);
        wide.copy_from_tuple(&src);
        assert_eq!(wide.bits.capacity(), 8);
        assert!(wide.bits.get(4));
    }

    #[test]
    fn control_tuples_are_broadcastable_clones() {
        let end = ControlTuple::QueryEnd(QueryId(3));
        assert!(matches!(end.clone(), ControlTuple::QueryEnd(QueryId(3))));
    }

    #[test]
    fn message_variants_are_constructible() {
        let batch = Batch::from(vec![InFlightTuple::new(
            RowId(0),
            row(),
            QuerySet::new(4),
            0,
        )]);
        let m = Message::Data(batch);
        assert!(matches!(m, Message::Data(b) if b.len() == 1));
        assert!(matches!(
            Message::Control(ControlTuple::QueryEnd(QueryId(2))),
            Message::Control(ControlTuple::QueryEnd(QueryId(2)))
        ));
        assert!(matches!(Message::Shutdown, Message::Shutdown));
    }
}
