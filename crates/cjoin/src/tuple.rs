//! In-flight tuples, batches and control tuples.
//!
//! The Preprocessor augments every fact tuple with a query bit-vector `bτ` (§3.2.2)
//! and, as the tuple passes through the Filters, pointers to its joining dimension
//! tuples are attached so the aggregation operators can read dimension attributes
//! without re-probing (§3.2.2, last paragraph). Tuples travel through the pipeline in
//! batches to amortise queue synchronisation (§4).
//!
//! Control tuples (`query start` / `query end`, §3.3) carry query lifecycle events
//! from the Preprocessor to the Distributor. The pipeline guarantees they are never
//! reordered relative to data tuples (§3.3.3); see
//! [`Pipeline`](crate::pipeline::Pipeline) for how that ordering is enforced.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;

use cjoin_common::{QueryId, QuerySet};
use cjoin_query::{BoundStarQuery, QueryResult};
use cjoin_storage::{Row, RowId};

use crate::progress::QueryProgress;

/// A fact tuple flowing through the pipeline.
#[derive(Debug, Clone)]
pub struct InFlightTuple {
    /// Position of the tuple in the fact table.
    pub row_id: RowId,
    /// The fact row itself (cheap `Arc` clone of the stored row).
    pub row: Row,
    /// The query bit-vector `bτ`: bit `i` is set while the tuple is still relevant to
    /// query `i`.
    pub bits: QuerySet,
    /// Joining dimension rows attached by the Filters, indexed by dimension *slot*
    /// (see [`crate::dimension::DimensionTable::slot`]).
    pub dims: Vec<Option<Row>>,
}

impl InFlightTuple {
    /// Creates a tuple with no dimension rows attached.
    pub fn new(row_id: RowId, row: Row, bits: QuerySet, num_slots: usize) -> Self {
        Self {
            row_id,
            row,
            bits,
            dims: vec![None; num_slots],
        }
    }

    /// Ensures the dimension-slot vector can hold `num_slots` entries (slots are only
    /// ever appended while a pipeline is running).
    pub fn ensure_slots(&mut self, num_slots: usize) {
        if self.dims.len() < num_slots {
            self.dims.resize(num_slots, None);
        }
    }
}

/// A batch of data tuples.
pub type Batch = Vec<InFlightTuple>;

/// Everything the Distributor needs to run one registered query: its bound form, the
/// mapping from its dimension clauses to pipeline dimension slots, and the channel the
/// final result is delivered on.
#[derive(Debug)]
pub struct QueryRuntime {
    /// The CJOIN-internal query id (bit-vector index).
    pub id: QueryId,
    /// Query name (for diagnostics).
    pub name: String,
    /// The schema-bound query.
    pub bound: Arc<BoundStarQuery>,
    /// `slot_map[k]` = dimension slot holding the row joined by the query's `k`-th
    /// dimension clause.
    pub slot_map: Vec<usize>,
    /// Channel on which the Distributor delivers the final result.
    pub result_tx: Sender<QueryResult>,
    /// When the query was admitted (start of Algorithm 1), for statistics.
    pub admitted_at: Instant,
    /// Progress tracker shared with the query's [`QueryHandle`](crate::engine::QueryHandle).
    pub progress: Arc<QueryProgress>,
}

/// A lifecycle event travelling from the Preprocessor to the Distributor.
#[derive(Debug)]
pub enum ControlTuple {
    /// A new query has been installed; the Distributor must set up its aggregation
    /// operator before any of its result tuples arrive (§3.3.1).
    QueryStart(Arc<QueryRuntime>),
    /// The continuous scan has wrapped around the query's starting tuple; the
    /// Distributor finalizes the aggregation and emits the result (§3.3.2).
    QueryEnd(QueryId),
}

/// A message travelling through pipeline queues.
#[derive(Debug)]
pub enum Message {
    /// A batch of data tuples.
    Data(Batch),
    /// A control tuple (only ever enqueued when no data is in flight ahead of it).
    Control(ControlTuple),
    /// Orderly shutdown: each worker forwards it once and exits.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_storage::Value;

    fn row() -> Row {
        Row::new(vec![Value::int(1), Value::int(2)])
    }

    #[test]
    fn new_tuple_has_empty_slots() {
        let t = InFlightTuple::new(RowId(3), row(), QuerySet::new(8), 2);
        assert_eq!(t.row_id, RowId(3));
        assert_eq!(t.dims.len(), 2);
        assert!(t.dims.iter().all(Option::is_none));
        assert!(t.bits.is_empty());
    }

    #[test]
    fn ensure_slots_grows_but_never_shrinks() {
        let mut t = InFlightTuple::new(RowId(0), row(), QuerySet::new(8), 1);
        t.dims[0] = Some(row());
        t.ensure_slots(3);
        assert_eq!(t.dims.len(), 3);
        assert!(t.dims[0].is_some());
        t.ensure_slots(2);
        assert_eq!(t.dims.len(), 3);
    }

    #[test]
    fn message_variants_are_constructible() {
        let batch: Batch = vec![InFlightTuple::new(RowId(0), row(), QuerySet::new(4), 0)];
        let m = Message::Data(batch);
        assert!(matches!(m, Message::Data(b) if b.len() == 1));
        assert!(matches!(
            Message::Control(ControlTuple::QueryEnd(QueryId(2))),
            Message::Control(ControlTuple::QueryEnd(QueryId(2)))
        ));
        assert!(matches!(Message::Shutdown, Message::Shutdown));
    }
}
