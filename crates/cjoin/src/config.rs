//! Pipeline configuration.

use std::path::PathBuf;
use std::sync::Arc;

use cjoin_common::{Error, Result};
use cjoin_storage::SyncPolicy;

use crate::fault::FaultPlan;

/// How Filters are boxed into Stages and Stages into threads (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageLayout {
    /// One Stage containing the entire Filter sequence; `worker_threads` threads all
    /// run the whole sequence on disjoint batches. This is the configuration the
    /// paper converges on (Figure 4) and the default.
    Horizontal,
    /// One Stage per Filter, each with one thread; tuples are handed from stage to
    /// stage through queues. Exists to reproduce Figure 4's comparison.
    Vertical,
    /// Explicit grouping: `groups[i]` is the number of consecutive Filters boxed into
    /// Stage `i`; each stage gets one thread. Groups are matched to the filter chain
    /// in order; a trailing group absorbs any extra filters.
    Hybrid(Vec<usize>),
}

/// Which parallelism knobs were set explicitly (through the builder methods)
/// rather than left at their defaults.
///
/// The elastic stage scheduler (see [`crate::scheduler`]) only governs axes
/// that are *not* pinned: an explicit `with_scan_workers(4)` is a fixed
/// override the scheduler never touches, so every existing configuration
/// behaves bit-identically whether `auto_tune` is on or off. Axes set through
/// struct-update syntax are caught by a second rule — the scheduler also
/// treats any non-default value as pinned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PinnedAxes {
    /// `scan_workers` was set explicitly.
    pub scan_workers: bool,
    /// `worker_threads` or `stage_layout` was set explicitly.
    pub worker_threads: bool,
    /// `distributor_shards` was set explicitly.
    pub distributor_shards: bool,
}

/// Configuration of a [`CjoinEngine`](crate::engine::CjoinEngine).
#[derive(Debug, Clone, PartialEq)]
pub struct CjoinConfig {
    /// Maximum number of concurrently registered queries (the paper's `maxConc`).
    /// Determines the width of every query bit-vector.
    pub max_concurrency: usize,
    /// Number of worker threads executing Filter work.
    pub worker_threads: usize,
    /// Stage layout (horizontal / vertical / hybrid).
    pub stage_layout: StageLayout,
    /// Number of fact tuples per batch handed between pipeline threads.
    pub batch_size: usize,
    /// Capacity (in batches) of each inter-thread queue.
    pub queue_capacity: usize,
    /// Enable run-time reordering of the filter chain from observed drop rates (§3.4).
    pub adaptive_filter_ordering: bool,
    /// How often (in milliseconds) the pipeline manager re-evaluates the filter order.
    pub reorder_interval_ms: u64,
    /// Enable the early-skip optimisation (`bτ AND ¬bDj == 0` avoids the probe, §3.2.2).
    pub early_skip: bool,
    /// Enable the batch-vectorized Filter hot path: the dimension hash-table read
    /// lock is taken once per (batch, filter) with entries borrowed rather than
    /// `Arc`-cloned, filter statistics accumulate in batch-local counters flushed
    /// once per batch, and survivors are compacted in place. Disable to fall back
    /// to the per-tuple probe path (the `abl_probe_locking` ablation baseline).
    pub batched_probing: bool,
    /// Number of parallel aggregation (Distributor) shards. `1` runs the classic
    /// single-threaded Distributor; `N > 1` adds a routing thread that splits each
    /// surviving batch across `N` shard workers by a hash of the tuple's group-by
    /// key (round-robin for ungrouped queries) plus a merge thread that combines
    /// the per-shard partial aggregates behind an end-of-query barrier.
    pub distributor_shards: usize,
    /// Number of parallel continuous-scan (Preprocessor) workers. `1` runs the
    /// classic single-threaded Preprocessor; `N > 1` splits the fact table's page
    /// range into `N` static segments, each owned by a scan worker that runs the
    /// full per-row path over its own segment cursor, plus an admission
    /// coordinator thread that installs queries at segment-batch boundaries and
    /// emits the single end-of-query control tuple once every segment has
    /// completed one pass since the query's admission.
    pub scan_workers: usize,
    /// Enable the compressed columnar scan front-end (§5, Column Stores /
    /// Compressed Tables): the continuous scan runs over a read-optimised
    /// columnar replica of the fact table, evaluating fact predicates and
    /// snapshot visibility directly on encoded data (one probe per RLE run,
    /// dictionary predicates pre-translated to code comparisons at install),
    /// skipping row groups whose zone maps no active query can match, and
    /// materialising only the union of columns the admitted queries' join
    /// keys, group-bys, and aggregates need (late materialization). Results
    /// are bit-identical to the row-store scan; rows appended after engine
    /// start are served from the row store by a hybrid tail path.
    pub columnar_scan: bool,
    /// Enable the pooled batch allocator (§4); disable to measure its effect.
    pub use_batch_pool: bool,
    /// Enable partition-based early query termination (§5, Fact Table Partitioning):
    /// queries whose fact predicate restricts the partitioning column finish as soon
    /// as the scan has covered every partition they need.
    pub partition_pruning: bool,
    /// Microseconds the preprocessor sleeps when no query is registered (the
    /// continuous scan idles instead of spinning).
    pub idle_sleep_us: u64,
    /// Run every pipeline role under the supervisor: panics are caught at the
    /// role boundary, in-flight queries on the dead axis fail with a typed
    /// [`cjoin_query::QueryError::StageFailed`] instead of hanging, and the
    /// pipeline respawns with the failed axis degraded to its classic path.
    /// Disable only to measure the `catch_unwind` + outcome-channel overhead
    /// (the BENCH_PR7 supervision A/B).
    pub supervision: bool,
    /// Deterministic fault schedule for supervision tests; `None` (the default)
    /// makes every injection point a single untaken branch. See [`FaultPlan`].
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Enable the elastic stage scheduler (default on): parallelism axes left
    /// at their defaults (`scan_workers`, `worker_threads`, and
    /// `distributor_shards` — see [`PinnedAxes`]) are sized at startup from
    /// `std::thread::available_parallelism()` and re-sized at runtime from
    /// live pipeline counters through a hysteresis-guarded policy (see
    /// [`crate::scheduler`]). Explicitly configured knob values remain fixed
    /// overrides the scheduler never touches. Note that `auto_tune` keeps the
    /// in-flight runtime registry populated even with `supervision` off (the
    /// scheduler re-installs in-flight queries across a resize), so combining
    /// `auto_tune` with `supervision = false` means a role panic leaves
    /// in-flight handles to resolve only at shutdown.
    pub auto_tune: bool,
    /// Path of the write-ahead log behind the durable ingestion path. `None`
    /// (the default) disables durability: `IngestSession` commits mutate the
    /// catalog in memory only and nothing survives a restart. With a path set,
    /// engine start replays the log into the catalog before the pipeline
    /// spawns (tolerating torn tails and corrupt records by truncating at the
    /// first defect), and every committed ingestion batch is durable per the
    /// configured [`SyncPolicy`] before it becomes visible.
    pub wal_path: Option<PathBuf>,
    /// When the WAL is forced to stable storage; ignored without `wal_path`.
    /// Defaults to [`SyncPolicy::OnCommit`] (group commit: one fsync per
    /// ingestion batch).
    pub wal_sync: SyncPolicy,
    /// Row-store tail length (rows appended since the columnar replica was
    /// built) at which an ingestion commit rebuilds the replica so the
    /// compressed scan re-absorbs the tail. `0` disables compaction. Ignored
    /// unless `columnar_scan` is enabled.
    pub tail_compaction_rows: usize,
    /// Which knobs were pinned by explicit builder calls; see [`PinnedAxes`].
    pub pinned: PinnedAxes,
}

impl Default for CjoinConfig {
    fn default() -> Self {
        Self {
            max_concurrency: 512,
            worker_threads: 4,
            stage_layout: StageLayout::Horizontal,
            batch_size: 1024,
            queue_capacity: 8,
            adaptive_filter_ordering: true,
            reorder_interval_ms: 50,
            early_skip: true,
            batched_probing: true,
            distributor_shards: 1,
            scan_workers: 1,
            columnar_scan: false,
            use_batch_pool: true,
            partition_pruning: false,
            idle_sleep_us: 200,
            supervision: true,
            fault_plan: None,
            auto_tune: true,
            wal_path: None,
            wal_sync: SyncPolicy::OnCommit,
            tail_compaction_rows: 8192,
            pinned: PinnedAxes::default(),
        }
    }
}

impl CjoinConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrency == 0 {
            return Err(Error::invalid_config("max_concurrency must be positive"));
        }
        if self.worker_threads == 0 {
            return Err(Error::invalid_config("worker_threads must be positive"));
        }
        if self.batch_size == 0 {
            return Err(Error::invalid_config("batch_size must be positive"));
        }
        if self.queue_capacity == 0 {
            return Err(Error::invalid_config("queue_capacity must be positive"));
        }
        if self.distributor_shards == 0 {
            return Err(Error::invalid_config("distributor_shards must be positive"));
        }
        if self.distributor_shards > 256 {
            return Err(Error::invalid_config(
                "distributor_shards must be at most 256",
            ));
        }
        if self.scan_workers == 0 {
            return Err(Error::invalid_config("scan_workers must be positive"));
        }
        if self.scan_workers > 64 {
            return Err(Error::invalid_config("scan_workers must be at most 64"));
        }
        if let StageLayout::Hybrid(groups) = &self.stage_layout {
            if groups.is_empty() || groups.contains(&0) {
                return Err(Error::invalid_config(
                    "hybrid stage groups must be non-empty and positive",
                ));
            }
        }
        Ok(())
    }

    /// Convenience: a configuration with the given number of worker threads
    /// (pins the stage-worker axis against the elastic scheduler).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n;
        self.pinned.worker_threads = true;
        self
    }

    /// Convenience: a configuration with the given stage layout (pins the
    /// stage-worker axis against the elastic scheduler).
    pub fn with_stage_layout(mut self, layout: StageLayout) -> Self {
        self.stage_layout = layout;
        self.pinned.worker_threads = true;
        self
    }

    /// Convenience: a configuration with the given `maxConc`.
    pub fn with_max_concurrency(mut self, n: usize) -> Self {
        self.max_concurrency = n;
        self
    }

    /// Convenience: a configuration with the given batch size.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Convenience: a configuration with batched probing enabled or disabled
    /// (the hot-path A/B knob used by the `abl_probe_locking` ablation).
    pub fn with_batched_probing(mut self, enabled: bool) -> Self {
        self.batched_probing = enabled;
        self
    }

    /// Convenience: a configuration with the given number of Distributor shards
    /// (the aggregation-stage knob used by the `abl_distributor_sharding`
    /// ablation; pins the axis against the elastic scheduler).
    pub fn with_distributor_shards(mut self, n: usize) -> Self {
        self.distributor_shards = n;
        self.pinned.distributor_shards = true;
        self
    }

    /// Convenience: a configuration with the given number of continuous-scan
    /// workers (the front-end knob used by the `abl_scan_parallelism`
    /// ablation; pins the axis against the elastic scheduler).
    pub fn with_scan_workers(mut self, n: usize) -> Self {
        self.scan_workers = n;
        self.pinned.scan_workers = true;
        self
    }

    /// Convenience: a configuration with the compressed columnar scan enabled or
    /// disabled (the storage-layout A/B knob used by the `abl_columnar_scan`
    /// ablation).
    pub fn with_columnar_scan(mut self, enabled: bool) -> Self {
        self.columnar_scan = enabled;
        self
    }

    /// Convenience: a configuration with supervision enabled or disabled (the
    /// robustness A/B knob measured in BENCH_PR7.json).
    pub fn with_supervision(mut self, enabled: bool) -> Self {
        self.supervision = enabled;
        self
    }

    /// Convenience: a configuration carrying a deterministic fault schedule.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Convenience: a configuration with the elastic stage scheduler enabled
    /// or disabled (the self-tuning A/B knob measured in BENCH_PR9.json).
    pub fn with_auto_tune(mut self, enabled: bool) -> Self {
        self.auto_tune = enabled;
        self
    }

    /// Convenience: a configuration with a write-ahead log at `path` (enables
    /// the durable ingestion path; see [`CjoinConfig::wal_path`]).
    pub fn with_wal(mut self, path: impl Into<PathBuf>) -> Self {
        self.wal_path = Some(path.into());
        self
    }

    /// Convenience: a configuration with the given WAL sync policy.
    pub fn with_wal_sync(mut self, policy: SyncPolicy) -> Self {
        self.wal_sync = policy;
        self
    }

    /// Convenience: a configuration with the given columnar tail-compaction
    /// threshold (`0` disables compaction).
    pub fn with_tail_compaction_rows(mut self, rows: usize) -> Self {
        self.tail_compaction_rows = rows;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_horizontal() {
        let c = CjoinConfig::default();
        c.validate().unwrap();
        assert_eq!(c.stage_layout, StageLayout::Horizontal);
        assert!(
            c.max_concurrency >= 256,
            "paper evaluates up to 256 queries"
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(CjoinConfig {
            max_concurrency: 0,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            worker_threads: 0,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            batch_size: 0,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            queue_capacity: 0,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            distributor_shards: 0,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            distributor_shards: 257,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            scan_workers: 0,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            scan_workers: 65,
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            stage_layout: StageLayout::Hybrid(vec![]),
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            stage_layout: StageLayout::Hybrid(vec![2, 0]),
            ..CjoinConfig::default()
        }
        .validate()
        .is_err());
        assert!(CjoinConfig {
            stage_layout: StageLayout::Hybrid(vec![2, 2]),
            ..CjoinConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn builder_style_setters() {
        let c = CjoinConfig::default()
            .with_worker_threads(2)
            .with_max_concurrency(64)
            .with_batch_size(128)
            .with_stage_layout(StageLayout::Vertical)
            .with_batched_probing(false)
            .with_distributor_shards(4)
            .with_scan_workers(2);
        assert_eq!(c.worker_threads, 2);
        assert_eq!(c.max_concurrency, 64);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.stage_layout, StageLayout::Vertical);
        assert!(!c.batched_probing);
        assert_eq!(c.distributor_shards, 4);
        assert_eq!(c.scan_workers, 2);
        c.validate().unwrap();
    }

    #[test]
    fn batched_probing_defaults_on() {
        assert!(CjoinConfig::default().batched_probing);
    }

    #[test]
    fn distributor_defaults_to_a_single_shard() {
        assert_eq!(CjoinConfig::default().distributor_shards, 1);
    }

    #[test]
    fn scan_defaults_to_the_classic_single_worker() {
        assert_eq!(CjoinConfig::default().scan_workers, 1);
    }

    #[test]
    fn columnar_scan_defaults_off_and_builds() {
        assert!(!CjoinConfig::default().columnar_scan);
        let c = CjoinConfig::default().with_columnar_scan(true);
        assert!(c.columnar_scan);
        c.validate().unwrap();
    }

    #[test]
    fn auto_tune_defaults_on_with_no_pins() {
        let c = CjoinConfig::default();
        assert!(c.auto_tune);
        assert_eq!(c.pinned, PinnedAxes::default());
        assert!(!c.with_auto_tune(false).auto_tune);
    }

    #[test]
    fn builders_pin_their_axes() {
        // Pinning is about *explicitness*, not the value: re-stating a default
        // still pins the axis against the scheduler.
        let c = CjoinConfig::default().with_scan_workers(1);
        assert!(c.pinned.scan_workers);
        assert!(!c.pinned.worker_threads && !c.pinned.distributor_shards);
        let c = CjoinConfig::default()
            .with_worker_threads(4)
            .with_distributor_shards(1);
        assert!(c.pinned.worker_threads && c.pinned.distributor_shards);
        assert!(!c.pinned.scan_workers);
        let c = CjoinConfig::default().with_stage_layout(StageLayout::Vertical);
        assert!(c.pinned.worker_threads);
    }

    #[test]
    fn durability_defaults_off_with_group_commit_sync() {
        let c = CjoinConfig::default();
        assert!(c.wal_path.is_none());
        assert_eq!(c.wal_sync, SyncPolicy::OnCommit);
        assert_eq!(c.tail_compaction_rows, 8192);
        let c = c
            .with_wal("/tmp/cjoin.wal")
            .with_wal_sync(SyncPolicy::EveryRecord)
            .with_tail_compaction_rows(0);
        assert_eq!(
            c.wal_path.as_deref(),
            Some(std::path::Path::new("/tmp/cjoin.wal"))
        );
        assert_eq!(c.wal_sync, SyncPolicy::EveryRecord);
        assert_eq!(c.tail_compaction_rows, 0);
        c.validate().unwrap();
    }

    #[test]
    fn supervision_defaults_on_with_no_fault_plan() {
        let c = CjoinConfig::default();
        assert!(c.supervision);
        assert!(c.fault_plan.is_none());
        let plan = FaultPlan::seeded(1).build();
        let c = c.with_supervision(false).with_fault_plan(Arc::clone(&plan));
        assert!(!c.supervision);
        assert!(c.fault_plan.is_some());
        c.validate().unwrap();
    }
}
