//! Dimension hash tables (§3.2.1).
//!
//! Each dimension table `Dj` referenced by at least one in-flight query is mapped to
//! a [`DimensionTable`]: a hash table keyed by the dimension's primary key that
//! stores the **union** of the dimension tuples selected by any registered query.
//! Every stored tuple carries a query bit-vector `bδ` (`bδ[i] = 1` iff query `i`
//! selects the tuple, or does not reference `Dj` at all), and the table keeps one
//! complement bitmap `bDj` (`bDj[i] = 1` iff query `i` does **not** reference `Dj`) —
//! the bit-vector implicitly associated with every dimension tuple *not* present in
//! the hash table.
//!
//! The filtering step (§3.2.2) is therefore: probe by foreign key; if found, AND the
//! fact tuple's bit-vector with the entry's `bδ`, otherwise with `bDj`.
//!
//! ## Snapshot-versioned entries (PR 10)
//!
//! Under durable ingestion a dimension row can be *upserted* while live queries
//! reference its old contents. Each key therefore maps to a small vector of
//! **content versions**: when a newly admitted query's snapshot selects a row whose
//! attribute values differ from every stored version of that key, a new version is
//! appended rather than overwriting — so a query admitted before the upsert keeps
//! joining against exactly the attribute values its snapshot selected, and a query
//! admitted after it sees only the new ones. A query's bit appears on **at most one
//! version per key** (the content its snapshot's `σ_cij(Dj)` returned); bits of
//! queries that do not reference the dimension ride on every version, which is
//! harmless because those queries never read the attached row. The single-version
//! case — by far the common one — takes the exact pre-versioning hot path; the
//! multi-version combine is in
//! [`FilterChain::process_batch`](crate::filter::FilterChain::process_batch).
//!
//! Concurrency: entries are inserted/removed only by the Pipeline Manager (query
//! admission and finalization, Algorithms 1 and 2) under a write lock, while Filter
//! workers probe under a read lock taken **once per batch per filter** via
//! [`DimensionTable::probe_batch`], which returns a [`ProbeGuard`]. The guard hands
//! out *borrowed* `&DimEntry` references — no per-tuple `Arc` clone on the probe
//! path — and its lifetime bounds every borrow, so an entry can never be observed
//! after the manager garbage-collects it: removal requires the write lock, which
//! cannot be acquired while any guard is alive. Bit flips on existing entries and on
//! the complement bitmap are atomic and require no lock, mirroring the paper's
//! argument that concurrent bit updates are safe because a query's bit only appears
//! in fact-tuple bit-vectors after the query is installed in the Preprocessor
//! (§3.3.1). Holding the read lock across a batch does not change Algorithm 1/2
//! semantics: the manager's writes simply serialize at batch boundaries instead of
//! tuple boundaries, and a Filter already applies one point-in-time table state to
//! each tuple it processes. (The legacy per-tuple [`DimensionTable::probe`] is kept
//! for the `batched_probing = false` ablation baseline.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard};

use cjoin_common::{AtomicQuerySet, FxHashMap, QueryId, QuerySet};
use cjoin_storage::{ColumnId, Row};

/// One stored dimension tuple with its query bit-vector.
#[derive(Debug)]
pub struct DimEntry {
    /// The dimension row (shared with in-flight fact tuples that join with it).
    pub row: Row,
    /// `bδ`: which queries select this tuple (or do not reference the dimension).
    pub bits: AtomicQuerySet,
}

/// Statistics of one Filter, used for run-time ordering (§3.4) and the experiments.
#[derive(Debug, Default)]
pub struct FilterStats {
    /// Fact tuples that entered this Filter with a non-zero bit-vector.
    pub tuples_in: AtomicU64,
    /// Fact tuples whose bit-vector became zero at this Filter (dropped).
    pub tuples_dropped: AtomicU64,
    /// Hash-table probes actually performed.
    pub probes: AtomicU64,
    /// Probes avoided by the early-skip optimisation.
    pub skips: AtomicU64,
}

impl FilterStats {
    /// Observed drop rate (dropped / in); 0 when no tuple has been seen.
    pub fn drop_rate(&self) -> f64 {
        let tuples_in = self.tuples_in.load(Ordering::Relaxed);
        if tuples_in == 0 {
            0.0
        } else {
            self.tuples_dropped.load(Ordering::Relaxed) as f64 / tuples_in as f64
        }
    }

    /// Snapshot of (in, dropped, probes, skips).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.tuples_in.load(Ordering::Relaxed),
            self.tuples_dropped.load(Ordering::Relaxed),
            self.probes.load(Ordering::Relaxed),
            self.skips.load(Ordering::Relaxed),
        )
    }

    /// Resets all counters (done after each reordering decision so the order tracks
    /// the current query mix rather than the whole history).
    pub fn reset(&self) {
        self.tuples_in.store(0, Ordering::Relaxed);
        self.tuples_dropped.store(0, Ordering::Relaxed);
        self.probes.store(0, Ordering::Relaxed);
        self.skips.store(0, Ordering::Relaxed);
    }
}

/// The shared hash table for one dimension table.
#[derive(Debug)]
pub struct DimensionTable {
    /// Name of the dimension table this filter covers.
    pub name: String,
    /// Dimension slot index: position in the in-flight tuple's `dims` vector where
    /// this filter attaches the joining dimension row.
    pub slot: usize,
    /// Fact-table column holding the foreign key into this dimension.
    pub fact_fk_column: ColumnId,
    /// Dimension column holding the primary key.
    pub dim_key_column: ColumnId,
    /// `bDj`: queries that do **not** reference this dimension.
    pub complement: AtomicQuerySet,
    /// Queries that **reference** this dimension (joined it at admission). Kept in
    /// addition to the complement because a referencing query whose predicate selects
    /// zero dimension rows leaves no trace in `entries` — yet its Filter must stay in
    /// the pipeline to clear the query's bit from every fact tuple.
    referencing: AtomicQuerySet,
    /// Content versions per key, oldest first (see the module docs on snapshot
    /// versioning). A key's vector is never empty while stored.
    entries: RwLock<FxHashMap<i64, Vec<Arc<DimEntry>>>>,
    /// Per-filter statistics.
    pub stats: FilterStats,
    max_concurrency: usize,
}

impl DimensionTable {
    /// Creates an empty dimension hash table.
    ///
    /// `initial_complement` must be the set of currently registered queries — none of
    /// them references this dimension (otherwise the table would already exist), so
    /// they all get a 1 in `bDj`.
    pub fn new(
        name: impl Into<String>,
        slot: usize,
        fact_fk_column: ColumnId,
        dim_key_column: ColumnId,
        max_concurrency: usize,
        initial_complement: &QuerySet,
    ) -> Self {
        let complement = AtomicQuerySet::new(max_concurrency);
        complement.store_from(initial_complement);
        Self {
            name: name.into(),
            slot,
            fact_fk_column,
            dim_key_column,
            complement,
            referencing: AtomicQuerySet::new(max_concurrency),
            entries: RwLock::new(FxHashMap::default()),
            stats: FilterStats::default(),
            max_concurrency,
        }
    }

    /// The `maxConc` this table was created for.
    pub fn max_concurrency(&self) -> usize {
        self.max_concurrency
    }

    /// Number of stored dimension tuples.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no dimension tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    // ------------------------------------------------------------------
    // Admission / finalization (Pipeline Manager side)
    // ------------------------------------------------------------------

    /// Registers that query `id` **references** this dimension and selects `rows`
    /// (the result of `σ_cij(Dj)`, Algorithm 1 lines 11–16).
    ///
    /// `rows` were selected at the query's snapshot: if a stored version of a key
    /// carries identical contents the query shares it, otherwise a new content
    /// version is appended (the key was upserted between the two queries'
    /// snapshots) — never overwritten, so concurrent queries each keep joining
    /// against the attribute values their own snapshot selected.
    pub fn register_query(&self, id: QueryId, rows: &[(i64, Row)]) {
        // The query references Dj, so it must not be in the complement bitmap.
        self.complement.unset(id.index());
        self.referencing.set(id.index());
        let mut entries = self.entries.write();
        for (key, row) in rows {
            let versions = entries.entry(*key).or_default();
            match versions.iter().find(|v| v.row == *row) {
                Some(version) => version.bits.set(id.index()),
                None => {
                    // New version: bits start as bDj (queries that ignore this
                    // dimension accept every version), plus the registering
                    // query's bit. Referencing queries' bits never leak in:
                    // the complement holds only non-referencing queries.
                    let bits = self.complement.clone();
                    bits.set(id.index());
                    versions.push(Arc::new(DimEntry {
                        row: row.clone(),
                        bits,
                    }));
                }
            }
        }
    }

    /// Registers that query `id` does **not** reference this dimension
    /// (Algorithm 1 line 10): every tuple of `Dj` is implicitly acceptable to it.
    pub fn register_unreferencing_query(&self, id: QueryId) {
        self.complement.set(id.index());
        // Existing entries (every version of every key) must also accept the query,
        // otherwise fact tuples joining with a stored dimension tuple would wrongly
        // drop the query's bit.
        let entries = self.entries.read();
        for versions in entries.values() {
            for entry in versions {
                entry.bits.set(id.index());
            }
        }
    }

    /// Removes query `id` from this dimension table (Algorithm 2). Entries whose
    /// bit-vector becomes empty are garbage-collected. Returns `true` if the Filter
    /// can be removed from the pipeline: no stored entries *and* no live query
    /// references the dimension. The second condition matters when a referencing
    /// query's predicate selected zero dimension rows — its hash-table footprint is
    /// empty but its Filter must keep clearing the query's bit from fact tuples
    /// until the query finishes.
    ///
    /// The freed id's bit is cleared everywhere — in the complement bitmap *and* in
    /// every stored entry — so that entries inserted while the id is unused never
    /// inherit it and a later query reusing the id starts from a clean slate.
    /// (The paper's Algorithm 2 sets `bDj[n] = 1` instead, treating a freed id as
    /// "does not reference"; that convention leaks the bit into entries inserted
    /// before the id is reused by a query that *does* reference the dimension, so we
    /// use the all-zero convention — equivalent while the id is unused, because no
    /// fact tuple carries the bit, and safe at reuse.)
    pub fn unregister_query(&self, id: QueryId, referenced: bool) -> bool {
        self.complement.unset(id.index());
        if referenced {
            self.referencing.unset(id.index());
        }
        let mut entries = self.entries.write();
        // Clear the id's bit from every version of every key (a referencing query
        // set it on at most one version per key; an unreferencing query set it on
        // all of them) and garbage-collect versions — and keys — left with no bits.
        entries.retain(|_, versions| {
            versions.retain(|entry| {
                entry.bits.unset(id.index());
                !entry.bits.is_empty()
            });
            !versions.is_empty()
        });
        entries.is_empty() && self.referencing.is_empty()
    }

    /// Number of live queries that reference this dimension (diagnostics/tests).
    pub fn referencing_queries(&self) -> usize {
        self.referencing.count()
    }

    // ------------------------------------------------------------------
    // Probe (Filter worker side)
    // ------------------------------------------------------------------

    /// Probes the table for `key` and returns the matching entry, if present.
    ///
    /// This is the **per-tuple** probe: it takes the entries read lock and clones an
    /// `Arc` for every call. The batched hot path uses
    /// [`DimensionTable::probe_batch`] instead, which amortises the lock over a whole
    /// batch and borrows entries without cloning; this method remains as the
    /// `batched_probing = false` ablation baseline and for point lookups in tests.
    ///
    /// The caller combines the fact tuple's bit-vector with the entry's `bδ` (hit) or
    /// with [`DimensionTable::complement`] (miss) — see
    /// [`FilterChain::process_batch`](crate::filter::FilterChain::process_batch).
    ///
    /// Returns the **newest** content version of the key; point lookups that must
    /// see all versions use [`DimensionTable::probe_versions`].
    #[inline]
    pub fn probe(&self, key: i64) -> Option<Arc<DimEntry>> {
        self.entries
            .read()
            .get(&key)
            .and_then(|v| v.last().cloned())
    }

    /// Returns every stored content version of `key`, oldest first (empty on a
    /// miss). The per-tuple filter baseline uses this; the batched hot path
    /// borrows the versions through [`DimensionTable::probe_batch`] instead.
    #[inline]
    pub fn probe_versions(&self, key: i64) -> Vec<Arc<DimEntry>> {
        self.entries.read().get(&key).cloned().unwrap_or_default()
    }

    /// Number of stored content versions for `key` (diagnostics / tests).
    pub fn version_count(&self, key: i64) -> usize {
        self.entries.read().get(&key).map_or(0, Vec::len)
    }

    /// Acquires the entries read lock **once** and returns a [`ProbeGuard`] for
    /// probing an entire batch of fact tuples against this table.
    ///
    /// While the guard is alive the Pipeline Manager's structural mutations
    /// (`register_query` inserts, `unregister_query` garbage collection) block on
    /// the write lock — they proceed between batches, exactly the granularity the
    /// paper's batch-amortised synchronisation argument (§4) calls for. Atomic bit
    /// flips on entries and on the complement bitmap are *not* blocked, so
    /// `register_unreferencing_query` and admission-time bit updates still interleave
    /// with probes, preserving Algorithm 1/2 semantics.
    #[inline]
    pub fn probe_batch(&self) -> ProbeGuard<'_> {
        ProbeGuard {
            entries: self.entries.read(),
        }
    }

    /// Returns a point-in-time snapshot of the newest version's bit-vector (test
    /// helper).
    pub fn entry_bits(&self, key: i64) -> Option<QuerySet> {
        self.entries
            .read()
            .get(&key)
            .and_then(|v| v.last())
            .map(|e| e.bits.snapshot())
    }
}

/// A read guard over a dimension table's entries, held for the duration of one
/// batch-probe pass (see [`DimensionTable::probe_batch`]).
///
/// Lookups return `&DimEntry` borrows bounded by the guard's lifetime instead of
/// cloning the entry `Arc` per tuple — the per-probe cost is one hash lookup, with
/// zero reference-count traffic and zero lock operations.
pub struct ProbeGuard<'a> {
    entries: RwLockReadGuard<'a, FxHashMap<i64, Vec<Arc<DimEntry>>>>,
}

impl ProbeGuard<'_> {
    /// Looks up the content versions stored for `key`, oldest first, without
    /// cloning. The slice is non-empty on a hit; in the overwhelmingly common
    /// single-version case it has length 1.
    #[inline]
    pub fn get(&self, key: i64) -> Option<&[Arc<DimEntry>]> {
        self.entries.get(&key).map(Vec::as_slice)
    }

    /// Number of stored entries visible to this guard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the guarded table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_storage::Value;

    fn row(key: i64, name: &str) -> Row {
        Row::new(vec![Value::int(key), Value::str(name)])
    }

    fn table_with_no_queries() -> DimensionTable {
        DimensionTable::new("color", 0, 1, 0, 8, &QuerySet::new(8))
    }

    #[test]
    fn register_query_inserts_selected_rows() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red")), (2, row(2, "green"))]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(t.entry_bits(1).unwrap().get(0));
        assert!(!t.entry_bits(1).unwrap().get(1));
        assert!(t.probe(3).is_none());
        assert!(
            !t.complement.get(0),
            "registering query references the dimension"
        );
    }

    #[test]
    fn second_query_shares_existing_entries() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red")), (2, row(2, "green"))]);
        t.register_query(QueryId(1), &[(2, row(2, "green")), (3, row(3, "blue"))]);
        assert_eq!(t.len(), 3, "union of both selections");
        let bits2 = t.entry_bits(2).unwrap();
        assert!(
            bits2.get(0) && bits2.get(1),
            "tuple 2 selected by both queries"
        );
        let bits1 = t.entry_bits(1).unwrap();
        assert!(bits1.get(0) && !bits1.get(1));
        let bits3 = t.entry_bits(3).unwrap();
        assert!(!bits3.get(0) && bits3.get(1));
    }

    #[test]
    fn unreferencing_query_accepts_all_tuples() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.register_unreferencing_query(QueryId(1));
        assert!(t.complement.get(1));
        assert!(!t.complement.get(0));
        // Existing entry must also carry query 1's bit.
        let bits = t.entry_bits(1).unwrap();
        assert!(bits.get(0) && bits.get(1));
        // New entries inserted later also carry it (they clone the complement).
        t.register_query(QueryId(2), &[(5, row(5, "cyan"))]);
        let bits5 = t.entry_bits(5).unwrap();
        assert!(
            bits5.get(1),
            "query 1 ignores the dimension, accepts tuple 5"
        );
        assert!(bits5.get(2));
        assert!(
            !bits5.get(0),
            "query 0 references the dimension but did not select tuple 5"
        );
    }

    #[test]
    fn new_entry_bits_follow_paper_initialisation() {
        // Paper: bδ ← bDj; bδ[n] ← 1.
        let t = table_with_no_queries();
        t.register_unreferencing_query(QueryId(3));
        t.register_query(QueryId(4), &[(9, row(9, "x"))]);
        let bits = t.entry_bits(9).unwrap();
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn unregister_referenced_query_garbage_collects() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red")), (2, row(2, "green"))]);
        t.register_query(QueryId(1), &[(2, row(2, "green"))]);
        let empty = t.unregister_query(QueryId(0), true);
        assert!(!empty);
        assert_eq!(
            t.len(),
            1,
            "tuple 1 had only query 0's bit and is collected"
        );
        assert!(t.probe(1).is_none());
        assert!(t.probe(2).is_some());
        assert!(!t.complement.get(0), "freed ids are cleared everywhere");

        let empty = t.unregister_query(QueryId(1), true);
        assert!(empty);
        assert!(t.is_empty());
    }

    #[test]
    fn unregister_unreferencing_query_clears_its_bits() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.register_unreferencing_query(QueryId(1));
        assert!(t.entry_bits(1).unwrap().get(1));
        t.unregister_query(QueryId(1), false);
        assert!(!t.entry_bits(1).unwrap().get(1));
        assert!(
            !t.complement.get(1),
            "freed ids are cleared from the complement too"
        );
        assert_eq!(t.len(), 1, "entry still selected by query 0");
    }

    #[test]
    fn id_reuse_does_not_inherit_stale_bits() {
        // Regression: query 0 finishes, another query inserts new entries while id 0
        // is free, then a new query reuses id 0 and references the dimension. The
        // interim entries must NOT carry bit 0.
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.unregister_query(QueryId(0), true);
        // Interim admission by another query while id 0 is unused.
        t.register_query(QueryId(1), &[(2, row(2, "green"))]);
        assert!(
            !t.entry_bits(2).unwrap().get(0),
            "free id must not appear on new entries"
        );
        // Id 0 is reused by a query selecting only key 3.
        t.register_query(QueryId(0), &[(3, row(3, "blue"))]);
        assert!(
            !t.entry_bits(2).unwrap().get(0),
            "reused id must not select unrelated entries"
        );
        assert!(t.entry_bits(3).unwrap().get(0));
    }

    #[test]
    fn empty_selection_keeps_the_filter_alive() {
        // Regression: query 1's predicate selects zero dimension rows. When query 0
        // (whose entries were the table's whole content) finishes first, the table's
        // hash map empties — but the Filter must NOT become removable, or query 1's
        // bit would never be cleared from fact tuples and its result would contain
        // rows instead of being empty.
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.register_query(QueryId(1), &[]); // predicate matched nothing
        assert_eq!(t.referencing_queries(), 2);
        let removable = t.unregister_query(QueryId(0), true);
        assert!(!removable, "query 1 still references the dimension");
        assert!(t.is_empty(), "hash table itself is empty");
        // Probing any key misses and the complement lacks bit 1, so the Filter
        // clears query 1's bit — exactly why it has to stay.
        assert!(t.probe(1).is_none());
        assert!(!t.complement.get(1));
        let removable = t.unregister_query(QueryId(1), true);
        assert!(removable, "last referencing query gone");
    }

    #[test]
    fn probe_returns_shared_entry() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        let a = t.probe(1).unwrap();
        let b = t.probe(1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.row.get(1).as_str().unwrap(), "red");
    }

    #[test]
    fn probe_batch_borrows_entries_without_cloning() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red")), (2, row(2, "green"))]);
        let guard = t.probe_batch();
        assert_eq!(guard.len(), 2);
        assert!(!guard.is_empty());
        let a = &guard.get(1).unwrap()[0];
        let b = &guard.get(1).unwrap()[0];
        assert!(Arc::ptr_eq(a, b), "borrows of the same entry alias");
        assert_eq!(a.row.get(1).as_str().unwrap(), "red");
        assert!(guard.get(99).is_none());
        // Atomic bit updates are visible through the guard (no lock needed for them).
        t.register_unreferencing_query(QueryId(3));
        assert!(guard.get(2).unwrap()[0].bits.get(3));
    }

    #[test]
    fn probe_batch_guard_blocks_structural_writes_until_dropped() {
        use std::sync::Arc as StdArc;
        let t = StdArc::new(table_with_no_queries());
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        let guard = t.probe_batch();
        let writer = {
            let t = StdArc::clone(&t);
            std::thread::spawn(move || {
                // Blocks until the guard is dropped, then garbage-collects entry 1.
                t.unregister_query(QueryId(0), true)
            })
        };
        // The entry stays valid for the whole guard lifetime even though a removal
        // is pending on the write lock.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(guard.get(1).unwrap()[0].row.get(0).as_int().unwrap(), 1);
        drop(guard);
        assert!(
            writer.join().unwrap(),
            "table empties once the guard is gone"
        );
        assert!(t.probe_batch().is_empty());
    }

    #[test]
    fn changed_contents_create_a_second_version_instead_of_mixing() {
        // Regression for the PR 10 dimension-churn hazard: query 0 is admitted,
        // the row's attributes are upserted, then query 2 is admitted selecting
        // the NEW contents. Query 0 must keep joining against "red", query 2
        // against "crimson" — never a mix.
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.register_unreferencing_query(QueryId(1));
        t.register_query(QueryId(2), &[(1, row(1, "crimson"))]);
        assert_eq!(t.len(), 1, "one key");
        assert_eq!(t.version_count(1), 2, "two content versions");
        let guard = t.probe_batch();
        let versions = guard.get(1).unwrap();
        assert_eq!(versions[0].row.get(1).as_str().unwrap(), "red");
        assert!(versions[0].bits.get(0) && !versions[0].bits.get(2));
        assert_eq!(versions[1].row.get(1).as_str().unwrap(), "crimson");
        assert!(versions[1].bits.get(2) && !versions[1].bits.get(0));
        // The ignoring query's bit rides on every version.
        assert!(versions[0].bits.get(1) && versions[1].bits.get(1));
        drop(guard);
        // probe() returns the newest version.
        assert_eq!(t.probe(1).unwrap().row.get(1).as_str().unwrap(), "crimson");
    }

    #[test]
    fn identical_contents_share_a_version_across_queries() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.register_query(QueryId(2), &[(1, row(1, "red"))]);
        assert_eq!(t.version_count(1), 1, "same contents, shared version");
        let bits = t.entry_bits(1).unwrap();
        assert!(bits.get(0) && bits.get(2));
    }

    #[test]
    fn stale_versions_are_garbage_collected_with_their_last_query() {
        let t = table_with_no_queries();
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        t.register_query(QueryId(2), &[(1, row(1, "crimson"))]);
        assert_eq!(t.version_count(1), 2);
        assert!(!t.unregister_query(QueryId(0), true));
        assert_eq!(t.version_count(1), 1, "old version collected with query 0");
        assert_eq!(t.probe(1).unwrap().row.get(1).as_str().unwrap(), "crimson");
        assert!(t.unregister_query(QueryId(2), true));
        assert!(t.is_empty());
    }

    #[test]
    fn filter_stats_drop_rate_and_reset() {
        let s = FilterStats::default();
        assert_eq!(s.drop_rate(), 0.0);
        s.tuples_in.store(100, Ordering::Relaxed);
        s.tuples_dropped.store(25, Ordering::Relaxed);
        s.probes.store(80, Ordering::Relaxed);
        s.skips.store(20, Ordering::Relaxed);
        assert!((s.drop_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.snapshot(), (100, 25, 80, 20));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }

    #[test]
    fn metadata_accessors() {
        let t = DimensionTable::new("part", 3, 5, 0, 16, &QuerySet::from_bits(16, [2]));
        assert_eq!(t.name, "part");
        assert_eq!(t.slot, 3);
        assert_eq!(t.fact_fk_column, 5);
        assert_eq!(t.dim_key_column, 0);
        assert_eq!(t.max_concurrency(), 16);
        assert!(
            t.complement.get(2),
            "pre-existing query 2 does not reference 'part'"
        );
    }

    #[test]
    fn concurrent_probes_and_registrations() {
        use std::sync::Arc as StdArc;
        let t = StdArc::new(table_with_no_queries());
        t.register_query(QueryId(0), &[(1, row(1, "red"))]);
        let probers: Vec<_> = (0..4)
            .map(|_| {
                let t = StdArc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _ = t.probe(1);
                        let _ = t.probe(999);
                    }
                })
            })
            .collect();
        let writer = {
            let t = StdArc::clone(&t);
            std::thread::spawn(move || {
                for i in 1..5u32 {
                    t.register_query(
                        QueryId(i),
                        &[(i64::from(i) + 10, row(i64::from(i) + 10, "x"))],
                    );
                }
            })
        };
        for p in probers {
            p.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(t.len(), 5);
    }
}
