//! Deterministic fault injection for supervision tests.
//!
//! A [`FaultPlan`] is a seeded, declarative schedule of faults — panics at
//! named pipeline sites, artificial queue delays, and corrupted columnar row
//! groups — attached to a [`CjoinConfig`](crate::config::CjoinConfig) before
//! the engine starts. The plan is deliberately *deterministic*: the same seed
//! and builder calls produce the same fault at the same site event count every
//! run, so a failing supervision test replays exactly.
//!
//! Cost when disabled: the config carries `Option<Arc<FaultPlan>>` defaulting
//! to `None`, and every injection point is a single branch on that `None`
//! ([`inject`]). No atomics are touched and nothing is allocated on the hot
//! path unless a plan is installed — this is what the supervision off/on
//! benchmark A/B (BENCH_PR7.json) measures.
//!
//! Each scheduled panic fires **exactly once** per plan (a fired latch), at the
//! first site event whose ordinal reaches the seed-derived trigger. Delays fire
//! on every event at their site. Corrupted row groups are applied by the engine
//! to its columnar replica at build time, so the per-group checksums
//! ([`cjoin_storage::ColumnarTable::verify_group`]) catch real corruption, not
//! a simulated flag.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A named pipeline site where faults can be injected.
///
/// One variant per supervised role kind; the injection hook sits inside the
/// role's main loop, so a scheduled panic exercises exactly the thread-death
/// path the supervisor must recover from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A segment scan worker (or the classic single-threaded Preprocessor).
    ScanWorker,
    /// The scan admission coordinator.
    ScanCoordinator,
    /// A filter Stage worker.
    StageWorker,
    /// The distributor shard router.
    ShardRouter,
    /// A distributor aggregation shard (or the classic single Distributor).
    DistributorShard,
    /// The end-of-query merge barrier.
    ShardMerger,
    /// A WAL record append on the durable ingestion path.
    WalAppend,
    /// A WAL fsync (commit-marker durability point).
    WalSync,
    /// WAL replay during engine-start crash recovery.
    WalReplay,
}

impl FaultSite {
    /// All sites, for matrix tests.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::ScanWorker,
        FaultSite::ScanCoordinator,
        FaultSite::StageWorker,
        FaultSite::ShardRouter,
        FaultSite::DistributorShard,
        FaultSite::ShardMerger,
        FaultSite::WalAppend,
        FaultSite::WalSync,
        FaultSite::WalReplay,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::ScanWorker => 0,
            FaultSite::ScanCoordinator => 1,
            FaultSite::StageWorker => 2,
            FaultSite::ShardRouter => 3,
            FaultSite::DistributorShard => 4,
            FaultSite::ShardMerger => 5,
            FaultSite::WalAppend => 6,
            FaultSite::WalSync => 7,
            FaultSite::WalReplay => 8,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::ScanWorker => "scan-worker",
            FaultSite::ScanCoordinator => "scan-coordinator",
            FaultSite::StageWorker => "stage-worker",
            FaultSite::ShardRouter => "shard-router",
            FaultSite::DistributorShard => "distributor-shard",
            FaultSite::ShardMerger => "shard-merger",
            FaultSite::WalAppend => "wal-append",
            FaultSite::WalSync => "wal-sync",
            FaultSite::WalReplay => "wal-replay",
        };
        f.write_str(name)
    }
}

#[derive(Debug)]
struct PanicSpec {
    site: FaultSite,
    /// Site event ordinal at (or after) which the panic fires.
    at_event: u64,
    fired: AtomicBool,
}

#[derive(Debug, Clone, Copy)]
struct DelaySpec {
    site: FaultSite,
    delay: Duration,
}

/// A seeded, declarative fault schedule (see the module docs).
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    panics: Vec<PanicSpec>,
    delays: Vec<DelaySpec>,
    corrupt_groups: Vec<usize>,
    /// WAL-append ordinals at which the engine tears the log (truncates the
    /// record mid-write) and simulates a crash. One-shot each.
    torn_writes: Vec<(u64, AtomicBool)>,
    /// Absolute WAL byte offsets the engine silently bit-flips after its next
    /// commit — surfaces only at replay, as a checksum mismatch.
    byte_flips: Vec<u64>,
    hits: [AtomicU64; 9],
}

/// Plans are compared by their *schedule* (seed + declared faults), ignoring
/// runtime hit counts, so [`CjoinConfig`](crate::config::CjoinConfig) can keep
/// deriving `PartialEq`.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.corrupt_groups == other.corrupt_groups
            && self.byte_flips == other.byte_flips
            && self.torn_writes.len() == other.torn_writes.len()
            && self
                .torn_writes
                .iter()
                .zip(&other.torn_writes)
                .all(|(a, b)| a.0 == b.0)
            && self.panics.len() == other.panics.len()
            && self
                .panics
                .iter()
                .zip(&other.panics)
                .all(|(a, b)| a.site == b.site && a.at_event == b.at_event)
            && self.delays.len() == other.delays.len()
            && self
                .delays
                .iter()
                .zip(&other.delays)
                .all(|(a, b)| a.site == b.site && a.delay == b.delay)
    }
}

impl FaultPlan {
    /// Starts an empty plan whose trigger ordinals derive from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Schedules one panic at `site`, firing at a seed-derived early event
    /// ordinal (so different seeds exercise slightly different interleavings).
    pub fn panic_at(self, site: FaultSite) -> Self {
        // Keep the trigger small: the matrix tests want the fault to land while
        // queries are in flight, not after thousands of idle loop iterations.
        let at_event = self.seed % 4;
        self.panic_at_event(site, at_event)
    }

    /// Schedules one panic at `site`, firing at the first event whose ordinal
    /// is `>= at_event`.
    pub fn panic_at_event(mut self, site: FaultSite, at_event: u64) -> Self {
        self.panics.push(PanicSpec {
            site,
            at_event,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds `micros` of sleep to every event at `site` (queue-delay fault).
    pub fn delay(mut self, site: FaultSite, micros: u64) -> Self {
        self.delays.push(DelaySpec {
            site,
            delay: Duration::from_micros(micros),
        });
        self
    }

    /// Marks columnar row group `group` for bit-flip corruption at engine
    /// build time (checksum-quarantine fault).
    pub fn corrupt_row_group(mut self, group: usize) -> Self {
        self.corrupt_groups.push(group);
        self
    }

    /// Schedules a torn write: at the `at_append`-th WAL append (0-based, as
    /// counted by the [`FaultSite::WalAppend`] hit ordinal), the engine
    /// truncates the log mid-record and simulates a crash of the ingest
    /// session. One-shot, like scheduled panics.
    pub fn torn_write_at(mut self, at_append: u64) -> Self {
        self.torn_writes.push((at_append, AtomicBool::new(false)));
        self
    }

    /// Schedules a silent bit-flip of the WAL byte at `offset`, applied by the
    /// engine after its next durable commit. The corruption is *not* detected
    /// at write time — that is the point: it must surface at replay as a
    /// checksum-mismatch truncation.
    pub fn flip_wal_byte(mut self, offset: u64) -> Self {
        self.byte_flips.push(offset);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Row groups the engine must corrupt in its columnar replica.
    pub fn corrupt_groups(&self) -> &[usize] {
        &self.corrupt_groups
    }

    /// The plan's seed (diagnostics).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events observed at `site` so far (test introspection).
    pub fn hits(&self, site: FaultSite) -> u64 {
        self.hits[site.index()].load(Ordering::Relaxed)
    }

    /// Consumes (one-shot) a scheduled torn write due at WAL-append ordinal
    /// `event`. The engine calls this with the current
    /// [`FaultSite::WalAppend`] hit count; a `true` return means: tear the log
    /// now and simulate the crash.
    pub fn take_torn_write(&self, event: u64) -> bool {
        self.torn_writes
            .iter()
            .any(|(at, fired)| event >= *at && !fired.swap(true, Ordering::AcqRel))
    }

    /// WAL byte offsets scheduled for silent bit-flips.
    pub fn wal_byte_flips(&self) -> &[u64] {
        &self.byte_flips
    }

    /// Records one event at `site`: applies scheduled delays, then panics if an
    /// unfired panic's trigger ordinal has been reached.
    ///
    /// # Panics
    /// By design — this is the injection point the supervisor recovers from.
    pub fn hit(&self, site: FaultSite) {
        let event = self.hits[site.index()].fetch_add(1, Ordering::Relaxed);
        for d in &self.delays {
            if d.site == site {
                std::thread::sleep(d.delay);
            }
        }
        for p in &self.panics {
            if p.site == site && event >= p.at_event && !p.fired.swap(true, Ordering::AcqRel) {
                panic!(
                    "injected fault at {site} (event {event}, seed {})",
                    self.seed
                );
            }
        }
    }
}

/// The zero-cost-when-disabled injection hook: a single branch on `None`.
///
/// # Panics
/// Propagates a scheduled [`FaultPlan::hit`] panic.
#[inline]
pub fn inject(plan: &Option<Arc<FaultPlan>>, site: FaultSite) {
    if let Some(plan) = plan {
        plan.hit(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fires_exactly_once_at_seeded_event() {
        let plan = FaultPlan::seeded(7)
            .panic_at(FaultSite::ShardRouter)
            .build();
        // seed 7 -> trigger at event 3.
        for _ in 0..3 {
            plan.hit(FaultSite::ShardRouter);
        }
        let p = plan.clone();
        let err = std::panic::catch_unwind(move || p.hit(FaultSite::ShardRouter)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shard-router"), "{msg}");
        // The latch prevents a second panic at the same site.
        plan.hit(FaultSite::ShardRouter);
        assert_eq!(plan.hits(FaultSite::ShardRouter), 5);
    }

    #[test]
    fn sites_are_independent_and_unplanned_sites_are_free() {
        let plan = FaultPlan::seeded(0).panic_at(FaultSite::ScanWorker).build();
        for _ in 0..100 {
            plan.hit(FaultSite::DistributorShard);
        }
        assert_eq!(plan.hits(FaultSite::DistributorShard), 100);
        assert!(std::panic::catch_unwind(move || plan.hit(FaultSite::ScanWorker)).is_err());
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        inject(&None, FaultSite::ShardMerger);
        let plan = FaultPlan::seeded(1).build();
        inject(&Some(Arc::clone(&plan)), FaultSite::ShardMerger);
        assert_eq!(plan.hits(FaultSite::ShardMerger), 1);
    }

    #[test]
    fn plans_compare_by_schedule_not_runtime_state() {
        let a = FaultPlan::seeded(3).panic_at(FaultSite::StageWorker);
        let b = FaultPlan::seeded(3).panic_at(FaultSite::StageWorker);
        a.hit(FaultSite::ShardMerger);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(4).panic_at(FaultSite::StageWorker);
        assert_ne!(a, c);
    }

    #[test]
    fn wal_sites_are_injectable_and_displayed() {
        assert_eq!(FaultSite::ALL.len(), 9);
        let plan = FaultPlan::seeded(0).panic_at(FaultSite::WalSync).build();
        plan.hit(FaultSite::WalAppend);
        plan.hit(FaultSite::WalReplay);
        assert_eq!(plan.hits(FaultSite::WalAppend), 1);
        assert_eq!(plan.hits(FaultSite::WalReplay), 1);
        assert_eq!(FaultSite::WalAppend.to_string(), "wal-append");
        assert_eq!(FaultSite::WalSync.to_string(), "wal-sync");
        assert_eq!(FaultSite::WalReplay.to_string(), "wal-replay");
        assert!(std::panic::catch_unwind(move || plan.hit(FaultSite::WalSync)).is_err());
    }

    #[test]
    fn torn_writes_are_one_shot_and_byte_flips_recorded() {
        let plan = FaultPlan::seeded(0)
            .torn_write_at(2)
            .flip_wal_byte(17)
            .build();
        assert!(!plan.take_torn_write(0), "not due yet");
        assert!(!plan.take_torn_write(1));
        assert!(plan.take_torn_write(2), "due at its append ordinal");
        assert!(!plan.take_torn_write(3), "one-shot latch");
        assert_eq!(plan.wal_byte_flips(), &[17]);
        // Schedule equality ignores the fired latch.
        let a = FaultPlan::seeded(1).torn_write_at(5);
        let b = FaultPlan::seeded(1).torn_write_at(5);
        a.take_torn_write(5);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(1).torn_write_at(6));
    }

    #[test]
    fn delays_and_corruption_are_recorded() {
        let plan = FaultPlan::seeded(9)
            .delay(FaultSite::ScanCoordinator, 1)
            .corrupt_row_group(2)
            .corrupt_row_group(5)
            .build();
        plan.hit(FaultSite::ScanCoordinator);
        assert_eq!(plan.corrupt_groups(), &[2, 5]);
        assert_eq!(plan.seed(), 9);
    }
}
