//! Bounded queues linking pipeline threads.
//!
//! Tuples are handed between threads in batches (§4: "reduce the overhead of queue
//! synchronization by having each thread retrieve or deposit tuples in batches") over
//! bounded channels, which gives the pipeline natural back-pressure: a slow stage
//! blocks its producer instead of letting queues grow without bound.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendError, Sender};
use std::time::Duration;

use crate::tuple::Message;

/// Error returned by [`TupleQueue::recv_timeout`] when every sender has been
/// dropped (the pipeline is tearing down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// A bounded, multi-producer multi-consumer queue of pipeline messages.
#[derive(Debug, Clone)]
pub struct TupleQueue {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    capacity: usize,
}

impl TupleQueue {
    /// Creates a queue that holds at most `capacity` messages (batches).
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        Self {
            tx,
            rx,
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity in messages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Sends a message, blocking while the queue is full.
    ///
    /// # Errors
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, msg: Message) -> Result<(), SendError<Message>> {
        self.tx.send(msg)
    }

    /// Receives the next message, blocking up to `timeout`.
    ///
    /// Returns `Ok(None)` on timeout, and `Err(Disconnected)` when every sender
    /// has been dropped (the pipeline is tearing down).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, Disconnected> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Disconnected),
        }
    }

    /// Receives the next message, blocking indefinitely. Returns `None` when every
    /// sender has been dropped.
    pub fn recv(&self) -> Option<Message> {
        self.rx.recv().ok()
    }

    /// A clone of the sending half (e.g. for the Preprocessor to push control tuples
    /// directly to the Distributor's queue).
    pub fn sender(&self) -> Sender<Message> {
        self.tx.clone()
    }

    /// A clone of the receiving half (e.g. for each worker thread of a Stage).
    pub fn receiver(&self) -> Receiver<Message> {
        self.rx.clone()
    }
}

/// One bounded queue per Distributor shard.
///
/// Data batches are *routed* (each sub-batch goes to exactly one shard) while
/// control tuples are *broadcast* (every shard owns partial aggregation state for
/// every query, so each must observe the query's start and end). Because each
/// shard's queue is FIFO, a broadcast control tuple can never overtake — or be
/// overtaken by — data the router sent to that shard earlier or later.
///
/// `ShardQueues` is a construction-time handle: the engine hands each shard
/// worker its [`receiver`](TupleQueue::receiver), hands the router a sender-only
/// [`ShardSenders`], and then drops this struct — leaving each worker as the
/// *sole* receiver of its queue, so a dead shard surfaces to the router as a
/// send error instead of a silently blocked queue.
#[derive(Debug)]
pub struct ShardQueues {
    queues: Vec<TupleQueue>,
}

impl ShardQueues {
    /// Creates `shards` queues, each holding at most `capacity` messages.
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self {
            queues: (0..shards.max(1))
                .map(|_| TupleQueue::new(capacity))
                .collect(),
        }
    }

    /// Number of shard queues.
    pub fn num_shards(&self) -> usize {
        self.queues.len()
    }

    /// The queue feeding shard `shard`.
    pub fn shard(&self, shard: usize) -> &TupleQueue {
        &self.queues[shard]
    }

    /// The sending halves of every shard queue, for the router.
    pub fn senders(&self) -> ShardSenders {
        ShardSenders {
            txs: self.queues.iter().map(TupleQueue::sender).collect(),
        }
    }
}

/// The router's sender-only handle to the per-shard queues (see [`ShardQueues`]).
#[derive(Debug, Clone)]
pub struct ShardSenders {
    txs: Vec<Sender<Message>>,
}

impl ShardSenders {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.txs.len()
    }

    /// Sends a data message to one shard, blocking while its queue is full.
    ///
    /// # Errors
    /// Returns the message back if the shard's receiver has been dropped (the
    /// shard exited or died).
    pub fn send_to(&self, shard: usize, msg: Message) -> Result<(), SendError<Message>> {
        self.txs[shard].send(msg)
    }

    /// Broadcasts a control tuple to every shard (in shard order). Send errors are
    /// ignored: a dropped receiver means the shard is gone.
    pub fn broadcast_control(&self, control: &crate::tuple::ControlTuple) {
        for tx in &self.txs {
            let _ = tx.send(Message::Control(control.clone()));
        }
    }

    /// Broadcasts a shutdown message to every shard.
    pub fn broadcast_shutdown(&self) {
        for tx in &self.txs {
            let _ = tx.send(Message::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{ControlTuple, InFlightTuple};
    use cjoin_common::{QueryId, QuerySet};
    use cjoin_storage::{Row, RowId, Value};

    fn data_message(n: usize) -> Message {
        Message::Data(
            (0..n)
                .map(|i| {
                    InFlightTuple::new(
                        RowId(i as u64),
                        Row::new(vec![Value::int(i as i64)]),
                        QuerySet::new(4),
                        0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = TupleQueue::new(4);
        q.send(data_message(1)).unwrap();
        q.send(Message::Control(ControlTuple::QueryEnd(QueryId(7))))
            .unwrap();
        q.send(data_message(2)).unwrap();

        assert!(matches!(q.recv().unwrap(), Message::Data(b) if b.len() == 1));
        assert!(matches!(
            q.recv().unwrap(),
            Message::Control(ControlTuple::QueryEnd(QueryId(7)))
        ));
        assert!(matches!(q.recv().unwrap(), Message::Data(b) if b.len() == 2));
    }

    #[test]
    fn len_and_capacity() {
        let q = TupleQueue::new(3);
        assert_eq!(q.capacity(), 3);
        assert!(q.is_empty());
        q.send(data_message(1)).unwrap();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn recv_timeout_returns_none_when_empty() {
        let q = TupleQueue::new(2);
        let r = q.recv_timeout(Duration::from_millis(5)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn send_blocks_until_consumer_drains() {
        let q = TupleQueue::new(1);
        q.send(data_message(1)).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            // This send blocks until the main thread drains one message.
            q2.send(data_message(2)).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.len(), 1, "second send is still blocked");
        let _ = q.recv().unwrap();
        producer.join().unwrap();
        assert!(matches!(q.recv().unwrap(), Message::Data(b) if b.len() == 2));
    }

    #[test]
    fn shutdown_flows_through() {
        let q = TupleQueue::new(2);
        q.send(Message::Shutdown).unwrap();
        assert!(matches!(q.recv().unwrap(), Message::Shutdown));
    }

    #[test]
    fn shard_queues_broadcast_control_and_route_data() {
        let shards = ShardQueues::new(3, 4);
        let senders = shards.senders();
        assert_eq!(shards.num_shards(), 3);
        assert_eq!(senders.num_shards(), 3);
        senders.send_to(1, data_message(2)).unwrap();
        senders.broadcast_control(&ControlTuple::QueryEnd(QueryId(5)));
        senders.broadcast_shutdown();
        for s in 0..3 {
            if s == 1 {
                assert!(matches!(
                    shards.shard(s).recv().unwrap(),
                    Message::Data(b) if b.len() == 2
                ));
            }
            assert!(matches!(
                shards.shard(s).recv().unwrap(),
                Message::Control(ControlTuple::QueryEnd(QueryId(5)))
            ));
            assert!(matches!(shards.shard(s).recv().unwrap(), Message::Shutdown));
        }
    }

    #[test]
    fn shard_queues_preserve_per_shard_fifo_between_data_and_control() {
        let shards = ShardQueues::new(1, 4);
        let senders = shards.senders();
        senders.send_to(0, data_message(1)).unwrap();
        senders.broadcast_control(&ControlTuple::QueryEnd(QueryId(0)));
        senders.send_to(0, data_message(2)).unwrap();
        assert!(matches!(shards.shard(0).recv().unwrap(), Message::Data(b) if b.len() == 1));
        assert!(matches!(
            shards.shard(0).recv().unwrap(),
            Message::Control(ControlTuple::QueryEnd(QueryId(0)))
        ));
        assert!(matches!(shards.shard(0).recv().unwrap(), Message::Data(b) if b.len() == 2));
    }

    #[test]
    fn dropping_the_sole_receiver_makes_sends_fail() {
        // The failure mode the sender-only router handle exists for: once the shard
        // worker (sole receiver) is gone, the router must see an error, not block.
        let shards = ShardQueues::new(1, 1);
        let senders = shards.senders();
        let rx = shards.shard(0).receiver();
        drop(shards);
        drop(rx);
        assert!(senders.send_to(0, data_message(1)).is_err());
    }

    #[test]
    fn mpmc_usage_across_threads() {
        let q = TupleQueue::new(64);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        q.send(data_message(1)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut count = 0usize;
                    while let Ok(Some(_)) = q.recv_timeout(Duration::from_millis(100)) {
                        count += 1;
                    }
                    count
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    /// Documents a channel property the engine's failure handling depends on:
    /// messages already queued when the last receiver drops are RETAINED (kept
    /// alive by the remaining sender handles), not destroyed. Anything owned by
    /// a queued message — e.g. the ack sender inside an `Install` command —
    /// therefore never drops just because its consumer died, so waiting on such
    /// an ack must poll and probe (see `CjoinEngine::submit`) instead of
    /// relying on a disconnect error that will never come.
    #[test]
    fn queued_messages_survive_receiver_drop() {
        use crossbeam::channel::{unbounded, RecvTimeoutError};
        struct Payload(#[allow(dead_code)] Sender<()>);
        let (tx, rx) = unbounded::<Payload>();
        let (ack_tx, ack_rx) = crossbeam::channel::bounded::<()>(1);
        tx.send(Payload(ack_tx)).unwrap();
        drop(rx);
        // The queued payload (and the ack sender in it) is still alive: the ack
        // receiver times out instead of observing a disconnect.
        assert_eq!(
            ack_rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
