//! Bounded queues linking pipeline threads.
//!
//! Tuples are handed between threads in batches (§4: "reduce the overhead of queue
//! synchronization by having each thread retrieve or deposit tuples in batches") over
//! bounded channels, which gives the pipeline natural back-pressure: a slow stage
//! blocks its producer instead of letting queues grow without bound.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendError, Sender};
use std::time::Duration;

use crate::tuple::Message;

/// Error returned by [`TupleQueue::recv_timeout`] when every sender has been
/// dropped (the pipeline is tearing down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// A bounded, multi-producer multi-consumer queue of pipeline messages.
#[derive(Debug, Clone)]
pub struct TupleQueue {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    capacity: usize,
}

impl TupleQueue {
    /// Creates a queue that holds at most `capacity` messages (batches).
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        Self {
            tx,
            rx,
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity in messages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Sends a message, blocking while the queue is full.
    ///
    /// # Errors
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, msg: Message) -> Result<(), SendError<Message>> {
        self.tx.send(msg)
    }

    /// Receives the next message, blocking up to `timeout`.
    ///
    /// Returns `Ok(None)` on timeout, and `Err(Disconnected)` when every sender
    /// has been dropped (the pipeline is tearing down).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, Disconnected> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Disconnected),
        }
    }

    /// Receives the next message, blocking indefinitely. Returns `None` when every
    /// sender has been dropped.
    pub fn recv(&self) -> Option<Message> {
        self.rx.recv().ok()
    }

    /// A clone of the sending half (e.g. for the Preprocessor to push control tuples
    /// directly to the Distributor's queue).
    pub fn sender(&self) -> Sender<Message> {
        self.tx.clone()
    }

    /// A clone of the receiving half (e.g. for each worker thread of a Stage).
    pub fn receiver(&self) -> Receiver<Message> {
        self.rx.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{ControlTuple, InFlightTuple};
    use cjoin_common::{QueryId, QuerySet};
    use cjoin_storage::{Row, RowId, Value};

    fn data_message(n: usize) -> Message {
        Message::Data(
            (0..n)
                .map(|i| {
                    InFlightTuple::new(
                        RowId(i as u64),
                        Row::new(vec![Value::int(i as i64)]),
                        QuerySet::new(4),
                        0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = TupleQueue::new(4);
        q.send(data_message(1)).unwrap();
        q.send(Message::Control(ControlTuple::QueryEnd(QueryId(7))))
            .unwrap();
        q.send(data_message(2)).unwrap();

        assert!(matches!(q.recv().unwrap(), Message::Data(b) if b.len() == 1));
        assert!(matches!(
            q.recv().unwrap(),
            Message::Control(ControlTuple::QueryEnd(QueryId(7)))
        ));
        assert!(matches!(q.recv().unwrap(), Message::Data(b) if b.len() == 2));
    }

    #[test]
    fn len_and_capacity() {
        let q = TupleQueue::new(3);
        assert_eq!(q.capacity(), 3);
        assert!(q.is_empty());
        q.send(data_message(1)).unwrap();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn recv_timeout_returns_none_when_empty() {
        let q = TupleQueue::new(2);
        let r = q.recv_timeout(Duration::from_millis(5)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn send_blocks_until_consumer_drains() {
        let q = TupleQueue::new(1);
        q.send(data_message(1)).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            // This send blocks until the main thread drains one message.
            q2.send(data_message(2)).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.len(), 1, "second send is still blocked");
        let _ = q.recv().unwrap();
        producer.join().unwrap();
        assert!(matches!(q.recv().unwrap(), Message::Data(b) if b.len() == 2));
    }

    #[test]
    fn shutdown_flows_through() {
        let q = TupleQueue::new(2);
        q.send(Message::Shutdown).unwrap();
        assert!(matches!(q.recv().unwrap(), Message::Shutdown));
    }

    #[test]
    fn mpmc_usage_across_threads() {
        let q = TupleQueue::new(64);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        q.send(data_message(1)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut count = 0usize;
                    while let Ok(Some(_)) = q.recv_timeout(Duration::from_millis(100)) {
                        count += 1;
                    }
                    count
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
