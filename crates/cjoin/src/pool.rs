//! Pooled batch allocator.
//!
//! §4 notes that CJOIN "reduce[s] the cost of memory management synchronization by
//! using a specialized allocator for fact tuples": all in-flight tuple structures are
//! preallocated and recycled. The pool implements that in two layers:
//!
//! 1. **Batch recycling** — the Distributor returns spent batches to a lock-free
//!    pool and the Preprocessor reuses them, so the backing vectors circulate
//!    instead of being reallocated.
//! 2. **Tuple recycling** — a recycled batch keeps its [`InFlightTuple`]s as
//!    *spares* (see [`Batch::recycle`]): their per-tuple bit-vector words and
//!    dimension-slot vectors stay allocated and are reinitialised in place by
//!    [`InFlightTuple::reset`](crate::tuple::InFlightTuple::reset) on the next
//!    fill. After warm-up the steady-state scan path performs **zero per-tuple heap
//!    allocations** — the pool hit rate (see [`BatchPool::hits`]) and the engine's
//!    `tuples_allocated` / `tuples_recycled` counters make this observable.
//!
//! The pool is bounded by the number of batches that can be in flight at once,
//! which is itself bounded by the queue capacities.
//!
//! Concurrency: the pool is a lock-free MPMC queue; a batch is owned by exactly one
//! thread at any time (Preprocessor while filling, one Stage worker while
//! filtering, Distributor while draining), so its spare tuples need no
//! synchronisation — recycling only moves the batch's live watermark.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;

use crate::tuple::Batch;

/// A lock-free pool of reusable tuple batches.
#[derive(Debug)]
pub struct BatchPool {
    slots: ArrayQueue<Batch>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
}

impl BatchPool {
    /// Creates a pool holding at most `capacity` spare batches. A disabled pool
    /// always allocates fresh batches (used to measure the pool's effect).
    pub fn new(capacity: usize, enabled: bool) -> Arc<Self> {
        Arc::new(Self {
            slots: ArrayQueue::new(capacity.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled,
        })
    }

    /// Takes an empty batch from the pool (with its spare tuples ready for in-place
    /// reuse), or allocates a new one.
    pub fn take(&self, capacity_hint: usize) -> Batch {
        if self.enabled {
            if let Some(mut batch) = self.slots.pop() {
                batch.recycle();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return batch;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Batch::with_capacity(capacity_hint)
    }

    /// Returns a spent batch to the pool (dropped if the pool is full or disabled).
    /// The batch's tuples are retained as spares, not deallocated.
    pub fn put(&self, mut batch: Batch) {
        if !self.enabled {
            return;
        }
        batch.recycle();
        // If the pool is full the batch is simply dropped.
        let _ = self.slots.push(batch);
    }

    /// Number of takes served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of takes that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Whether pooling is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::InFlightTuple;
    use cjoin_common::QuerySet;
    use cjoin_storage::{Row, RowId, Value};

    #[test]
    fn reuses_returned_batches() {
        let pool = BatchPool::new(4, true);
        let mut b = pool.take(16);
        assert_eq!(pool.misses(), 1);
        b.push(InFlightTuple::new(
            RowId(0),
            Row::new(vec![Value::int(1)]),
            QuerySet::new(4),
            0,
        ));
        let cap = b.capacity();
        pool.put(b);
        let mut b2 = pool.take(16);
        assert_eq!(pool.hits(), 1);
        assert!(b2.is_empty(), "recycled batches are empty");
        assert!(b2.capacity() >= cap.min(1), "capacity is retained");
        assert_eq!(
            b2.spare_tuples(),
            1,
            "the tuple survives the round-trip as a recyclable spare"
        );
        let (_, recycled) = b2.next_slot(4);
        assert!(recycled, "refilling reuses the spare without allocating");
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = BatchPool::new(4, false);
        assert!(!pool.enabled());
        let b = pool.take(8);
        pool.put(b);
        let _ = pool.take(8);
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 2);
    }

    #[test]
    fn overflow_is_dropped_not_an_error() {
        let pool = BatchPool::new(1, true);
        pool.put(Batch::new());
        pool.put(Batch::new()); // exceeds capacity; silently dropped
        assert_eq!(pool.hits(), 0);
        let _ = pool.take(1);
        let _ = pool.take(1);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn concurrent_take_put() {
        let pool = BatchPool::new(16, true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let b = pool.take(4);
                        pool.put(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.hits() + pool.misses(), 4000);
    }
}
