//! Per-query progress tracking (§3.2.3).
//!
//! Because a CJOIN query completes exactly when the continuous scan wraps around its
//! starting tuple, the scan position is a reliable progress indicator: the fraction of
//! the fact table seen since registration is the fraction of the query that is done,
//! and the current processing rate gives an estimated time to completion. The paper
//! highlights this as a practical benefit for long-running ad-hoc analytics ("both of
//! these metrics can provide valuable feedback to users").
//!
//! A [`QueryProgress`] handle is created at admission, updated by the Preprocessor as
//! the scan advances, and readable at any time through
//! [`QueryHandle::progress`](crate::engine::QueryHandle::progress).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Progress of one registered query.
///
/// With a sharded scan front-end (`CjoinConfig::scan_workers > 1`) the pass is
/// split across segment workers: each worker advances `rows_seen` by the rows of
/// its own segment (the segment rows sum to the table, so [`QueryProgress::fraction`]
/// stays exact) and marks its segment's pass complete when its cursor wraps the
/// query's per-segment starting tuple. The query completes once every segment
/// has finished one pass since admission.
#[derive(Debug)]
pub struct QueryProgress {
    /// Fact rows the scan has produced since the query was installed.
    rows_seen: AtomicU64,
    /// Fact rows one full pass needs to cover (table size at admission).
    rows_total: u64,
    /// Scan segments one full pass is split across (1 for the classic scan).
    segments_total: u64,
    /// Segments that have completed their pass since the query was installed.
    segments_completed: AtomicU64,
    /// Set when the query's end-of-query control tuple has been emitted.
    completed: AtomicBool,
    /// When the query was installed.
    started: Instant,
}

impl QueryProgress {
    /// Creates a tracker for a query whose pass must cover `rows_total` fact rows.
    pub fn new(rows_total: u64) -> Self {
        Self {
            rows_seen: AtomicU64::new(0),
            rows_total,
            segments_total: 1,
            segments_completed: AtomicU64::new(0),
            completed: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    /// Splits the pass across `segments` scan segments (builder-style, called at
    /// admission before the tracker is shared).
    pub fn with_segments(mut self, segments: u64) -> Self {
        self.segments_total = segments.max(1);
        self
    }

    /// Records that the scan produced `rows` more fact rows for this query.
    #[inline]
    pub fn advance(&self, rows: u64) {
        self.rows_seen.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records that one scan segment completed its pass for this query (by wrap-
    /// around or partition exhaustion).
    pub fn mark_segment_completed(&self) {
        self.segments_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Scan segments a full pass is split across.
    pub fn segments_total(&self) -> u64 {
        self.segments_total
    }

    /// Segments that have completed their pass since admission.
    pub fn segments_completed(&self) -> u64 {
        self.segments_completed.load(Ordering::Relaxed)
    }

    /// Marks the query as completed.
    pub fn mark_completed(&self) {
        self.completed.store(true, Ordering::Release);
    }

    /// Fact rows seen so far.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen.load(Ordering::Relaxed)
    }

    /// Fact rows a full pass must cover.
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// Whether the query has completed.
    pub fn is_completed(&self) -> bool {
        self.completed.load(Ordering::Acquire)
    }

    /// Progress as a fraction in `[0, 1]`. Returns 1 once completed (also for
    /// partition-pruned queries that finish before seeing the whole table).
    pub fn fraction(&self) -> f64 {
        if self.is_completed() {
            return 1.0;
        }
        if self.rows_total == 0 {
            return 0.0;
        }
        (self.rows_seen() as f64 / self.rows_total as f64).clamp(0.0, 1.0)
    }

    /// Time since the query was installed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Estimated time remaining, extrapolated from the observed scan rate.
    ///
    /// Returns `None` until some progress has been observed, and `Some(ZERO)` once
    /// the query has completed.
    pub fn estimated_remaining(&self) -> Option<Duration> {
        if self.is_completed() {
            return Some(Duration::ZERO);
        }
        let seen = self.rows_seen();
        if seen == 0 || self.rows_total == 0 {
            return None;
        }
        let remaining_rows = self.rows_total.saturating_sub(seen);
        let rate = seen as f64 / self.elapsed().as_secs_f64().max(1e-9);
        Some(Duration::from_secs_f64(
            remaining_rows as f64 / rate.max(1e-9),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let p = QueryProgress::new(100);
        assert_eq!(p.fraction(), 0.0);
        assert_eq!(p.rows_seen(), 0);
        assert_eq!(p.rows_total(), 100);
        assert!(!p.is_completed());
        assert!(p.estimated_remaining().is_none());

        p.advance(25);
        assert!((p.fraction() - 0.25).abs() < 1e-12);
        p.advance(25);
        assert!((p.fraction() - 0.5).abs() < 1e-12);
        assert!(p.estimated_remaining().is_some());
    }

    #[test]
    fn fraction_is_clamped_and_completion_wins() {
        let p = QueryProgress::new(10);
        p.advance(50); // over-counting (e.g. table grew) must not exceed 1.0
        assert_eq!(p.fraction(), 1.0);

        let q = QueryProgress::new(1_000_000);
        q.advance(1);
        q.mark_completed();
        assert_eq!(q.fraction(), 1.0);
        assert!(q.is_completed());
        assert_eq!(q.estimated_remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn empty_table_has_zero_progress_until_completed() {
        let p = QueryProgress::new(0);
        assert_eq!(p.fraction(), 0.0);
        assert!(p.estimated_remaining().is_none());
        p.mark_completed();
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn segment_completion_is_tracked_per_pass() {
        let p = QueryProgress::new(100).with_segments(4);
        assert_eq!(p.segments_total(), 4);
        assert_eq!(p.segments_completed(), 0);
        for done in 1..=4 {
            p.mark_segment_completed();
            assert_eq!(p.segments_completed(), done);
        }
        assert!(
            !p.is_completed(),
            "only the coordinator completes the query"
        );
        p.mark_completed();
        assert!(p.is_completed());
        // The classic scan defaults to a single segment; zero clamps to one.
        assert_eq!(QueryProgress::new(10).segments_total(), 1);
        assert_eq!(QueryProgress::new(10).with_segments(0).segments_total(), 1);
    }

    #[test]
    fn estimated_remaining_shrinks_with_progress() {
        let p = QueryProgress::new(1000);
        p.advance(100);
        std::thread::sleep(Duration::from_millis(5));
        let early = p.estimated_remaining().unwrap();
        p.advance(800);
        let late = p.estimated_remaining().unwrap();
        assert!(late < early, "{late:?} should be below {early:?}");
    }
}
