//! Run-time filter ordering (§3.4).
//!
//! The order of Filters determines the expected number of probes per fact tuple:
//! applying the most selective Filters first drops irrelevant tuples early. Because
//! Filter selectivities depend on the *current query mix*, the order is optimised
//! continuously from run-time statistics rather than once at plan time — the same
//! formulation as adaptive ordering of pipelined stream filters (Babu et al.), which
//! the paper adopts.
//!
//! Every Filter has identical cost (one hash probe + one bitwise AND), so the
//! rank-ordering rule reduces to sorting Filters by decreasing observed drop rate.
//! The decision runs periodically in the engine's manager thread; applying it is a
//! single swap of the shared [`FilterChain`] order, picked up by workers at their
//! next batch.

use std::sync::Arc;

use crate::filter::FilterChain;
use crate::stats::SharedCounters;

/// Minimum number of tuples a Filter must have observed before its drop rate is
/// trusted; below this the current order is kept.
pub const MIN_OBSERVATIONS: u64 = 256;

/// Decides and applies a new filter order from the observed drop rates.
///
/// Returns the new order (dimension names) if a reordering was applied, `None` if
/// the order was already optimal or there is not yet enough evidence.
pub fn reorder_filters(chain: &FilterChain, counters: &Arc<SharedCounters>) -> Option<Vec<String>> {
    let filters = chain.snapshot();
    if filters.len() < 2 {
        return None;
    }
    // Require a minimum amount of evidence on every filter.
    if filters
        .iter()
        .any(|f| f.stats.tuples_in.load(std::sync::atomic::Ordering::Relaxed) < MIN_OBSERVATIONS)
    {
        return None;
    }
    let mut ranked: Vec<(String, f64)> = filters
        .iter()
        .map(|f| (f.name.clone(), f.stats.drop_rate()))
        .collect();
    // Highest drop rate first; ties keep the current relative order (stable sort).
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let new_order: Vec<String> = ranked.into_iter().map(|(name, _)| name).collect();
    let changed = chain.reorder(&new_order);
    // Reset statistics so the next decision reflects the (possibly changed) query mix
    // and the new position of each filter in the chain.
    for f in chain.snapshot() {
        f.stats.reset();
    }
    if changed {
        SharedCounters::add(&counters.filter_reorders, 1);
        Some(new_order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionTable;
    use cjoin_common::QuerySet;
    use std::sync::atomic::Ordering;

    fn filter(name: &str, slot: usize, tuples_in: u64, dropped: u64) -> Arc<DimensionTable> {
        let f = DimensionTable::new(name, slot, 0, 0, 8, &QuerySet::new(8));
        f.stats.tuples_in.store(tuples_in, Ordering::Relaxed);
        f.stats.tuples_dropped.store(dropped, Ordering::Relaxed);
        Arc::new(f)
    }

    #[test]
    fn orders_by_decreasing_drop_rate() {
        let chain = FilterChain::new();
        chain.push(filter("weak", 0, 1000, 10)); // 1 % drop
        chain.push(filter("strong", 1, 1000, 900)); // 90 % drop
        chain.push(filter("medium", 2, 1000, 400)); // 40 % drop
        let counters = SharedCounters::new();
        let order = reorder_filters(&chain, &counters).expect("reordering applied");
        assert_eq!(order, vec!["strong", "medium", "weak"]);
        assert_eq!(chain.order(), vec!["strong", "medium", "weak"]);
        assert_eq!(counters.filter_reorders.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_are_reset_after_a_decision() {
        let chain = FilterChain::new();
        chain.push(filter("a", 0, 1000, 500));
        chain.push(filter("b", 1, 1000, 100));
        let counters = SharedCounters::new();
        reorder_filters(&chain, &counters);
        for f in chain.snapshot() {
            assert_eq!(f.stats.snapshot(), (0, 0, 0, 0));
        }
    }

    #[test]
    fn no_change_when_order_is_already_optimal() {
        let chain = FilterChain::new();
        chain.push(filter("best", 0, 1000, 900));
        chain.push(filter("worst", 1, 1000, 100));
        let counters = SharedCounters::new();
        assert!(reorder_filters(&chain, &counters).is_none());
        assert_eq!(counters.filter_reorders.load(Ordering::Relaxed), 0);
        assert_eq!(chain.order(), vec!["best", "worst"]);
    }

    #[test]
    fn waits_for_enough_evidence() {
        let chain = FilterChain::new();
        chain.push(filter("a", 0, 10, 9)); // below MIN_OBSERVATIONS
        chain.push(filter("b", 1, 1000, 100));
        let counters = SharedCounters::new();
        assert!(reorder_filters(&chain, &counters).is_none());
        // Evidence preserved (not reset) while waiting.
        assert_eq!(chain.snapshot()[0].stats.snapshot().0, 10);
    }

    #[test]
    fn single_filter_chain_is_never_reordered() {
        let chain = FilterChain::new();
        chain.push(filter("only", 0, 10_000, 5_000));
        let counters = SharedCounters::new();
        assert!(reorder_filters(&chain, &counters).is_none());
    }
}
