//! The elastic stage scheduler: self-tuning scan/stage/shard parallelism.
//!
//! BENCH_PR5/PR8 record honestly that on a small host every static
//! `scan_workers`/`distributor_shards` step *loses* throughput — the knobs are
//! oblivious to the machine and the workload. This module makes them earn
//! their keep: a [`StageScheduler`] owns the *effective* width of each
//! parallelism axis (scan workers, filter-stage workers, Distributor shards),
//! sizes them at engine start from `std::thread::available_parallelism()`, and
//! re-sizes them at runtime from the live pipeline counters the engine already
//! collects (`barrier_wait_ns`, queue depths, pass durations) fed in as one
//! [`SchedulerTick`] per observation.
//!
//! # What the scheduler governs
//!
//! Only axes the user left alone. An axis is **governed** iff `auto_tune` is
//! on, the knob was not pinned by an explicit builder call
//! ([`crate::config::PinnedAxes`]), and its value equals the default (which
//! catches struct-update assignments too). Every explicitly configured
//! engine — the whole existing test/bench matrix — therefore behaves
//! bit-identically with the scheduler present.
//!
//! # Policy
//!
//! Each tick the policy compares the sample against the previous one and
//! reaches a [`BottleneckVerdict`]:
//!
//! * **Cores scarce** — the pipeline wants more threads than the host has:
//!   shrink the widest governed axis (on a 1-core host this and the startup
//!   sizing collapse everything to the classic single-threaded CJOIN shape).
//! * **Coordination overhead** — drain-barrier wait grew faster than a
//!   quarter of a pass: the fan-out is coordination, not compute; shrink it.
//! * **Stage/Distributor saturated** — an input queue is persistently ≥ ¾
//!   full: the stage behind it is the bottleneck; widen it if idle cores
//!   exist.
//! * **Scan starved** — queues run empty while queries are active: the scan
//!   cannot feed the pipeline; widen it if idle cores exist, otherwise shrink
//!   the starved downstream stages.
//!
//! # Hysteresis and the pass-boundary argument
//!
//! A resize is a heavyweight act: the engine drains the current pipeline
//! incarnation at a quiescent point and re-installs every in-flight query on
//! the new one, which restarts each query's pass (§3.3's wrap protocol makes
//! any complete pass over a query's snapshot produce the exact answer, so
//! correctness is indifferent to *where* the restart happens — the drain is
//! itself the natural pass boundary for every in-flight query). What hysteresis
//! must prevent is **livelock and oscillation**, not corruption:
//!
//! * a verdict must repeat for [`VERDICT_STREAK`] consecutive ticks before it
//!   acts — a transient queue spike never resizes anything;
//! * after any resize the policy holds off for [`COOLDOWN_TICKS`] ticks *and*
//!   until at least one full scan pass has completed ([`SchedulerTick::
//!   scan_passes`] advanced), so queries admitted before a resize finish
//!   before the next one can restart them — resizes can never starve query
//!   completion;
//! * opposing thresholds are far apart (widen at ¾-full, shrink at empty), so
//!   a stable workload reaches a fixed point instead of ping-ponging.
//!
//! Decisions, current widths and verdicts are exposed through
//! [`SchedulerStats`] in [`crate::stats::PipelineStats`] and over the server
//! stats RPC, so benches can show *why* the shape changed.

use parking_lot::Mutex;

use crate::config::CjoinConfig;

/// A resizable parallelism axis of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Continuous-scan (Preprocessor) workers — `CjoinConfig::scan_workers`.
    ScanWorkers,
    /// Filter-stage worker threads — `CjoinConfig::worker_threads` under the
    /// horizontal layout.
    StageWorkers,
    /// Aggregation (Distributor) shards — `CjoinConfig::distributor_shards`.
    DistributorShards,
}

impl Axis {
    /// All axes, in scan→stage→distributor pipeline order.
    pub const ALL: [Axis; 3] = [
        Axis::ScanWorkers,
        Axis::StageWorkers,
        Axis::DistributorShards,
    ];

    fn index(self) -> usize {
        match self {
            Axis::ScanWorkers => 0,
            Axis::StageWorkers => 1,
            Axis::DistributorShards => 2,
        }
    }

    /// Display name used in logs and over the stats RPC.
    pub fn label(self) -> &'static str {
        match self {
            Axis::ScanWorkers => "scan-workers",
            Axis::StageWorkers => "stage-workers",
            Axis::DistributorShards => "distributor-shards",
        }
    }
}

/// What the tuning policy concluded about the pipeline on its last tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottleneckVerdict {
    /// No axis stands out; leave the shape alone.
    Balanced,
    /// Queues run empty while queries are active: the scan cannot feed the
    /// pipeline fast enough.
    ScanStarved,
    /// The filter-stage input queue is persistently deep.
    StageSaturated,
    /// The Distributor input queue is persistently deep.
    DistributorSaturated,
    /// Drain-barrier wait grew out of proportion to the pass: the fan-out is
    /// coordination overhead, not useful parallelism.
    CoordinationOverhead,
    /// The host has fewer cores than the pipeline has threads.
    CoresScarce,
}

impl BottleneckVerdict {
    /// Display name used in logs and over the stats RPC.
    pub fn label(self) -> &'static str {
        match self {
            BottleneckVerdict::Balanced => "balanced",
            BottleneckVerdict::ScanStarved => "scan-starved",
            BottleneckVerdict::StageSaturated => "stage-saturated",
            BottleneckVerdict::DistributorSaturated => "distributor-saturated",
            BottleneckVerdict::CoordinationOverhead => "coordination-overhead",
            BottleneckVerdict::CoresScarce => "cores-scarce",
        }
    }
}

/// Why a width changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeReason {
    /// Startup sizing from `available_parallelism()`.
    Startup,
    /// The runtime tuning policy acted on a verdict.
    Policy(BottleneckVerdict),
    /// An explicit [`crate::engine::CjoinEngine::request_resize`] call.
    Forced,
    /// The supervisor degraded the axis after a role failure.
    Degraded,
}

/// One recorded width change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResizeEvent {
    /// The axis that changed.
    pub axis: Axis,
    /// Width before the change.
    pub from: usize,
    /// Width after the change.
    pub to: usize,
    /// Why it changed.
    pub reason: ResizeReason,
    /// `scan_passes` at decision time (0 for startup sizing).
    pub pass: u64,
}

/// One observation of the live pipeline, sampled by the engine's tuning
/// thread and fed to [`StageScheduler::tick`]. All counters are cumulative
/// engine-lifetime values; the policy works on deltas between consecutive
/// ticks.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerTick {
    /// Completed full scan passes ([`crate::stats::SharedCounters`]).
    pub scan_passes: u64,
    /// Duration of the last completed pass, nanoseconds.
    pub last_pass_ns: u64,
    /// Cumulative drain-barrier wait, nanoseconds.
    pub barrier_wait_ns: u64,
    /// Current depth of the first filter-stage input queue, in batches.
    pub stage_queue_len: usize,
    /// Capacity of that queue, in batches.
    pub stage_queue_capacity: usize,
    /// Current depth of the Distributor input queue, in batches.
    pub distributor_queue_len: usize,
    /// Capacity of that queue, in batches.
    pub distributor_queue_capacity: usize,
    /// Queries currently registered.
    pub active_queries: usize,
    /// Batches currently in flight between pipeline threads.
    pub batches_in_flight: i64,
}

/// Point-in-time snapshot of the scheduler: the current shape, how it was
/// reached, and what the policy last concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerStats {
    /// Whether the runtime tuning policy is active for any axis.
    pub auto_tune: bool,
    /// `available_parallelism()` observed at engine start.
    pub available_parallelism: usize,
    /// Current scan-worker width.
    pub scan_workers: usize,
    /// Current stage-worker width.
    pub stage_workers: usize,
    /// Current Distributor-shard width.
    pub distributor_shards: usize,
    /// Which axes the scheduler governs (unpinned, default-valued knobs).
    pub governed: [bool; 3],
    /// Policy ticks observed so far.
    pub ticks: u64,
    /// The policy's latest verdict (`None` before the first tick).
    pub last_verdict: Option<BottleneckVerdict>,
    /// Every width change since engine start, in order.
    pub resizes: Vec<ResizeEvent>,
}

impl Default for SchedulerStats {
    fn default() -> Self {
        Self {
            auto_tune: false,
            available_parallelism: 1,
            scan_workers: 1,
            stage_workers: 1,
            distributor_shards: 1,
            governed: [false; 3],
            ticks: 0,
            last_verdict: None,
            resizes: Vec::new(),
        }
    }
}

/// A verdict must repeat this many consecutive ticks before the policy acts.
pub const VERDICT_STREAK: u32 = 3;
/// Ticks the policy holds off after any resize (forced or policy-driven).
pub const COOLDOWN_TICKS: u32 = 10;
/// Hard cap on scan workers (mirrors config validation).
const MAX_SCAN_WORKERS: usize = 64;
/// Hard cap on distributor shards (mirrors config validation).
const MAX_DISTRIBUTOR_SHARDS: usize = 256;
/// Cap on recorded resize events (oldest dropped beyond this; a healthy
/// engine records a handful, so this only bounds pathological churn).
const MAX_EVENTS: usize = 256;

#[derive(Debug)]
struct Inner {
    widths: [usize; 3],
    last_sample: Option<SchedulerTick>,
    last_verdict: Option<BottleneckVerdict>,
    /// The pending proposal and how many consecutive ticks reached it.
    streak: Option<(Axis, usize, BottleneckVerdict, u32)>,
    cooldown: u32,
    /// `scan_passes` at the last resize: the policy waits for at least one
    /// completed pass beyond this before resizing again.
    resize_pass_floor: u64,
    ticks: u64,
    events: Vec<ResizeEvent>,
}

/// Owns the effective per-axis parallelism widths of one engine and the
/// runtime tuning policy that adjusts them. Spawn/resize/teardown mechanics
/// stay in the engine (they need the pipeline core); the scheduler is the
/// single source of truth for *how wide* each axis should be.
#[derive(Debug)]
pub struct StageScheduler {
    auto_tune: bool,
    governed: [bool; 3],
    /// Per-axis upper bounds the policy may scale to.
    caps: [usize; 3],
    cores: usize,
    inner: Mutex<Inner>,
}

impl StageScheduler {
    /// Builds the scheduler for `config`, sizing governed axes from the
    /// detected `available_parallelism()`.
    pub fn new(config: &CjoinConfig) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_cores(config, cores)
    }

    /// Like [`StageScheduler::new`] with an explicit core count (tests).
    pub fn with_cores(config: &CjoinConfig, cores: usize) -> Self {
        let cores = cores.max(1);
        let defaults = CjoinConfig::default();
        // Governed = auto-tune on, not pinned by a builder call, and still at
        // the default value (catches struct-update assignments). The stage
        // axis additionally requires the default horizontal layout — vertical
        // and hybrid layouts encode an explicit thread shape.
        let governed = [
            config.auto_tune
                && !config.pinned.scan_workers
                && config.scan_workers == defaults.scan_workers,
            config.auto_tune
                && !config.pinned.worker_threads
                && config.stage_layout == defaults.stage_layout
                && config.worker_threads == defaults.worker_threads,
            config.auto_tune
                && !config.pinned.distributor_shards
                && config.distributor_shards == defaults.distributor_shards,
        ];
        let caps = [
            cores.min(MAX_SCAN_WORKERS),
            // The configured value is the stage ceiling: startup may shrink
            // the default below it, the policy never grows past it.
            config.worker_threads.max(1),
            cores.min(MAX_DISTRIBUTOR_SHARDS),
        ];
        let mut widths = [
            config.scan_workers,
            config.worker_threads,
            config.distributor_shards,
        ];
        let mut events = Vec::new();
        if governed[Axis::StageWorkers.index()] {
            // Startup sizing: leave one core each for the scan and the
            // aggregation stage, never exceed the configured ceiling, never
            // drop below the classic single worker. On a 1-core host this is
            // exactly the paper's classic single-threaded shape.
            let sized = cores.saturating_sub(2).clamp(1, caps[1]);
            if sized != widths[1] {
                events.push(ResizeEvent {
                    axis: Axis::StageWorkers,
                    from: widths[1],
                    to: sized,
                    reason: ResizeReason::Startup,
                    pass: 0,
                });
                widths[1] = sized;
            }
        }
        // Governed scan/shard axes start at the classic width 1 (their
        // default); the runtime policy may widen them later when queues show
        // demand and idle cores exist, so no startup event fires for them.
        Self {
            auto_tune: config.auto_tune,
            governed,
            caps,
            cores,
            inner: Mutex::new(Inner {
                widths,
                last_sample: None,
                last_verdict: None,
                streak: None,
                cooldown: 0,
                resize_pass_floor: 0,
                ticks: 0,
                events,
            }),
        }
    }

    /// Whether the runtime tuning policy has anything to govern.
    pub fn any_governed(&self) -> bool {
        self.auto_tune && self.governed.iter().any(|&g| g)
    }

    /// Number of cores observed at engine start.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Current `(scan_workers, stage_workers, distributor_shards)` widths.
    pub fn widths(&self) -> (usize, usize, usize) {
        let w = self.inner.lock().widths;
        (w[0], w[1], w[2])
    }

    /// `config` with governed axes overridden by the scheduler's current
    /// widths — what the engine actually spawns a pipeline incarnation from.
    /// Pinned axes keep their (possibly supervisor-degraded) config values.
    pub fn effective_config(&self, config: &CjoinConfig) -> CjoinConfig {
        let mut effective = config.clone();
        let widths = self.inner.lock().widths;
        if self.governed[0] {
            effective.scan_workers = widths[0];
        }
        if self.governed[1] {
            effective.worker_threads = widths[1];
        }
        if self.governed[2] {
            effective.distributor_shards = widths[2];
        }
        effective
    }

    /// Records a committed width change (the engine calls this after the
    /// pipeline was actually re-spawned at the new width). Returns the
    /// previous width.
    pub fn commit_resize(&self, axis: Axis, to: usize, reason: ResizeReason, pass: u64) -> usize {
        let mut inner = self.inner.lock();
        let from = inner.widths[axis.index()];
        inner.widths[axis.index()] = to;
        if from != to {
            if inner.events.len() >= MAX_EVENTS {
                inner.events.remove(0);
            }
            inner.events.push(ResizeEvent {
                axis,
                from,
                to,
                reason,
                pass,
            });
        }
        // Any committed change restarts the hysteresis clock: hold the policy
        // off for a cooldown and at least one completed pass.
        inner.streak = None;
        inner.cooldown = COOLDOWN_TICKS;
        inner.resize_pass_floor = pass;
        from
    }

    /// One observation of the live pipeline. Returns a resize proposal —
    /// `(axis, target width, verdict)` — once a verdict has survived the
    /// hysteresis guards, `None` otherwise. The engine applies the proposal
    /// (pipeline swap + query re-install) and then calls
    /// [`StageScheduler::commit_resize`].
    pub fn tick(&self, sample: SchedulerTick) -> Option<(Axis, usize, BottleneckVerdict)> {
        let mut inner = self.inner.lock();
        inner.ticks += 1;
        let prev = inner.last_sample.replace(sample);
        let Some(prev) = prev else {
            return None; // need two samples for deltas
        };
        let (verdict, proposal) = self.propose(&inner.widths, &prev, &sample);
        inner.last_verdict = Some(verdict);
        if inner.cooldown > 0 {
            inner.cooldown -= 1;
            inner.streak = None;
            return None;
        }
        // Pass-boundary guard: queries admitted before the last resize must
        // complete a pass before the next resize can restart them.
        if sample.scan_passes <= inner.resize_pass_floor {
            inner.streak = None;
            return None;
        }
        let Some((axis, target)) = proposal else {
            inner.streak = None;
            return None;
        };
        let streak = match inner.streak {
            Some((a, t, v, n)) if a == axis && t == target && v == verdict => n + 1,
            _ => 1,
        };
        if streak >= VERDICT_STREAK {
            inner.streak = None;
            inner.cooldown = COOLDOWN_TICKS;
            Some((axis, target, verdict))
        } else {
            inner.streak = Some((axis, target, verdict, streak));
            None
        }
    }

    /// The pure policy: verdict plus (optionally) the one-step resize it
    /// implies for the current widths.
    fn propose(
        &self,
        widths: &[usize; 3],
        prev: &SchedulerTick,
        cur: &SchedulerTick,
    ) -> (BottleneckVerdict, Option<(Axis, usize)>) {
        if cur.active_queries == 0 {
            return (BottleneckVerdict::Balanced, None);
        }
        let governed = |axis: Axis| self.governed[axis.index()];
        let width = |axis: Axis| widths[axis.index()];
        // Rough thread demand: the three axis widths plus the coordinator/
        // merger side-threads a widened front- or back-end brings along.
        let demand = widths.iter().sum::<usize>()
            + usize::from(width(Axis::ScanWorkers) > 1)
            + usize::from(width(Axis::DistributorShards) > 1);
        let headroom = demand < self.cores;

        // 1. More threads than cores: shrink the widest governed axis.
        if demand > self.cores {
            let widest = Axis::ALL
                .into_iter()
                .filter(|&a| governed(a) && width(a) > 1)
                .max_by_key(|&a| width(a));
            if let Some(axis) = widest {
                return (
                    BottleneckVerdict::CoresScarce,
                    Some((axis, width(axis) - 1)),
                );
            }
        }

        // 2. Coordination overhead: barrier wait grew by more than a quarter
        // of a pass since the last tick. Only meaningful when a pass completed
        // in between (the barrier counter advances at control-tuple drains).
        let barrier_delta = cur.barrier_wait_ns.saturating_sub(prev.barrier_wait_ns);
        if cur.scan_passes > prev.scan_passes
            && cur.last_pass_ns > 0
            && barrier_delta * 4 > cur.last_pass_ns
        {
            for axis in [Axis::ScanWorkers, Axis::DistributorShards] {
                if governed(axis) && width(axis) > 1 {
                    return (
                        BottleneckVerdict::CoordinationOverhead,
                        Some((axis, width(axis) - 1)),
                    );
                }
            }
        }

        // 3. A persistently deep input queue marks the stage behind it as the
        // bottleneck; widen it when idle cores exist.
        let deep = |len: usize, cap: usize| cap > 0 && len * 4 >= cap * 3;
        if deep(cur.stage_queue_len, cur.stage_queue_capacity)
            && deep(prev.stage_queue_len, prev.stage_queue_capacity)
        {
            let target = width(Axis::StageWorkers) + 1;
            let act = governed(Axis::StageWorkers)
                && target <= self.caps[Axis::StageWorkers.index()]
                && headroom;
            return (
                BottleneckVerdict::StageSaturated,
                act.then_some((Axis::StageWorkers, target)),
            );
        }
        if deep(cur.distributor_queue_len, cur.distributor_queue_capacity)
            && deep(prev.distributor_queue_len, prev.distributor_queue_capacity)
        {
            let target = width(Axis::DistributorShards) + 1;
            let act = governed(Axis::DistributorShards)
                && target <= self.caps[Axis::DistributorShards.index()]
                && headroom;
            return (
                BottleneckVerdict::DistributorSaturated,
                act.then_some((Axis::DistributorShards, target)),
            );
        }

        // 4. Queues empty on consecutive ticks while queries are active: the
        // scan is the bottleneck. Widen it when cores allow; otherwise the
        // starved downstream fan-out is pure overhead — shrink it.
        if cur.stage_queue_len == 0
            && cur.distributor_queue_len == 0
            && prev.stage_queue_len == 0
            && prev.distributor_queue_len == 0
        {
            let target = width(Axis::ScanWorkers) + 1;
            if governed(Axis::ScanWorkers)
                && target <= self.caps[Axis::ScanWorkers.index()]
                && headroom
            {
                return (
                    BottleneckVerdict::ScanStarved,
                    Some((Axis::ScanWorkers, target)),
                );
            }
            for axis in [Axis::StageWorkers, Axis::DistributorShards] {
                if governed(axis) && width(axis) > 1 {
                    return (
                        BottleneckVerdict::CoordinationOverhead,
                        Some((axis, width(axis) - 1)),
                    );
                }
            }
            return (BottleneckVerdict::ScanStarved, None);
        }

        (BottleneckVerdict::Balanced, None)
    }

    /// Point-in-time snapshot for [`crate::stats::PipelineStats`] and the
    /// server stats RPC.
    pub fn snapshot(&self) -> SchedulerStats {
        let inner = self.inner.lock();
        SchedulerStats {
            auto_tune: self.auto_tune,
            available_parallelism: self.cores,
            scan_workers: inner.widths[0],
            stage_workers: inner.widths[1],
            distributor_shards: inner.widths[2],
            governed: self.governed,
            ticks: inner.ticks,
            last_verdict: inner.last_verdict,
            resizes: inner.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpinned() -> CjoinConfig {
        CjoinConfig::default()
    }

    fn tick_with(
        scheduler: &StageScheduler,
        sample: SchedulerTick,
        n: u32,
    ) -> Option<(Axis, usize, BottleneckVerdict)> {
        let mut out = None;
        for _ in 0..n {
            out = scheduler.tick(sample);
            if out.is_some() {
                break;
            }
        }
        out
    }

    #[test]
    fn one_core_startup_collapses_to_the_classic_shape() {
        let s = StageScheduler::with_cores(&unpinned(), 1);
        assert_eq!(s.widths(), (1, 1, 1));
        let stats = s.snapshot();
        assert_eq!(stats.governed, [true, true, true]);
        assert_eq!(stats.resizes.len(), 1, "stage axis collapsed at startup");
        assert_eq!(stats.resizes[0].reason, ResizeReason::Startup);
        assert_eq!(stats.resizes[0].from, 4);
        assert_eq!(stats.resizes[0].to, 1);
    }

    #[test]
    fn many_cores_keep_the_configured_stage_ceiling() {
        let s = StageScheduler::with_cores(&unpinned(), 16);
        // cores - 2 exceeds the default ceiling of 4, so the width stays 4
        // and no startup event fires.
        assert_eq!(s.widths(), (1, 4, 1));
        assert!(s.snapshot().resizes.is_empty());
    }

    #[test]
    fn pinned_axes_are_never_governed() {
        let config = CjoinConfig::default()
            .with_scan_workers(4)
            .with_worker_threads(2)
            .with_distributor_shards(4);
        let s = StageScheduler::with_cores(&config, 1);
        assert!(!s.any_governed());
        assert_eq!(s.widths(), (4, 2, 4), "explicit knobs are fixed overrides");
        let effective = s.effective_config(&config);
        assert_eq!(effective, config, "effective config is bit-identical");
    }

    #[test]
    fn struct_update_values_count_as_pinned() {
        let config = CjoinConfig {
            scan_workers: 2,
            ..CjoinConfig::default()
        };
        let s = StageScheduler::with_cores(&config, 8);
        assert!(!s.snapshot().governed[0]);
        assert_eq!(s.effective_config(&config).scan_workers, 2);
    }

    #[test]
    fn auto_tune_off_governs_nothing() {
        let s = StageScheduler::with_cores(&unpinned().with_auto_tune(false), 1);
        assert!(!s.any_governed());
        assert_eq!(s.widths(), (1, 4, 1), "no startup sizing without auto-tune");
    }

    #[test]
    fn saturated_stage_queue_upscales_only_after_a_streak() {
        let s = StageScheduler::with_cores(&unpinned(), 16);
        // A degradation shrank the stage axis below its ceiling; a
        // persistently deep stage queue then argues for scaling back out.
        s.commit_resize(Axis::StageWorkers, 2, ResizeReason::Degraded, 0);
        let busy = SchedulerTick {
            scan_passes: 5,
            stage_queue_len: 8,
            stage_queue_capacity: 8,
            active_queries: 4,
            ..SchedulerTick::default()
        };
        // One tick primes the delta window, the commit's cooldown burns off,
        // and the verdict must then survive VERDICT_STREAK consecutive ticks.
        for _ in 0..1 + COOLDOWN_TICKS + VERDICT_STREAK - 1 {
            assert!(s.tick(busy).is_none());
        }
        let (axis, target, verdict) = s.tick(busy).expect("streak complete");
        assert_eq!(axis, Axis::StageWorkers);
        assert_eq!(target, 3);
        assert_eq!(verdict, BottleneckVerdict::StageSaturated);
        // The engine commits; the event is recorded and the cooldown holds
        // the policy off afterwards.
        s.commit_resize(
            axis,
            target,
            ResizeReason::Policy(verdict),
            busy.scan_passes,
        );
        assert_eq!(s.widths().1, 3);
        assert!(
            tick_with(&s, busy, COOLDOWN_TICKS).is_none(),
            "cooldown suppresses immediate re-resize"
        );
    }

    #[test]
    fn thread_demand_beyond_cores_is_shrunk() {
        let s = StageScheduler::with_cores(&unpinned(), 3);
        // A forced resize pushed the pipeline to more threads than the host
        // has cores; the policy walks it back regardless of queue state.
        s.commit_resize(Axis::StageWorkers, 3, ResizeReason::Forced, 0);
        let busy = SchedulerTick {
            scan_passes: 1,
            stage_queue_len: 4,
            stage_queue_capacity: 8,
            active_queries: 1,
            ..SchedulerTick::default()
        };
        let (axis, target, verdict) =
            tick_with(&s, busy, 1 + COOLDOWN_TICKS + VERDICT_STREAK + 1).expect("proposal");
        assert_eq!(axis, Axis::StageWorkers);
        assert_eq!(target, 2);
        assert_eq!(verdict, BottleneckVerdict::CoresScarce);
    }

    #[test]
    fn resizes_wait_for_a_completed_pass() {
        let s = StageScheduler::with_cores(&unpinned(), 16);
        let busy = SchedulerTick {
            scan_passes: 3,
            stage_queue_len: 8,
            stage_queue_capacity: 8,
            active_queries: 2,
            ..SchedulerTick::default()
        };
        s.commit_resize(Axis::StageWorkers, 2, ResizeReason::Forced, 3);
        // scan_passes never advances past the resize floor: no proposal, ever.
        assert!(tick_with(&s, busy, COOLDOWN_TICKS + 8).is_none());
        // One completed pass later the policy may act again.
        let advanced = SchedulerTick {
            scan_passes: 4,
            ..busy
        };
        assert!(tick_with(&s, advanced, VERDICT_STREAK + 1).is_some());
    }

    #[test]
    fn empty_queues_with_no_headroom_shrink_the_fanout() {
        // 4 cores: startup sizes the stage axis to 2 (cores − 2). With queues
        // running empty while queries are active and no headroom to widen the
        // scan, the starved stage fan-out is pure overhead and shrinks back
        // toward the classic shape.
        let s = StageScheduler::with_cores(&unpinned(), 4);
        assert_eq!(s.widths(), (1, 2, 1));
        let starved = SchedulerTick {
            scan_passes: 1,
            stage_queue_capacity: 8,
            distributor_queue_capacity: 8,
            active_queries: 2,
            ..SchedulerTick::default()
        };
        let (axis, target, verdict) = tick_with(&s, starved, VERDICT_STREAK + 2).expect("proposal");
        assert_eq!(axis, Axis::StageWorkers);
        assert_eq!(target, 1);
        assert_eq!(verdict, BottleneckVerdict::CoordinationOverhead);
    }

    #[test]
    fn idle_engines_stay_put() {
        let s = StageScheduler::with_cores(&unpinned(), 16);
        let idle = SchedulerTick {
            stage_queue_capacity: 8,
            distributor_queue_capacity: 8,
            ..SchedulerTick::default()
        };
        assert!(tick_with(&s, idle, 20).is_none());
        assert_eq!(s.snapshot().last_verdict, Some(BottleneckVerdict::Balanced));
    }

    #[test]
    fn commit_records_events_and_is_idempotent_on_equal_width() {
        let s = StageScheduler::with_cores(&unpinned(), 16);
        s.commit_resize(Axis::ScanWorkers, 2, ResizeReason::Forced, 1);
        s.commit_resize(Axis::ScanWorkers, 2, ResizeReason::Forced, 1);
        let stats = s.snapshot();
        assert_eq!(stats.scan_workers, 2);
        assert_eq!(stats.resizes.len(), 1, "same-width commit records no event");
        assert_eq!(stats.resizes[0].axis, Axis::ScanWorkers);
        assert_eq!(stats.resizes[0].reason, ResizeReason::Forced);
    }
}
