//! The CJOIN operator (Candea, Polyzotis, Vingralek — VLDB 2009).
//!
//! CJOIN evaluates **all concurrent star queries in a single, always-on physical
//! plan**: a continuous scan of the fact table feeds a Preprocessor, a sequence of
//! Filters (one per dimension table referenced by any in-flight query) and a
//! Distributor that routes surviving tuples to per-query aggregation operators.
//! Sharing is achieved through query bit-vectors: every in-flight fact tuple carries
//! one bit per registered query, every dimension hash-table entry carries the set of
//! queries that select it, and a Filter joins a fact tuple against *all* queries with
//! a single hash probe followed by a bitwise AND.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use cjoin_core::{CjoinConfig, CjoinEngine};
//! use cjoin_query::{AggFunc, AggregateSpec, ColumnRef, Predicate, StarQuery};
//! use cjoin_storage::{Catalog, Column, Schema, SnapshotId, Table, Value};
//!
//! // Build a tiny warehouse: one fact table, one dimension.
//! let catalog = Arc::new(Catalog::new());
//! let dim = Table::new(Schema::new("color", vec![Column::int("k"), Column::str("name")]));
//! for (k, name) in [(1, "red"), (2, "green")] {
//!     dim.insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL).unwrap();
//! }
//! let fact = Table::new(Schema::new("sales", vec![Column::int("fk"), Column::int("amount")]));
//! for (fk, amount) in [(1, 10), (2, 20), (1, 30)] {
//!     fact.insert(vec![Value::int(fk), Value::int(amount)], SnapshotId::INITIAL).unwrap();
//! }
//! catalog.add_table(Arc::new(dim));
//! catalog.add_fact_table(Arc::new(fact));
//!
//! // Start the always-on pipeline and register a query with it.
//! let engine = CjoinEngine::start(Arc::clone(&catalog), CjoinConfig::default()).unwrap();
//! let query = StarQuery::builder("red_total")
//!     .join_dimension("color", "fk", "k", Predicate::eq("name", "red"))
//!     .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
//!     .build();
//! let handle = engine.submit(query).unwrap();
//! let result = handle.wait().unwrap();
//! assert_eq!(result.rows().next().unwrap().1[0], cjoin_query::AggValue::Int(40));
//! engine.shutdown();
//! ```
//!
//! # Module map
//!
//! | module | paper section | responsibility |
//! |--------|---------------|----------------|
//! | [`config`] | §4 | pipeline configuration (maxConc, threads, stage layout, batching) |
//! | [`tuple`] | §3.1 | in-flight fact tuples, control tuples, batches |
//! | [`pool`] | §4 | pooled batch allocator ("specialized allocator for fact tuples") |
//! | [`queue`] | §4 | bounded batched tuple queues linking pipeline threads |
//! | [`dimension`] | §3.2.1 | dimension hash tables with per-entry query bit-vectors |
//! | [`filter`] | §3.2.2 | the Filter probe/AND/drop step and the ordered filter chain |
//! | [`preprocessor`] | §3.2.2, §3.3 | bit-vector initialisation, query start/end detection; sharded segment-scan front-end |
//! | [`colscan`] | §5 | compressed columnar scan: encoded-predicate kernel, zone-map skipping, late materialization |
//! | [`progress`] | §3.2.3 | per-query progress / estimated completion from the scan position |
//! | [`distributor`] | §3.2.2 | routing to per-query aggregation operators |
//! | [`optimizer`] | §3.4 | run-time filter reordering from observed selectivities |
//! | [`pipeline`] | §4 | thread layout (horizontal / vertical / hybrid stages) |
//! | [`engine`] | §3.3 | public API: admission (Algorithm 1), finalization (Algorithm 2) |
//! | [`scheduler`] | §4 | elastic stage scheduler: self-tuning scan/stage/shard widths |
//! | [`fault`] | — | deterministic fault injection for supervision tests |
//! | [`stats`] | §6 | operator statistics used by the experiments |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod colscan;
pub mod config;
pub mod dimension;
pub mod distributor;
pub mod engine;
pub mod fault;
pub mod filter;
pub mod optimizer;
pub mod pipeline;
pub mod pool;
pub mod preprocessor;
pub mod progress;
pub mod queue;
pub mod scheduler;
pub mod stats;
pub mod tuple;

pub use config::{CjoinConfig, PinnedAxes, StageLayout};
pub use engine::{CjoinEngine, IngestSession, QueryHandle};
pub use fault::{FaultPlan, FaultSite};
pub use progress::QueryProgress;
pub use scheduler::{
    Axis, BottleneckVerdict, ResizeEvent, ResizeReason, SchedulerStats, SchedulerTick,
    StageScheduler,
};
pub use stats::{IngestStats, PipelineStats};
