//! The public CJOIN engine: query admission, finalization and pipeline lifecycle.
//!
//! [`CjoinEngine::start`] builds the always-on pipeline (continuous scan →
//! Preprocessor → Stages → aggregation stage) and the manager thread. The scan
//! front-end is a single Preprocessor by default, or — with
//! `CjoinConfig::scan_workers > 1` — that many segment scan workers behind an
//! admission coordinator (see [`crate::preprocessor`]). The
//! aggregation stage is a single Distributor by default, or — with
//! `CjoinConfig::distributor_shards > 1` — a router, that many parallel
//! aggregation shards, and an end-barrier merger (see [`crate::distributor`]). Queries are
//! registered at any time with [`CjoinEngine::submit`], which performs Algorithm 1 of
//! the paper on the caller's thread (the Pipeline Manager work runs concurrently with
//! the pipeline, which keeps flowing while dimension hash tables are updated) and
//! returns a [`QueryHandle`] whose [`QueryHandle::wait`] blocks until the continuous
//! scan has wrapped around the query's starting tuple and its result is complete.
//!
//! The manager thread performs the asynchronous work of §3.3.2 and §3.4: cleaning up
//! dimension hash tables after queries finish (Algorithm 2), recycling query ids, and
//! periodically re-optimising the Filter order from observed selectivities.
//!
//! # Supervision
//!
//! With `CjoinConfig::supervision` (the default) every pipeline role runs under
//! [`spawn_supervised`]: a panic becomes a [`RoleFailure`] on the supervisor's
//! channel instead of a silently dead thread. The supervisor thread then:
//!
//! 1. takes the pipeline out of service (no new query can install against it),
//! 2. resolves every in-flight query to [`QueryError::StageFailed`] — *before*
//!    any blocked drain barrier is released, so the first-wins latch in
//!    [`QueryRuntime`] guarantees a poison-released barrier can never surface a
//!    truncated result as `Ok`,
//! 3. tears the old pipeline down without ever blocking on a dead consumer
//!    (see [`teardown_core`]),
//! 4. degrades the failed axis to its classic path (segmented scan → single
//!    Preprocessor, columnar scan → row store, sharded aggregation → single
//!    Distributor, multi-worker stages → one horizontal worker), and
//! 5. respawns the pipeline, leaving the engine serviceable for fresh queries.
//!
//! Two liveness rules keep the supervisor itself unblockable. First, no client
//! thread ever sleeps while holding the core lock: [`CjoinEngine::submit`]
//! registers the query under the lock but waits for the installation ack
//! outside it, with a polling wait that detects both a supervisor-resolved
//! outcome and a dead command receiver (a queued install is *retained* when
//! its receiver dies — the ack sender inside it never drops, so a blocking
//! `recv` would hang forever). Second, resolution of every registered query is
//! owned by exactly one party: the pipeline on success, the supervisor (or
//! engine shutdown) on failure — a failed install therefore does not roll
//! itself back, it lets the supervisor's registry drain fail it, so a query id
//! is never released twice.
//!
//! The same supervisor loop doubles as the deadline reaper: queries submitted
//! with [`StarQuery::deadline`] are resolved to
//! [`QueryError::DeadlineExceeded`] and retired from the scan once their
//! deadline passes, and admission pre-sheds queries whose deadline is already
//! shorter than the last observed full scan pass
//! ([`QueryError::ShedAtAdmission`]).
//!
//! # Elastic scheduling
//!
//! With `CjoinConfig::auto_tune` (the default) the engine owns a
//! [`StageScheduler`]: parallelism knobs left at their defaults are sized at
//! start from `available_parallelism()` and re-sized at runtime by a tuner
//! thread that feeds live pipeline counters into the scheduler's hysteresis
//! policy (see [`crate::scheduler`] for the policy and its stability
//! argument). A resize is a *pipeline swap at a quiescent point*: under the
//! core lock the current incarnation is drained gracefully (every in-flight
//! batch settles, the manager finishes its cleanup backlog), a new core is
//! spawned at the new width, and every still-unresolved query is re-installed
//! on it at its original snapshot. Re-installed queries restart a full pass —
//! §3.3's wrap protocol makes any complete pass over the snapshot produce the
//! exact answer, so a resize can never drop or duplicate a tuple in a result;
//! it only costs the restarted portion of the scan. Explicit resizes are
//! available through [`CjoinEngine::request_resize`] (any axis, pinned or
//! not), and supervision composes: a degradation is recorded against the
//! scheduler as a forced downscale, and respawns consult the scheduler's
//! effective widths.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use cjoin_common::{Error, FxHashMap, QueryId, QueryIdAllocator, QuerySet, Result};
use cjoin_query::{BoundStarQuery, QueryError, QueryOutcome, QueryResult, StarQuery};
use cjoin_storage::{
    apply_record, segment_ranges, Catalog, ColumnarTable, CompressionPolicy, ContinuousScan,
    PartitionScheme, Row, ScanVolume, SnapshotId, Value, WalRecord, WarehouseLog,
    DEFAULT_ROW_GROUP_ROWS,
};

use crate::colscan::ColumnarScanCursor;
use crate::config::{CjoinConfig, StageLayout};
use crate::dimension::DimensionTable;
use crate::distributor::{Distributor, ShardMerger, ShardRouter};
use crate::fault::{inject, FaultSite};
use crate::filter::FilterChain;
use crate::optimizer::reorder_filters;
use crate::pipeline::{
    run_stage_worker, spawn_supervised, RoleFailure, RoleKind, StagePlan, SupervisorEvent,
};
use crate::pool::BatchPool;
use crate::preprocessor::{
    PartitionPlan, Preprocessor, PreprocessorCommand, PreprocessorContext, ScanCoordinator,
    ScanMessage, ScanStall,
};
use crate::progress::QueryProgress;
use crate::queue::{ShardQueues, TupleQueue};
use crate::scheduler::{Axis, ResizeReason, SchedulerTick, StageScheduler};
use crate::stats::{
    ColumnarScanStats, FilterStatsSnapshot, IngestCounters, PipelineStats, ScanWorkerCounters,
    ShardCounters, SharedCounters,
};
use crate::tuple::{Message, QueryRuntime};

/// A registered query's admission-side bookkeeping (used by Algorithm 2 at cleanup).
#[derive(Debug)]
struct Registered {
    referenced_dims: Vec<String>,
}

/// State shared between admissions (caller threads), the manager thread and the
/// supervisor.
#[derive(Debug)]
struct AdmissionState {
    allocator: QueryIdAllocator,
    registered: FxHashMap<u32, Registered>,
    /// Active queries' runtimes, for the supervisor (fail them all on a role
    /// death), the deadline reaper, and elastic resizes (re-install them all
    /// on the new pipeline incarnation). Only populated when supervision or
    /// auto-tune is on: without either, nothing would ever drain a crashed
    /// pipeline's entries, and a pinned `result_tx` would turn the
    /// pre-supervision disconnect error into a hang.
    runtimes: FxHashMap<u32, Arc<QueryRuntime>>,
}

/// Handle to a query registered with the CJOIN pipeline.
#[derive(Debug)]
pub struct QueryHandle {
    id: QueryId,
    name: String,
    result_rx: Receiver<QueryOutcome>,
    submitted_at: Instant,
    submission_time: Duration,
    progress: Arc<QueryProgress>,
    /// Cancellation hooks (`None` for queries shed at admission, which never
    /// entered the pipeline). The runtime is held weakly so the handle never
    /// pins the result channel of a query the pipeline already dropped.
    cancel: Option<(Weak<QueryRuntime>, Sender<ScanMessage>)>,
}

impl QueryHandle {
    /// The CJOIN-internal id assigned to the query.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time spent in admission: from submission until the query-start control tuple
    /// entered the pipeline (the paper's "submission time", Tables 1–3).
    pub fn submission_time(&self) -> Duration {
        self.submission_time
    }

    /// Blocks until the query resolves: its result on success, or a typed
    /// [`QueryError`] if a pipeline role died, the deadline passed, the query
    /// was cancelled, or it was shed at admission. Never hangs on a dead
    /// pipeline — the supervisor resolves in-flight queries on failure, and a
    /// torn-down pipeline dropping the runtime disconnects the channel.
    pub fn wait(self) -> QueryOutcome {
        match self.result_rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(QueryError::StageFailed {
                role: "pipeline".into(),
                detail: "pipeline shut down before the query completed".into(),
            }),
        }
    }

    /// Blocks until the query completes, returning the result together with the
    /// total response time (submission to completion).
    ///
    /// # Errors
    /// Fails with the query's typed [`QueryError`] (converted to [`Error`]) if
    /// it did not complete.
    pub fn wait_with_time(self) -> Result<(QueryResult, Duration)> {
        let started = self.submitted_at;
        let result = self.wait().map_err(Error::from)?;
        Ok((result, started.elapsed()))
    }

    /// Returns the outcome if it is already available, without blocking.
    pub fn try_result(&self) -> Option<QueryOutcome> {
        self.result_rx.try_recv().ok()
    }

    /// Cancels the query: the handle resolves to [`QueryError::Cancelled`] and
    /// the scan front-end retires the query at its next command boundary
    /// (partial state released through the normal finalize path, so
    /// exactly-once bookkeeping and id recycling are preserved). No-op if the
    /// query already resolved.
    pub fn cancel(&self) {
        let Some((runtime, cmd_tx)) = &self.cancel else {
            return;
        };
        let Some(runtime) = runtime.upgrade() else {
            return;
        };
        runtime.mark_cancelled();
        if runtime.resolve(Err(QueryError::Cancelled)) {
            let _ = cmd_tx.send(ScanMessage::Command(PreprocessorCommand::Cancel {
                id: self.id,
            }));
        }
    }

    /// The query's progress tracker (§3.2.3): the continuous scan position serves as
    /// a reliable progress indicator, and the observed rate gives an estimated time
    /// of completion.
    pub fn progress(&self) -> &Arc<QueryProgress> {
        &self.progress
    }
}

struct PipelineThreads {
    /// Scan front-end: the single classic Preprocessor, or one thread per segment
    /// scan worker.
    scan_workers: Vec<JoinHandle<()>>,
    /// The admission coordinator (sharded scan front-end only).
    scan_coordinator: Option<JoinHandle<()>>,
    workers: Vec<Vec<JoinHandle<()>>>,
    /// The aggregation-stage router (sharded mode only).
    router: Option<JoinHandle<()>>,
    /// Aggregation workers: the single Distributor, or one worker per shard.
    distributors: Vec<JoinHandle<()>>,
    /// The end-barrier merger (sharded mode only).
    merger: Option<JoinHandle<()>>,
    manager: JoinHandle<()>,
}

/// One incarnation of the always-on pipeline: its threads, queues, per-core
/// counters and scan layout. The supervisor replaces the whole core after a
/// role failure; state that must survive restarts (filter chain, dimension
/// tables, admission registry, global counters) lives in [`EngineShared`].
struct PipelineCore {
    cmd_tx: Sender<ScanMessage>,
    stage_queues: Vec<TupleQueue>,
    distributor_queue: TupleQueue,
    stage_plan: StagePlan,
    partition_info: Option<PartitionInfo>,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    shard_counters: Vec<Arc<ShardCounters>>,
    scan_worker_counters: Vec<Arc<ScanWorkerCounters>>,
    /// The compressed columnar scan front-end's replica and byte-accounting
    /// counters (`None` unless `CjoinConfig::columnar_scan` is enabled).
    columnar: Option<(Arc<ColumnarTable>, Arc<ScanVolume>)>,
    /// The segmented front-end's stall gate (sharded scan only), opened during
    /// teardown so parked workers can observe shutdown.
    stall: Option<Arc<ScanStall>>,
    /// Failure poison: set by the supervisor *after* it resolved every
    /// in-flight query, releasing drain barriers that would otherwise wait
    /// forever on batches a dead role will never drain.
    poison: Arc<AtomicBool>,
    threads: PipelineThreads,
}

/// State shared by the engine facade, the pipeline core(s) and the supervisor;
/// everything here survives a pipeline restart.
struct EngineShared {
    catalog: Arc<Catalog>,
    /// The engine-lifetime concurrency cap (never degraded: bit-vector widths
    /// and the id allocator are sized by it).
    max_concurrency: usize,
    /// Whether roles run under panic supervision (fixed at start).
    supervision: bool,
    chain: Arc<FilterChain>,
    slot_count: Arc<AtomicUsize>,
    counters: Arc<SharedCounters>,
    admission: Arc<Mutex<AdmissionState>>,
    /// The current — possibly degraded — configuration used for (re)spawns.
    config: Mutex<CjoinConfig>,
    /// The live pipeline; `None` while the supervisor is replacing it (or if a
    /// respawn failed, in which case submissions report the engine down).
    core: Mutex<Option<PipelineCore>>,
    shutdown_flag: Arc<AtomicBool>,
    failure_tx: Sender<SupervisorEvent>,
    /// Human-readable log of degradations the supervisor applied.
    degradations: Mutex<Vec<String>>,
    /// The elastic stage scheduler: source of truth for the effective width of
    /// every governed parallelism axis (see [`crate::scheduler`]).
    scheduler: StageScheduler,
    /// Whether elastic scheduling is on (`CjoinConfig::auto_tune` at start).
    /// Gates the runtimes registry and the mid-install resize handshake.
    elastic: bool,
    /// Incremented every time a fresh [`PipelineCore`] is placed (start,
    /// supervisor respawn, elastic resize). A submission that loses its core
    /// mid-install compares epochs to tell "a resize swapped the pipeline and
    /// re-installed my query" from "the pipeline genuinely died".
    core_epoch: AtomicU64,
    /// The write-ahead log behind the durable ingestion path (`None` without
    /// `CjoinConfig::wal_path`). Serializes ingestion batches: exactly one
    /// commit is in flight at a time, which is the single-writer premise of
    /// the log's concurrency argument. Lock order: ingest before core — the
    /// commit path may trigger a tail-compaction pipeline swap, and nothing
    /// takes this lock while holding the core lock.
    ingest: Mutex<Option<WarehouseLog>>,
    /// Durable-ingestion counters surfaced through [`PipelineStats::ingest`].
    ingest_counters: IngestCounters,
}

/// The CJOIN engine: one always-on pipeline over a catalog's fact table.
pub struct CjoinEngine {
    shared: Arc<EngineShared>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// The elastic tuner thread (`None` when auto-tune is off or nothing is
    /// governed).
    tuner: Mutex<Option<JoinHandle<()>>>,
}

#[derive(Debug, Clone)]
struct PartitionInfo {
    scheme: PartitionScheme,
    column_name: String,
    /// `rows_per_partition[w][p]` = rows of partition `p` that lie in scan worker
    /// `w`'s segment (one segment covering the whole table in classic mode), so
    /// per-worker pruning plans sum to the classic whole-table plan.
    rows_per_partition: Vec<Vec<u64>>,
}

impl CjoinEngine {
    /// Starts the always-on pipeline over `catalog`'s fact table.
    ///
    /// # Errors
    /// Fails if the configuration is invalid or the catalog has no fact table.
    pub fn start(catalog: Arc<Catalog>, config: CjoinConfig) -> Result<Self> {
        config.validate()?;
        // Durable ingestion: replay the WAL into the catalog *before* the
        // pipeline spawns, so the continuous scan (and the columnar replica,
        // which is built from the fact table at spawn) sees every recovered
        // row, and the snapshot watermark is already past every recovered
        // epoch. Replay truncates any torn tail, so the log then opens at a
        // clean record boundary for appending.
        let mut recovery_truncations = 0;
        let ingest_log = if let Some(path) = &config.wal_path {
            inject(&config.fault_plan, FaultSite::WalReplay);
            let report = WarehouseLog::replay_into(path, &catalog)?;
            if let (Some(at), Some(defect)) = (report.truncated_at, report.defect) {
                recovery_truncations = 1;
                eprintln!(
                    "cjoin: wal recovery truncated {} at byte {at} ({defect}); \
                     {} records of {} committed epochs recovered, {} uncommitted discarded",
                    path.display(),
                    report.records_applied,
                    report.epochs_committed,
                    report.uncommitted_discarded,
                );
            }
            Some(WarehouseLog::open(path, config.wal_sync)?)
        } else {
            None
        };
        let (failure_tx, failure_rx) = unbounded();
        let scheduler = StageScheduler::new(&config);
        let shared = Arc::new(EngineShared {
            max_concurrency: config.max_concurrency,
            supervision: config.supervision,
            chain: Arc::new(FilterChain::new()),
            slot_count: Arc::new(AtomicUsize::new(0)),
            counters: SharedCounters::new(),
            admission: Arc::new(Mutex::new(AdmissionState {
                allocator: QueryIdAllocator::new(config.max_concurrency),
                registered: FxHashMap::default(),
                runtimes: FxHashMap::default(),
            })),
            config: Mutex::new(config.clone()),
            core: Mutex::new(None),
            shutdown_flag: Arc::new(AtomicBool::new(false)),
            failure_tx,
            degradations: Mutex::new(Vec::new()),
            elastic: config.auto_tune,
            core_epoch: AtomicU64::new(0),
            scheduler,
            catalog,
            ingest: Mutex::new(ingest_log),
            ingest_counters: IngestCounters::default(),
        });
        shared
            .ingest_counters
            .recovery_truncations
            .store(recovery_truncations, Ordering::Relaxed);
        let core = Self::spawn_pipeline(&shared, &config)?;
        *shared.core.lock() = Some(core);
        shared.core_epoch.fetch_add(1, Ordering::Release);
        let supervisor = if config.supervision {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cjoin-supervisor".into())
                    .spawn(move || run_supervisor(shared, failure_rx))
                    .map_err(|e| {
                        Error::invalid_state(format!("failed to spawn supervisor: {e}"))
                    })?,
            )
        } else {
            None
        };
        // The tuner only runs when there is something to tune: auto-tune on
        // and at least one axis left at its default for the scheduler to
        // govern. Fully pinned engines never pay for the thread.
        let tuner = if shared.scheduler.any_governed() {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cjoin-tuner".into())
                    .spawn(move || run_tuner(shared))
                    .map_err(|e| Error::invalid_state(format!("failed to spawn tuner: {e}")))?,
            )
        } else {
            None
        };
        Ok(Self {
            shared,
            supervisor: Mutex::new(supervisor),
            tuner: Mutex::new(tuner),
        })
    }

    /// Builds and spawns one pipeline incarnation against `config`.
    ///
    /// Engine-lifetime state (filter chain, dimension tables, admission
    /// registry, global counters) comes from `shared`, so queries admitted
    /// after a supervisor restart still see their registered dimensions;
    /// everything spawned here (threads, queues, scan layout, per-core
    /// counters) belongs to the returned [`PipelineCore`] and dies with it.
    fn spawn_pipeline(shared: &Arc<EngineShared>, config: &CjoinConfig) -> Result<PipelineCore> {
        // The scheduler owns the effective width of every governed axis;
        // pinned axes keep their (possibly supervisor-degraded) config values.
        // Shadowing here means every spawn site — start, supervisor respawn,
        // elastic resize — derives the same shape from the same source.
        let config = &shared.scheduler.effective_config(config);
        let fact = shared.catalog.fact_table()?;
        let supervised = config.supervision;
        let failure_tx = shared.failure_tx.clone();

        let stage_plan = StagePlan::derive(&config.stage_layout, config.worker_threads)
            .with_distributor_shards(config.distributor_shards)
            .with_scan_workers(config.scan_workers);
        let shards = stage_plan.distributor_shards;
        let scan_workers = stage_plan.scan_workers;
        let chain = Arc::clone(&shared.chain);
        let counters = Arc::clone(&shared.counters);
        let shard_counters = ShardCounters::new_vec(shards);
        let scan_worker_counters = ScanWorkerCounters::new_vec(scan_workers);
        let in_flight = Arc::new(AtomicI64::new(0));
        let poison = Arc::new(AtomicBool::new(false));
        // Enough pooled batches for every queue position plus the threads working on
        // one, including the per-shard queues and sub-batches of the sharded
        // aggregation stage and the per-segment working/leftover batches of the
        // sharded scan front-end.
        let pool_capacity = (stage_plan.num_stages() + 1) * config.queue_capacity
            + stage_plan.total_threads()
            + 2 * scan_workers
            + shards * (config.queue_capacity.max(4) + 1);
        let pool = BatchPool::new(pool_capacity, config.use_batch_pool);

        // The compressed columnar front-end scans a read-optimised replica of the
        // fact table built once at engine start; rows appended later are served
        // from the row store by the hybrid tail path (see `crate::colscan`).
        let columnar = if config.columnar_scan {
            let mut replica = ColumnarTable::from_table(&fact, CompressionPolicy::Adaptive)?;
            // Deterministic fault injection: flip bits in the configured row
            // groups before the replica is shared, so their checksums fail on
            // first decode and the scan quarantines them onto the row store.
            if let Some(plan) = &config.fault_plan {
                for &group in plan.corrupt_groups() {
                    replica.corrupt_group(group);
                }
            }
            let replica = Arc::new(replica);
            let volume = Arc::new(ScanVolume::with_columns(fact.schema().arity()));
            Some((replica, volume))
        } else {
            None
        };

        // The fact table's page range is split into one static segment per scan
        // worker; the last segment's end is open so appended rows keep the classic
        // next-pass semantics. (One whole-table "segment" in classic mode.) The
        // columnar front-end aligns segment boundaries to row groups instead of
        // heap pages, so zone-map skipping never has to split a group between
        // two workers.
        let segment_unit = if columnar.is_some() {
            DEFAULT_ROW_GROUP_ROWS
        } else {
            fact.rows_per_page()
        };
        let scan_ranges = segment_ranges(fact.len() as u64, segment_unit, scan_workers);

        // Partition pruning needs per-partition row counts — per scan segment, so
        // each worker knows when it has covered all the partitions a query cares
        // about within its own segment.
        let partition_info = if config.partition_pruning {
            shared.catalog.fact_partitioning().map(|scheme| {
                let column_name = fact.schema().column(scheme.column).name.clone();
                let mut rows_per_partition =
                    vec![vec![0u64; scheme.num_partitions()]; scan_ranges.len()];
                fact.for_each_visible(SnapshotId(u64::MAX), |row_id, row| {
                    let pid = scheme.partition_of(row.int(scheme.column)).index();
                    // Segment starts are sorted and contiguous from 0, so the
                    // owning segment is the last one starting at or before the
                    // row — a binary search, not a linear scan per row.
                    let segment = scan_ranges
                        .partition_point(|&(start, _)| start <= row_id.0)
                        .saturating_sub(1);
                    rows_per_partition[segment][pid] += 1;
                });
                PartitionInfo {
                    scheme,
                    column_name,
                    rows_per_partition,
                }
            })
        } else {
            None
        };
        let partition_scheme = partition_info
            .as_ref()
            .map(|p| (p.scheme.clone(), p.scheme.column));

        // Queues: one per stage plus the distributor's.
        let stage_queues: Vec<TupleQueue> = (0..stage_plan.num_stages())
            .map(|_| TupleQueue::new(config.queue_capacity))
            .collect();
        let distributor_queue = TupleQueue::new(config.queue_capacity.max(4));

        // Scan front-end: the classic single Preprocessor thread, or one segment
        // worker per scan range plus the admission coordinator (which owns the
        // engine-facing command channel — segment workers also report their
        // per-query pass completions into the same inbox).
        let (cmd_tx, cmd_rx) = unbounded();
        let preprocessor_context = |worker: usize| PreprocessorContext {
            stage_tx: stage_queues[0].sender(),
            distributor_tx: distributor_queue.sender(),
            in_flight: Arc::clone(&in_flight),
            pool: Arc::clone(&pool),
            slot_count: Arc::clone(&shared.slot_count),
            counters: Arc::clone(&counters),
            worker_counters: Arc::clone(&scan_worker_counters[worker]),
            config: config.clone(),
            partition_scheme: partition_scheme.clone(),
            poison: Arc::clone(&poison),
        };
        let mut scan_worker_handles = Vec::with_capacity(scan_workers);
        let mut coordinator_handle = None;
        let mut stall_handle = None;
        if scan_workers == 1 {
            let mut preprocessor = match &columnar {
                Some((replica, volume)) => {
                    let cursor = ColumnarScanCursor::new(
                        Arc::clone(replica),
                        Arc::clone(&fact),
                        Arc::clone(volume),
                    );
                    Preprocessor::new_columnar(cursor, cmd_rx, preprocessor_context(0))
                }
                None => {
                    let scan =
                        ContinuousScan::new(Arc::clone(&fact)).with_batch_rows(config.batch_size);
                    Preprocessor::new(scan, cmd_rx, preprocessor_context(0))
                }
            };
            scan_worker_handles.push(spawn_supervised(
                RoleKind::ScanWorker(0),
                supervised,
                failure_tx.clone(),
                move || preprocessor.run(),
            ));
        } else {
            let stall = ScanStall::new(scan_workers);
            let mut worker_txs = Vec::with_capacity(scan_workers);
            for (worker, &(start, end)) in scan_ranges.iter().enumerate() {
                let (worker_tx, worker_rx) = unbounded();
                worker_txs.push(worker_tx);
                let mut segment_worker = match &columnar {
                    Some((replica, volume)) => {
                        let cursor = ColumnarScanCursor::new(
                            Arc::clone(replica),
                            Arc::clone(&fact),
                            Arc::clone(volume),
                        )
                        .with_segment(start, end);
                        Preprocessor::segment_worker_columnar(
                            cursor,
                            worker_rx,
                            preprocessor_context(worker),
                            worker,
                            cmd_tx.clone(),
                            Arc::clone(&stall),
                        )
                    }
                    None => {
                        let scan = ContinuousScan::new(Arc::clone(&fact))
                            .with_batch_rows(config.batch_size)
                            .with_segment(start, end);
                        Preprocessor::segment_worker(
                            scan,
                            worker_rx,
                            preprocessor_context(worker),
                            worker,
                            cmd_tx.clone(),
                            Arc::clone(&stall),
                        )
                    }
                };
                scan_worker_handles.push(spawn_supervised(
                    RoleKind::ScanWorker(worker),
                    supervised,
                    failure_tx.clone(),
                    move || segment_worker.run(),
                ));
            }
            stall_handle = Some(Arc::clone(&stall));
            let mut coordinator = ScanCoordinator::new(
                cmd_rx,
                worker_txs,
                distributor_queue.sender(),
                Arc::clone(&in_flight),
                Arc::clone(&counters),
                stall,
                config.max_concurrency,
            )
            .with_poison(Arc::clone(&poison))
            .with_faults(config.fault_plan.clone());
            coordinator_handle = Some(spawn_supervised(
                RoleKind::ScanCoordinator,
                supervised,
                failure_tx.clone(),
                move || coordinator.run(),
            ));
        }

        // Stage worker threads.
        let num_stages = stage_plan.num_stages();
        let mut workers: Vec<Vec<JoinHandle<()>>> = Vec::with_capacity(num_stages);
        for (stage_index, &threads) in stage_plan.threads_per_stage.iter().enumerate() {
            let mut stage_workers = Vec::with_capacity(threads);
            for worker_index in 0..threads {
                let input = stage_queues[stage_index].receiver();
                let output = if stage_index + 1 < num_stages {
                    stage_queues[stage_index + 1].sender()
                } else {
                    distributor_queue.sender()
                };
                let chain = Arc::clone(&chain);
                let early_skip = config.early_skip;
                let batched_probing = config.batched_probing;
                let faults = config.fault_plan.clone();
                let handle = spawn_supervised(
                    RoleKind::StageWorker {
                        stage: stage_index,
                        worker: worker_index,
                    },
                    supervised,
                    failure_tx.clone(),
                    move || {
                        run_stage_worker(
                            stage_index,
                            num_stages,
                            input,
                            output,
                            chain,
                            early_skip,
                            batched_probing,
                            faults,
                        )
                    },
                );
                stage_workers.push(handle);
            }
            workers.push(stage_workers);
        }

        // Aggregation stage: a single Distributor, or router + shards + merger.
        let (finished_tx, finished_rx) = unbounded();
        let mut distributor_handles = Vec::with_capacity(shards);
        let mut router_handle = None;
        let mut merger_handle = None;
        if shards == 1 {
            let mut distributor = Distributor::single(
                distributor_queue.receiver(),
                Arc::clone(&in_flight),
                Arc::clone(&pool),
                Arc::clone(&counters),
                Arc::clone(&shard_counters[0]),
                finished_tx,
                config.max_concurrency,
            )
            .with_faults(config.fault_plan.clone());
            distributor_handles.push(spawn_supervised(
                RoleKind::DistributorShard(0),
                supervised,
                failure_tx.clone(),
                move || distributor.run(),
            ));
        } else {
            let shard_queues = ShardQueues::new(shards, config.queue_capacity.max(4));
            let (partials_tx, partials_rx) = unbounded();
            for (shard, shard_counter) in shard_counters.iter().enumerate() {
                let mut worker = Distributor::sharded(
                    shard,
                    shard_queues.shard(shard).receiver(),
                    Arc::clone(&in_flight),
                    Arc::clone(&pool),
                    Arc::clone(&counters),
                    Arc::clone(shard_counter),
                    partials_tx.clone(),
                    config.max_concurrency,
                )
                .with_faults(config.fault_plan.clone());
                distributor_handles.push(spawn_supervised(
                    RoleKind::DistributorShard(shard),
                    supervised,
                    failure_tx.clone(),
                    move || worker.run(),
                ));
            }
            // The merger must observe the channel disconnect once every shard
            // exits, so the engine keeps no sender of its own.
            drop(partials_tx);
            // The router gets a sender-only handle; `shard_queues` drops at the end
            // of this block, leaving each worker as the sole receiver of its queue
            // so a dead shard surfaces as a send error rather than a blocked send.
            let mut router = ShardRouter::new(
                distributor_queue.receiver(),
                shard_queues.senders(),
                Arc::clone(&in_flight),
                Arc::clone(&pool),
                config.batch_size,
                config.max_concurrency,
            )
            .with_faults(config.fault_plan.clone());
            router_handle = Some(spawn_supervised(
                RoleKind::ShardRouter,
                supervised,
                failure_tx.clone(),
                move || router.run(),
            ));
            let mut merger =
                ShardMerger::new(partials_rx, shards, Arc::clone(&counters), finished_tx)
                    .with_faults(config.fault_plan.clone());
            merger_handle = Some(spawn_supervised(
                RoleKind::ShardMerger,
                supervised,
                failure_tx.clone(),
                move || merger.run(),
            ));
        }

        // Manager thread: Algorithm 2 cleanup + adaptive filter ordering.
        let manager_handle = {
            let chain = Arc::clone(&chain);
            let admission = Arc::clone(&shared.admission);
            let counters = Arc::clone(&counters);
            let config = config.clone();
            let shutdown_flag = Arc::clone(&shared.shutdown_flag);
            spawn_supervised(RoleKind::Manager, supervised, failure_tx, move || {
                run_manager(
                    finished_rx,
                    chain,
                    admission,
                    counters,
                    config,
                    shutdown_flag,
                )
            })
        };

        Ok(PipelineCore {
            cmd_tx,
            stage_queues,
            distributor_queue,
            stage_plan,
            partition_info,
            in_flight,
            pool,
            shard_counters,
            scan_worker_counters,
            columnar,
            stall: stall_handle,
            poison,
            threads: PipelineThreads {
                scan_workers: scan_worker_handles,
                scan_coordinator: coordinator_handle,
                workers,
                router: router_handle,
                distributors: distributor_handles,
                merger: merger_handle,
                manager: manager_handle,
            },
        })
    }

    /// The engine's current — possibly supervisor-degraded — configuration.
    pub fn config(&self) -> CjoinConfig {
        self.shared.config.lock().clone()
    }

    /// The catalog the engine runs over.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// Number of currently registered queries.
    pub fn active_queries(&self) -> usize {
        self.shared.admission.lock().registered.len()
    }

    /// Human-readable log of the graceful degradations the supervisor applied
    /// after role failures (empty while the pipeline runs at full layout).
    pub fn degradations(&self) -> Vec<String> {
        self.shared.degradations.lock().clone()
    }

    /// The completion-time quote admission sheds deadlines against: measured
    /// submit→install latency (EWMA) plus one full scan cycle at the scan's
    /// current rate. `None` until a first pass completes (nothing measured yet
    /// — deadline queries are then admitted optimistically).
    ///
    /// The cycle term prefers the *live* in-pass rate — rows covered and busy
    /// time accumulated in the current pass, extrapolated to the full cycle —
    /// once the pass has covered enough rows for the sample to mean something;
    /// otherwise it falls back to the last completed pass's busy time. Both
    /// clocks count only busy scan time, so an engine that idled mid-pass
    /// quotes its true scan cost instead of the idle-inflated wall time that
    /// used to over-shed, and the install EWMA term covers the submit→install
    /// backlog that used to cause under-shedding.
    pub fn quote_eta(&self) -> Option<Duration> {
        let c = &self.shared.counters;
        let last_pass_ns = c.last_pass_ns.load(Ordering::Relaxed);
        let cycle_rows = c.cycle_rows.load(Ordering::Relaxed);
        let live_rows = c.pass_rows.load(Ordering::Relaxed);
        let live_busy_ns = c.pass_busy_ns.load(Ordering::Relaxed);
        // A live sample is trustworthy once it covers a quarter of the cycle
        // (and at least a batch or two, so a fresh pass doesn't extrapolate
        // from noise).
        let live_is_meaningful =
            cycle_rows > 0 && live_busy_ns > 0 && live_rows >= (cycle_rows / 4).max(128);
        let cycle_ns = if live_is_meaningful {
            (live_busy_ns as u128 * cycle_rows as u128 / live_rows as u128) as u64
        } else {
            last_pass_ns
        };
        if cycle_ns == 0 {
            return None;
        }
        let install_ns = c.install_ns_ewma.load(Ordering::Relaxed);
        Some(Duration::from_nanos(install_ns.saturating_add(cycle_ns)))
    }

    /// Registers a star query with the always-on pipeline (Algorithm 1) and returns a
    /// handle to wait for its result.
    ///
    /// # Errors
    /// Fails if the engine is shut down, the query does not bind against the catalog,
    /// the `maxConc` limit is reached, or the query joins a dimension through
    /// different key columns than an earlier query (role-playing dimensions are not
    /// supported by a single CJOIN operator).
    pub fn submit(&self, query: StarQuery) -> Result<QueryHandle> {
        if self.shared.shutdown_flag.load(Ordering::Acquire) {
            return Err(Error::invalid_state("engine is shut down"));
        }
        let submitted_at = Instant::now();
        let bound = query.bind(&self.shared.catalog)?;
        let snapshot = bound
            .snapshot
            .unwrap_or_else(|| self.shared.catalog.snapshots().current());

        // ---- Deadline admission control ----------------------------------------
        // A fresh query must wait for at least one full scan cycle, so if the
        // quoted completion estimate already exceeds the query's deadline,
        // admitting it would only burn shared-scan work on a result nobody can
        // use in time: shed it now, without touching any pipeline state. The
        // quote comes from `quote_eta` — install-latency EWMA plus one cycle at
        // the scan's *current measured rate* — not the raw last full-pass wall
        // time, which over-shed after idle periods and under-shed under
        // install backlog.
        if let Some(deadline) = query.deadline {
            if let Some(estimated) = self.quote_eta() {
                if estimated > deadline {
                    let (result_tx, result_rx) = bounded(1);
                    let _ = result_tx.send(Err(QueryError::ShedAtAdmission {
                        deadline,
                        estimated,
                    }));
                    return Ok(QueryHandle {
                        id: QueryId(u32::MAX),
                        name: query.name,
                        result_rx,
                        submitted_at,
                        submission_time: submitted_at.elapsed(),
                        progress: Arc::new(QueryProgress::new(0)),
                        cancel: None,
                    });
                }
            }
        }

        // Hold the core lock across admission + registration (NOT across the
        // installation ack wait — see below). Registering under the lock means
        // a concurrent supervisor restart either finishes strictly before this
        // query registers (and it installs cleanly on the fresh pipeline), or
        // observes it in the runtimes registry and resolves it like any other
        // in-flight query. A stale install can never corrupt a recycled id:
        // the install is sent on *this* core's command channel, and a restarted
        // core has a fresh channel, so the message is fenced to the dead
        // incarnation.
        let core_guard = self.shared.core.lock();
        let Some(core) = core_guard.as_ref() else {
            return Err(Error::invalid_state("pipeline is not running"));
        };

        // ---- Algorithm 1, lines 1–16: update dimension hash tables -------------
        let mut admission = self.shared.admission.lock();
        let id = admission.allocator.allocate()?;
        let others = QuerySet::from_bits(
            self.shared.max_concurrency,
            admission.registered.keys().map(|&k| k as usize),
        );

        let mut referenced_dims = Vec::with_capacity(bound.dimensions.len());
        let mut slot_map = Vec::with_capacity(bound.dimensions.len());
        let mut admit = || -> Result<()> {
            for clause in &bound.dimensions {
                let dim_table = match self.shared.chain.find(&clause.table) {
                    Some(existing) => {
                        if existing.fact_fk_column != clause.fact_fk_column
                            || existing.dim_key_column != clause.dim_key_column
                        {
                            return Err(Error::invalid_state(format!(
                                "dimension '{}' is already registered with different join columns",
                                clause.table
                            )));
                        }
                        existing
                    }
                    None => {
                        let slot = self.shared.slot_count.fetch_add(1, Ordering::AcqRel);
                        let table = Arc::new(DimensionTable::new(
                            clause.table.clone(),
                            slot,
                            clause.fact_fk_column,
                            clause.dim_key_column,
                            self.shared.max_concurrency,
                            &others,
                        ));
                        self.shared.chain.push(Arc::clone(&table));
                        table
                    }
                };
                // Evaluate σ_cij(Dj) against the dimension table and load the result.
                let dimension = self.shared.catalog.table(&clause.table)?;
                let rows: Vec<(i64, Row)> = dimension
                    .select(snapshot, |row| clause.predicate.eval(row))
                    .into_iter()
                    .map(|(_, row)| (row.int(clause.dim_key_column), row))
                    .collect();
                dim_table.register_query(id, &rows);
                referenced_dims.push(clause.table.clone());
                slot_map.push(dim_table.slot);
            }
            Ok(())
        };
        if let Err(e) = admit() {
            // Roll back: clear whatever this query managed to register.
            for dim in self.shared.chain.snapshot() {
                let referenced = referenced_dims.contains(&dim.name);
                let empty = dim.unregister_query(id, referenced);
                if empty {
                    self.shared.chain.remove(&dim.name);
                }
            }
            let _ = admission.allocator.release(id);
            return Err(e);
        }
        // Dimensions in the pipeline that this query does not reference implicitly
        // accept every tuple for it.
        for dim in self.shared.chain.snapshot() {
            if !referenced_dims.contains(&dim.name) {
                dim.register_unreferencing_query(id);
            }
        }

        // ---- Partition pruning plans (§5), one per scan worker ------------------
        let partition = partition_plans(core.partition_info.as_ref(), &bound);

        // ---- Algorithm 1, lines 17–22: install in Preprocessor & Distributor ----
        let fact_predicate = if bound.fact_predicate_is_true {
            None
        } else {
            Some(bound.fact_predicate.clone())
        };
        let (result_tx, result_rx) = bounded(1);
        let progress = Arc::new(
            QueryProgress::new(self.shared.catalog.fact_table()?.len() as u64)
                .with_segments(core.stage_plan.scan_workers as u64),
        );
        let runtime = Arc::new(QueryRuntime {
            id,
            name: query.name.clone(),
            bound: Arc::new(bound),
            slot_map,
            result_tx,
            resolved: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            deadline_at: query.deadline.map(|d| submitted_at + d),
            admitted_at: submitted_at,
            snapshot,
            progress: Arc::clone(&progress),
        });
        admission
            .registered
            .insert(id.0, Registered { referenced_dims });
        if self.shared.supervision || self.shared.elastic {
            admission.runtimes.insert(id.0, Arc::clone(&runtime));
        }
        let cmd_tx = core.cmd_tx.clone();
        let install_epoch = self.shared.core_epoch.load(Ordering::Acquire);
        drop(admission);
        // Release the core lock BEFORE waiting for the installation ack. The
        // scan front-end acks at its own pace (it may be mid-stall behind a
        // drain barrier), and if it dies instead, only the supervisor can
        // resolve this query — by taking this same lock. Waiting under the
        // lock would deadlock the whole engine: supervisor blocked on the
        // lock, this thread blocked on an ack only the supervisor can unblock.
        drop(core_guard);

        let (ack_tx, ack_rx) = bounded(1);
        let install = ScanMessage::Command(PreprocessorCommand::Install {
            runtime: Arc::clone(&runtime),
            fact_predicate,
            snapshot,
            partition,
            ack: Some(ack_tx),
        });
        // Failure-aware ack wait. A plain blocking `recv` can hang forever: a
        // message queued when its receiver dies is retained, not destroyed
        // (`queue::tests::queued_messages_survive_receiver_drop`), so the ack
        // sender inside a ghost install never drops. Instead poll, and between
        // polls (a) check whether the supervisor already resolved this query
        // (its outcome is in the result channel — surface it via the handle),
        // and (b) probe the command channel, which errors once the front-end
        // receiver is gone.
        let mut installed = cmd_tx.send(install).is_ok();
        if installed {
            installed = loop {
                match ack_rx.recv_timeout(Duration::from_millis(10)) {
                    Ok(()) => break true,
                    Err(RecvTimeoutError::Disconnected) => break false,
                    Err(RecvTimeoutError::Timeout) => {
                        if runtime.resolved.load(Ordering::Acquire) {
                            break true;
                        }
                        if cmd_tx
                            .send(ScanMessage::Command(PreprocessorCommand::Probe))
                            .is_err()
                        {
                            break false;
                        }
                    }
                }
            };
        }
        if !installed && !self.shared.supervision {
            // With elastic scheduling the install can also die because a
            // concurrent resize swapped the pipeline between releasing the
            // core lock and the ack: the resize collected this query from the
            // runtimes registry (it registered under the previous core-lock
            // epoch) and re-installed it on the new incarnation, so the handle
            // is live and rolling back here would corrupt id recycling. The
            // core epoch distinguishes the two cases; the check and the
            // rollback run under the core lock so no resize can interleave
            // between deciding "the pipeline died" and releasing the id.
            let rollback = if self.shared.elastic {
                let _core_guard = self.shared.core.lock();
                let swapped = self.shared.core_epoch.load(Ordering::Acquire) != install_epoch;
                if !swapped && !runtime.resolved.load(Ordering::Acquire) {
                    cleanup_query(id, &self.shared.chain, &self.shared.admission);
                    true
                } else {
                    false
                }
            } else {
                // Unsupervised, non-elastic: roll the whole admission back
                // (dimension registrations, registry entry, query id) so a
                // failed installation cannot leak the id or leave ghost bits
                // in the dimension hash tables.
                cleanup_query(id, &self.shared.chain, &self.shared.admission);
                true
            };
            if rollback {
                return Err(Error::invalid_state(
                    "pipeline stopped during query installation",
                ));
            }
        }
        // Supervised and not installed: do NOT clean up here — the query is in
        // the runtimes registry, and the role death that broke the install is
        // (or will be) a failure the supervisor handles by resolving and
        // cleaning every registered query. Rolling back here too would release
        // the id twice, corrupting whichever later query recycled it. The
        // returned handle resolves with the supervisor's typed error.
        let submission_time = submitted_at.elapsed();

        // Fold this submit→install latency into the EWMA (α = 1/8) the
        // deadline quote charges for admission overhead.
        let install_ns = submission_time.as_nanos() as u64;
        let ewma = &self.shared.counters.install_ns_ewma;
        let prev = ewma.load(Ordering::Relaxed);
        let next = if prev == 0 {
            install_ns
        } else {
            prev - prev / 8 + install_ns / 8
        };
        ewma.store(next, Ordering::Relaxed);

        if self.shared.supervision && runtime.deadline_at.is_some() {
            // Nudge the supervisor so the reaper tracks the fresh deadline
            // promptly; its bounded reap interval means a stream of these can
            // never starve reaping.
            let _ = self
                .shared
                .failure_tx
                .send(SupervisorEvent::DeadlineAdmitted);
        }

        Ok(QueryHandle {
            id,
            name: query.name,
            result_rx,
            submitted_at,
            submission_time,
            progress,
            cancel: Some((Arc::downgrade(&runtime), cmd_tx)),
        })
    }

    /// Convenience: submits a query and blocks until its result is available.
    ///
    /// # Errors
    /// Propagates submission errors and the query's typed [`QueryError`]
    /// (converted to [`Error`]).
    pub fn execute(&self, query: StarQuery) -> Result<QueryResult> {
        self.submit(query)?.wait().map_err(Error::from)
    }

    /// A point-in-time snapshot of pipeline statistics.
    pub fn stats(&self) -> PipelineStats {
        let filters = self
            .shared
            .chain
            .snapshot()
            .iter()
            .map(|f| {
                let (tuples_in, tuples_dropped, probes, skips) = f.stats.snapshot();
                FilterStatsSnapshot {
                    dimension: f.name.clone(),
                    entries: f.len(),
                    tuples_in,
                    tuples_dropped,
                    probes,
                    skips,
                }
            })
            .collect();
        let counters = &self.shared.counters;
        let core_guard = self.shared.core.lock();
        let core = core_guard.as_ref();
        PipelineStats {
            tuples_scanned: counters.tuples_scanned.load(Ordering::Relaxed),
            batches_sent: counters.batches_sent.load(Ordering::Relaxed),
            tuples_distributed: counters.tuples_distributed.load(Ordering::Relaxed),
            routings: counters.routings.load(Ordering::Relaxed),
            scan_passes: counters.scan_passes.load(Ordering::Relaxed),
            queries_admitted: counters.queries_admitted.load(Ordering::Relaxed),
            queries_completed: counters.queries_completed.load(Ordering::Relaxed),
            active_queries: self.active_queries(),
            filter_reorders: counters.filter_reorders.load(Ordering::Relaxed),
            control_barriers: counters.control_barriers.load(Ordering::Relaxed),
            barrier_wait_ns: counters.barrier_wait_ns.load(Ordering::Relaxed),
            filters,
            scan_workers: core
                .map(|c| {
                    c.scan_worker_counters
                        .iter()
                        .enumerate()
                        .map(|(worker, c)| c.snapshot(worker))
                        .collect()
                })
                .unwrap_or_default(),
            distributor_shards: core
                .map(|c| {
                    c.shard_counters
                        .iter()
                        .enumerate()
                        .map(|(shard, c)| c.snapshot(shard))
                        .collect()
                })
                .unwrap_or_default(),
            batches_in_flight: core.map_or(0, |c| c.in_flight.load(Ordering::Acquire)),
            pool_hits: core.map_or(0, |c| c.pool.hits()),
            pool_misses: core.map_or(0, |c| c.pool.misses()),
            tuples_allocated: counters.tuples_allocated.load(Ordering::Relaxed),
            tuples_recycled: counters.tuples_recycled.load(Ordering::Relaxed),
            role_failures: counters.role_failures.load(Ordering::Relaxed),
            pipeline_restarts: counters.pipeline_restarts.load(Ordering::Relaxed),
            columnar: core
                .and_then(|c| c.columnar.as_ref())
                .map(|(_, volume)| ColumnarScanStats {
                    bytes_scanned: volume.bytes_scanned(),
                    rows_scanned: volume.rows_scanned(),
                    row_groups_skipped: volume.row_groups_skipped(),
                    rows_predicate_skipped: volume.rows_predicate_skipped(),
                    groups_quarantined: volume.groups_quarantined(),
                    predicate_probes: volume.predicate_probes(),
                    predicate_rows: volume.predicate_rows(),
                    column_bytes: volume.column_bytes(),
                }),
            scheduler: self.shared.scheduler.snapshot(),
            ingest: self.shared.ingest_counters.snapshot(),
        }
    }

    /// The elastic stage scheduler's snapshot: current per-axis widths,
    /// governed axes, resize events and the tuning policy's last verdict.
    pub fn scheduler_stats(&self) -> crate::scheduler::SchedulerStats {
        self.shared.scheduler.snapshot()
    }

    /// Explicitly resizes one parallelism axis to `width` at the next pass
    /// boundary: the current pipeline incarnation is drained gracefully, a new
    /// one is spawned at the new width, and every in-flight query is
    /// re-installed on it at its original snapshot (restarting its pass, which
    /// by the wrap protocol changes nothing about its answer). Works on pinned
    /// axes too — an explicit request outranks both the builder pin and the
    /// tuning policy, and resets the policy's hysteresis clock.
    ///
    /// # Errors
    /// Fails if `width` is zero or exceeds the axis's hard cap (64 scan
    /// workers, 256 distributor shards), if the engine is shut down, or if the
    /// replacement pipeline could not be spawned.
    pub fn request_resize(&self, axis: Axis, width: usize) -> Result<()> {
        if width == 0 {
            return Err(Error::invalid_state("axis width must be at least 1"));
        }
        let cap = match axis {
            Axis::ScanWorkers => 64,
            Axis::StageWorkers => usize::MAX,
            Axis::DistributorShards => 256,
        };
        if width > cap {
            return Err(Error::invalid_state(format!(
                "{} width {width} exceeds the hard cap of {cap}",
                axis.label()
            )));
        }
        apply_resize(&self.shared, axis, width, ResizeReason::Forced)
    }

    /// The read-optimised columnar replica of the fact table, when the engine
    /// runs with `CjoinConfig::columnar_scan` (for compression-ratio reporting
    /// by the experiment harness).
    pub fn columnar_replica(&self) -> Option<Arc<ColumnarTable>> {
        let core = self.shared.core.lock();
        core.as_ref()
            .and_then(|c| c.columnar.as_ref())
            .map(|(replica, _)| Arc::clone(replica))
    }

    /// Current filter order (dimension names), for diagnostics and tests.
    pub fn filter_order(&self) -> Vec<String> {
        self.shared.chain.order()
    }

    /// Opens an ingestion session. Mutations buffer in the session and are
    /// applied atomically — and, with `CjoinConfig::wal_path` configured,
    /// durably — by [`IngestSession::commit`]; dropping the session without
    /// committing discards the batch with no trace.
    pub fn ingest_session(&self) -> IngestSession<'_> {
        IngestSession {
            shared: &self.shared,
            records: Vec::new(),
        }
    }

    /// Shuts the pipeline down and joins all threads (including the
    /// supervisor). Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown_flag.store(true, Ordering::Release);
        let core = self.shared.core.lock().take();
        if let Some(core) = core {
            teardown_core(core, false);
        }
        // The supervisor and the tuner observe the shutdown flag within one
        // tick each.
        if let Some(supervisor) = self.supervisor.lock().take() {
            let _ = supervisor.join();
        }
        if let Some(tuner) = self.tuner.lock().take() {
            let _ = tuner.join();
        }
        // Resolve queries that were still in flight so their handles don't
        // block on a registry-pinned result channel (first-wins latch: queries
        // that completed during the drain already delivered their result).
        let leftover: Vec<Arc<QueryRuntime>> = {
            let mut admission = self.shared.admission.lock();
            admission.runtimes.drain().map(|(_, rt)| rt).collect()
        };
        for runtime in leftover {
            runtime.resolve(Err(QueryError::StageFailed {
                role: "engine".into(),
                detail: "engine shut down before the query completed".into(),
            }));
        }
    }

    /// The derived stage plan (diagnostics / tests; reflects the current —
    /// possibly supervisor-degraded — pipeline incarnation).
    pub fn stage_plan(&self) -> StagePlan {
        self.shared
            .core
            .lock()
            .as_ref()
            .map(|c| c.stage_plan.clone())
            .unwrap_or_else(|| {
                let config = self.shared.config.lock();
                StagePlan::derive(&config.stage_layout, config.worker_threads)
                    .with_distributor_shards(config.distributor_shards)
                    .with_scan_workers(config.scan_workers)
            })
    }
}

impl Drop for CjoinEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One buffered ingestion batch against a [`CjoinEngine`] (see
/// [`CjoinEngine::ingest_session`]).
///
/// The commit protocol makes the batch atomic under real snapshot isolation:
///
/// 1. every record is validated against the catalog (nothing unreplayable is
///    ever logged),
/// 2. a fresh *pending* epoch is allocated from the snapshot manager — pending
///    epochs are invisible: no query can be admitted at one,
/// 3. the records are appended to the WAL under that epoch and the epoch's
///    commit marker is made durable per the configured [`SyncPolicy`]
///    (`cjoin_storage::SyncPolicy`),
/// 4. only then are the mutations applied to the tables (`xmin` = the epoch)
///    and the epoch published through the snapshot manager's committed
///    watermark.
///
/// A crash anywhere before step 4 leaves nothing visible: queries in flight
/// are pinned at older snapshots, recovery replays only epochs whose commit
/// marker survived, and an unpublished epoch has no rows. A crash after the
/// marker is durable replays the whole batch — never a part of it.
pub struct IngestSession<'a> {
    shared: &'a Arc<EngineShared>,
    records: Vec<WalRecord>,
}

impl IngestSession<'_> {
    /// Buffers one fact row for appending.
    pub fn append_fact(&mut self, row: Vec<Value>) -> &mut Self {
        // Contiguous fact rows share one WAL record; a dimension mutation in
        // between starts a new one, preserving the batch's mutation order.
        if let Some(WalRecord::FactAppend { rows }) = self.records.last_mut() {
            rows.push(row);
        } else {
            self.records.push(WalRecord::FactAppend { rows: vec![row] });
        }
        self
    }

    /// Buffers a dimension upsert: the row whose `key_column` equals the new
    /// row's key is replaced (old versions stay visible to older snapshots).
    pub fn upsert_dimension(
        &mut self,
        table: impl Into<String>,
        key_column: usize,
        row: Vec<Value>,
    ) -> &mut Self {
        self.records.push(WalRecord::DimUpsert {
            table: table.into(),
            key_column,
            row,
        });
        self
    }

    /// Buffers a dimension delete by key.
    pub fn delete_dimension(
        &mut self,
        table: impl Into<String>,
        key_column: usize,
        key: i64,
    ) -> &mut Self {
        self.records.push(WalRecord::DimDelete {
            table: table.into(),
            key_column,
            key,
        });
        self
    }

    /// Mutation records buffered so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the session holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Discards the batch without a trace (equivalent to dropping).
    pub fn abort(self) {}

    /// Commits the batch (see the type docs for the protocol), returning what
    /// became durable and visible.
    ///
    /// # Errors
    /// Fails — with nothing visible — if a record references a missing table
    /// or violates its schema, if the engine is shut down, or on WAL I/O
    /// errors.
    ///
    /// # Panics
    /// A configured [`FaultPlan`](crate::fault::FaultPlan) torn write or
    /// scheduled panic at a WAL site panics here by design, simulating a crash
    /// mid-commit; the batch is not visible and recovery discards its torn
    /// tail.
    pub fn commit(self) -> Result<cjoin_query::IngestReceipt> {
        let shared = self.shared;
        if shared.shutdown_flag.load(Ordering::Acquire) {
            return Err(Error::invalid_state("engine is shut down"));
        }
        // Validate everything before anything is logged, so the WAL never
        // carries a record replay cannot apply.
        for record in &self.records {
            validate_record(&shared.catalog, record)?;
        }
        let records = self.records.len() as u64;
        let plan = shared.config.lock().fault_plan.clone();
        let mut log_guard = shared.ingest.lock();
        let epoch = shared.catalog.snapshots().begin();
        let mut wal_bytes = 0;
        if let Some(log) = log_guard.as_mut() {
            let batch_start = log.len();
            for record in &self.records {
                inject(&plan, FaultSite::WalAppend);
                let before = log.len();
                let end = log.append(epoch, record)?;
                if let Some(plan) = &plan {
                    if plan.take_torn_write(plan.hits(FaultSite::WalAppend)) {
                        // Simulated crash: the record reaches the disk torn in
                        // half and the "process" dies before the commit marker.
                        let torn = before + (end - before) / 2;
                        let _ = log.truncate_to(torn);
                        panic!(
                            "injected torn WAL write: log torn at byte {torn} (epoch {})",
                            epoch.0
                        );
                    }
                }
            }
            inject(&plan, FaultSite::WalSync);
            wal_bytes = log.commit(epoch)?;
            shared
                .ingest_counters
                .sync_ns
                .store(log.sync_ns(), Ordering::Relaxed);
            // Scheduled silent corruption inside this batch's byte range fires
            // now — after the marker is durable, so replay meets a checksum
            // mismatch in an otherwise committed region and truncates there.
            if let Some(plan) = &plan {
                for &offset in plan.wal_byte_flips() {
                    if offset >= batch_start && offset < wal_bytes {
                        log.corrupt_byte(offset)?;
                    }
                }
            }
        }
        // Durable (or no log configured): apply under the still-pending epoch,
        // then publish it. In-flight queries are pinned at older snapshots and
        // never see the rows (MVCC `xmin`); queries admitted after the publish
        // see all of them — the batch is atomic.
        for record in &self.records {
            apply_record(&shared.catalog, epoch, record)?;
        }
        shared.catalog.snapshots().commit_through(epoch);
        shared
            .ingest_counters
            .records_appended
            .fetch_add(records, Ordering::Relaxed);
        shared
            .ingest_counters
            .commits
            .fetch_add(1, Ordering::Relaxed);
        drop(log_guard);
        maybe_compact(shared);
        Ok(cjoin_query::IngestReceipt {
            epoch: epoch.0,
            records,
            wal_bytes,
        })
    }
}

/// Pre-commit validation: every record must be applicable to the catalog.
fn validate_record(catalog: &Catalog, record: &WalRecord) -> Result<()> {
    match record {
        WalRecord::FactAppend { rows } => {
            let fact = catalog.fact_table()?;
            for row in rows {
                fact.schema().validate_row(row)?;
            }
        }
        WalRecord::DimUpsert {
            table,
            key_column,
            row,
        } => {
            let dim = catalog.table(table)?;
            dim.schema().validate_row(row)?;
            row.get(*key_column)
                .ok_or_else(|| {
                    Error::invalid_state(format!(
                        "dimension upsert for '{table}' has no column {key_column}"
                    ))
                })?
                .as_int()?;
        }
        WalRecord::DimDelete { table, .. } => {
            catalog.table(table)?;
        }
        WalRecord::Commit => {}
    }
    Ok(())
}

/// Rebuilds the columnar replica (a [`SwapIntent::TailCompaction`] pipeline
/// swap) when the row-store tail has outgrown
/// `CjoinConfig::tail_compaction_rows`. Failure is not an error for the
/// triggering commit — the tail is still served correctly by the hybrid scan
/// path, and the next commit retries.
fn maybe_compact(shared: &Arc<EngineShared>) {
    let threshold = {
        let config = shared.config.lock();
        if !config.columnar_scan || config.tail_compaction_rows == 0 {
            return;
        }
        config.tail_compaction_rows
    };
    let Ok(fact) = shared.catalog.fact_table() else {
        return;
    };
    let tail = {
        let core_guard = shared.core.lock();
        let Some(core) = core_guard.as_ref() else {
            return;
        };
        let Some((replica, _)) = core.columnar.as_ref() else {
            return;
        };
        fact.len().saturating_sub(replica.len())
    };
    if tail < threshold {
        return;
    }
    match swap_pipeline(shared, SwapIntent::TailCompaction) {
        Ok(()) => {
            shared
                .ingest_counters
                .tail_compactions
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => eprintln!("cjoin: columnar tail compaction deferred: {e}"),
    }
}

impl cjoin_query::QueryTicket for QueryHandle {
    fn wait(self: Box<Self>) -> QueryOutcome {
        QueryHandle::wait(*self)
    }

    fn cancel(&self) {
        QueryHandle::cancel(self);
    }
}

impl cjoin_query::JoinEngine for CjoinEngine {
    fn name(&self) -> &str {
        "CJOIN"
    }

    fn submit(&self, query: StarQuery) -> Result<Box<dyn cjoin_query::QueryTicket>> {
        let handle = CjoinEngine::submit(self, query)?;
        Ok(Box::new(handle))
    }

    fn stats(&self) -> cjoin_query::EngineStats {
        let stats = CjoinEngine::stats(self);
        cjoin_query::EngineStats {
            queries_submitted: stats.queries_admitted,
            queries_completed: stats.queries_completed,
            active_queries: stats.active_queries,
            fact_tuples_scanned: stats.tuples_scanned,
        }
    }

    fn quote_eta(&self) -> Option<Duration> {
        CjoinEngine::quote_eta(self)
    }

    fn scheduler_summary(&self) -> Option<cjoin_query::SchedulerSummary> {
        let s = self.shared.scheduler.snapshot();
        Some(cjoin_query::SchedulerSummary {
            auto_tune: s.auto_tune,
            available_parallelism: s.available_parallelism as u64,
            scan_workers: s.scan_workers as u64,
            stage_workers: s.stage_workers as u64,
            distributor_shards: s.distributor_shards as u64,
            resizes: s.resizes.len() as u64,
            last_verdict: s
                .last_verdict
                .map(|v| v.label().to_string())
                .unwrap_or_default(),
        })
    }

    fn ingest(&self, batch: cjoin_query::IngestBatch) -> Result<cjoin_query::IngestReceipt> {
        let mut session = self.ingest_session();
        for row in batch.facts {
            session.append_fact(row);
        }
        for upsert in batch.dim_upserts {
            session.upsert_dimension(upsert.table, upsert.key_column, upsert.row);
        }
        for delete in batch.dim_deletes {
            session.delete_dimension(delete.table, delete.key_column, delete.key);
        }
        session.commit()
    }

    fn shutdown(&self) {
        CjoinEngine::shutdown(self);
    }
}

/// The manager thread body: query cleanup (Algorithm 2) and adaptive filter ordering.
fn run_manager(
    finished_rx: Receiver<QueryId>,
    chain: Arc<FilterChain>,
    admission: Arc<Mutex<AdmissionState>>,
    counters: Arc<SharedCounters>,
    config: CjoinConfig,
    shutdown_flag: Arc<AtomicBool>,
) {
    let interval = Duration::from_millis(config.reorder_interval_ms.max(1));
    let mut last_reorder = Instant::now();
    loop {
        match finished_rx.recv_timeout(interval) {
            Ok(id) => cleanup_query(id, &chain, &admission),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if shutdown_flag.load(Ordering::Acquire) {
            // Drain any remaining notifications before exiting so ids are recycled.
            while let Ok(id) = finished_rx.try_recv() {
                cleanup_query(id, &chain, &admission);
            }
            break;
        }
        if config.adaptive_filter_ordering && last_reorder.elapsed() >= interval {
            reorder_filters(&chain, &counters);
            last_reorder = Instant::now();
        }
    }
}

/// Algorithm 2: remove a finished query from every dimension hash table, drop empty
/// Filters, recycle the query id and drop the supervisor's runtime registration.
fn cleanup_query(id: QueryId, chain: &Arc<FilterChain>, admission: &Arc<Mutex<AdmissionState>>) {
    let mut admission = admission.lock();
    admission.runtimes.remove(&id.0);
    let Some(registered) = admission.registered.remove(&id.0) else {
        return;
    };
    for dim in chain.snapshot() {
        let referenced = registered.referenced_dims.contains(&dim.name);
        let empty = dim.unregister_query(id, referenced);
        if empty {
            chain.remove(&dim.name);
        }
    }
    let _ = admission.allocator.release(id);
}

/// Derives a query's per-scan-worker partition pruning plans (§5) against one
/// pipeline incarnation's partition layout. Shared between fresh admission and
/// elastic re-installation, so a query resized onto a pipeline with a
/// different scan-worker count gets plans that match the new segments.
fn partition_plans(
    info: Option<&PartitionInfo>,
    bound: &BoundStarQuery,
) -> Vec<Option<PartitionPlan>> {
    info.and_then(|info| {
        let (lo, hi) = bound.fact_column_range(&info.column_name)?;
        let covering = info.scheme.covering(lo, hi);
        let mut needed = vec![false; info.scheme.num_partitions()];
        for pid in &covering {
            needed[pid.index()] = true;
        }
        // Each worker's plan counts only the needed-partition rows of its
        // own segment; the per-worker remainders sum to the classic
        // whole-table remainder.
        Some(
            info.rows_per_partition
                .iter()
                .map(|segment_rows| {
                    let remaining_rows = covering.iter().map(|pid| segment_rows[pid.index()]).sum();
                    Some(PartitionPlan {
                        needed: needed.clone(),
                        remaining_rows,
                    })
                })
                .collect(),
        )
    })
    .unwrap_or_default()
}

/// The elastic tuner thread body: roughly every 100ms, sample the live
/// pipeline into a [`SchedulerTick`], feed it to the scheduler's policy, and
/// apply whatever resize survives its hysteresis. Sampling takes the core
/// lock only long enough to read queue depths and counters; the (rare) resize
/// itself is the heavyweight pipeline swap in [`apply_resize`].
fn run_tuner(shared: Arc<EngineShared>) {
    const SLICE: Duration = Duration::from_millis(25);
    const SLICES_PER_TICK: u32 = 4;
    loop {
        for _ in 0..SLICES_PER_TICK {
            if shared.shutdown_flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(SLICE);
        }
        let sample = {
            let core_guard = shared.core.lock();
            let Some(core) = core_guard.as_ref() else {
                continue;
            };
            let counters = &shared.counters;
            // Lock order: core before admission, as everywhere.
            let active_queries = shared.admission.lock().registered.len();
            SchedulerTick {
                scan_passes: counters.scan_passes.load(Ordering::Relaxed),
                last_pass_ns: counters.last_pass_ns.load(Ordering::Relaxed),
                barrier_wait_ns: counters.barrier_wait_ns.load(Ordering::Relaxed),
                stage_queue_len: core.stage_queues.first().map_or(0, |q| q.len()),
                stage_queue_capacity: core.stage_queues.first().map_or(0, |q| q.capacity()),
                distributor_queue_len: core.distributor_queue.len(),
                distributor_queue_capacity: core.distributor_queue.capacity(),
                active_queries,
                batches_in_flight: core.in_flight.load(Ordering::Acquire),
            }
        };
        if let Some((axis, width, verdict)) = shared.scheduler.tick(sample) {
            if let Err(e) = apply_resize(&shared, axis, width, ResizeReason::Policy(verdict)) {
                eprintln!(
                    "cjoin: elastic resize of {} to {width} failed: {e}",
                    axis.label()
                );
            }
        }
    }
}

/// Swaps the pipeline to a new incarnation with `axis` at `width`, carrying
/// every in-flight query across.
///
/// Under the core lock: drain the current core gracefully (a quiescent point —
/// every in-flight batch settles and the manager finishes its cleanup
/// backlog), update the config and scheduler widths, spawn the new core, and
/// send a re-install for every still-unresolved registered query at its
/// original snapshot. The installs are *sent* under the lock — the new core
/// has processed nothing yet and submissions/reaper/supervisor all serialize
/// on the same lock, so no id can complete-and-recycle between collection and
/// re-installation. The ack waits happen outside the lock, with the same
/// failure-aware poll as `submit`.
///
/// Re-installed queries restart a full pass at their original snapshot; the
/// old incarnation's partial routing state died with it, and §3.3's wrap
/// protocol computes each answer over exactly one complete pass, so a resize
/// can never drop or duplicate a tuple in a result.
fn apply_resize(
    shared: &Arc<EngineShared>,
    axis: Axis,
    width: usize,
    reason: ResizeReason,
) -> Result<()> {
    swap_pipeline(
        shared,
        SwapIntent::Resize {
            axis,
            width,
            reason,
        },
    )
}

/// Why [`swap_pipeline`] is replacing the pipeline incarnation.
enum SwapIntent {
    /// An elastic or forced resize of one parallelism axis.
    Resize {
        axis: Axis,
        width: usize,
        reason: ResizeReason,
    },
    /// Columnar tail compaction: same widths, but `spawn_pipeline` rebuilds
    /// the columnar replica from the current fact table, re-absorbing the
    /// row-store tail appended since the replica was last built. The graceful
    /// drain is the pass boundary: re-installed queries restart their pass at
    /// their original snapshot, which by the wrap protocol changes nothing
    /// about their answers.
    TailCompaction,
}

fn swap_pipeline(shared: &Arc<EngineShared>, intent: SwapIntent) -> Result<()> {
    if shared.shutdown_flag.load(Ordering::Acquire) {
        return Err(Error::invalid_state("engine is shut down"));
    }
    let mut core_guard = shared.core.lock();
    let Some(core) = core_guard.take() else {
        return Err(Error::invalid_state("pipeline is not running"));
    };
    match &intent {
        SwapIntent::Resize { axis, width, .. } => {
            let current = match axis {
                Axis::ScanWorkers => core.stage_plan.scan_workers,
                Axis::StageWorkers => core.stage_plan.total_threads(),
                Axis::DistributorShards => core.stage_plan.distributor_shards,
            };
            if current == *width {
                *core_guard = Some(core);
                return Ok(());
            }
        }
        SwapIntent::TailCompaction => {
            if core.columnar.is_none() {
                *core_guard = Some(core);
                return Ok(());
            }
        }
    }
    if !shared.supervision && !shared.elastic && !shared.admission.lock().registered.is_empty() {
        // Without the runtimes registry there is nothing to re-install
        // in-flight queries from; refuse rather than silently dropping them.
        *core_guard = Some(core);
        return Err(Error::invalid_state(
            "pipeline swap with queries in flight requires supervision or auto_tune",
        ));
    }
    teardown_core(core, false);
    if let SwapIntent::Resize {
        axis,
        width,
        reason,
    } = &intent
    {
        {
            let mut config = shared.config.lock();
            match axis {
                Axis::ScanWorkers => config.scan_workers = *width,
                Axis::StageWorkers => {
                    config.stage_layout = StageLayout::Horizontal;
                    config.worker_threads = *width;
                }
                Axis::DistributorShards => config.distributor_shards = *width,
            }
        }
        let pass = shared.counters.scan_passes.load(Ordering::Relaxed);
        shared.scheduler.commit_resize(*axis, *width, *reason, pass);
    }
    let config = shared.config.lock().clone();
    let new_core = match CjoinEngine::spawn_pipeline(shared, &config) {
        Ok(core) => core,
        Err(e) => {
            // No pipeline to carry the queries to: fail them all, exactly as a
            // failed supervisor respawn leaves the engine (core stays `None`,
            // submissions report the engine down).
            let stranded: Vec<(u32, Arc<QueryRuntime>)> = {
                let mut admission = shared.admission.lock();
                admission.runtimes.drain().collect()
            };
            for (_, runtime) in &stranded {
                runtime.mark_cancelled();
                runtime.resolve(Err(QueryError::StageFailed {
                    role: "scheduler".into(),
                    detail: format!("pipeline respawn failed during resize: {e}"),
                }));
            }
            for (id, _) in &stranded {
                cleanup_query(QueryId(*id), &shared.chain, &shared.admission);
            }
            return Err(e);
        }
    };
    // Collect the queries to carry over: unresolved runtimes re-install on the
    // new core; resolved-but-still-registered ones (cancelled or reaped
    // queries whose finalize died with the old core) are cleaned up here so
    // their maxConc slots don't leak.
    let (pending, orphans) = {
        let admission = shared.admission.lock();
        let mut pending = Vec::new();
        let mut orphans = Vec::new();
        for (id, runtime) in &admission.runtimes {
            if runtime.resolved.load(Ordering::Acquire) {
                orphans.push(QueryId(*id));
            } else {
                pending.push(Arc::clone(runtime));
            }
        }
        (pending, orphans)
    };
    for id in orphans {
        cleanup_query(id, &shared.chain, &shared.admission);
    }
    let cmd_tx = new_core.cmd_tx.clone();
    let mut acks = Vec::with_capacity(pending.len());
    for runtime in pending {
        let partition = partition_plans(new_core.partition_info.as_ref(), &runtime.bound);
        let fact_predicate = if runtime.bound.fact_predicate_is_true {
            None
        } else {
            Some(runtime.bound.fact_predicate.clone())
        };
        let (ack_tx, ack_rx) = bounded(1);
        let sent = cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: Arc::clone(&runtime),
                fact_predicate,
                snapshot: runtime.snapshot,
                partition,
                ack: Some(ack_tx),
            }))
            .is_ok();
        acks.push((runtime, ack_rx, sent));
    }
    *core_guard = Some(new_core);
    shared.core_epoch.fetch_add(1, Ordering::Release);
    drop(core_guard);
    // Ack waits outside the lock, failure-aware like `submit`'s: a re-install
    // that dies mid-flight is owned by the supervisor when there is one, and
    // resolved right here otherwise.
    for (runtime, ack_rx, sent) in acks {
        let installed = sent
            && loop {
                match ack_rx.recv_timeout(Duration::from_millis(10)) {
                    Ok(()) => break true,
                    Err(RecvTimeoutError::Disconnected) => break false,
                    Err(RecvTimeoutError::Timeout) => {
                        if runtime.resolved.load(Ordering::Acquire) {
                            break true;
                        }
                        if cmd_tx
                            .send(ScanMessage::Command(PreprocessorCommand::Probe))
                            .is_err()
                        {
                            break false;
                        }
                    }
                }
            };
        if !installed && !shared.supervision {
            runtime.mark_cancelled();
            runtime.resolve(Err(QueryError::StageFailed {
                role: "scheduler".into(),
                detail: "pipeline stopped during resize re-installation".into(),
            }));
            cleanup_query(runtime.id, &shared.chain, &shared.admission);
        }
    }
    Ok(())
}

/// The supervisor thread body: reacts to role deaths with [`handle_failure`]
/// and runs the deadline reaper at a *bounded* interval.
///
/// The bound is the fix for reaper starvation: the loop used to reap only on
/// the `recv_timeout` Timeout arm, so every received event reset the 10ms
/// window and a sustained event stream (admission nudges, failure cascades)
/// could postpone reaping indefinitely while overdue queries sat unresolved.
/// Now `next_reap` is an absolute deadline — events shorten the wait but never
/// push the reap back, so no channel traffic pattern can delay it beyond one
/// tick.
fn run_supervisor(shared: Arc<EngineShared>, failure_rx: Receiver<SupervisorEvent>) {
    const TICK: Duration = Duration::from_millis(10);
    let mut next_reap = Instant::now() + TICK;
    loop {
        if shared.shutdown_flag.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        if now >= next_reap {
            reap_deadlines(&shared);
            next_reap = now + TICK;
        }
        let wait = next_reap.saturating_duration_since(Instant::now());
        match failure_rx.recv_timeout(wait) {
            Ok(SupervisorEvent::Failure(failure)) => handle_failure(&shared, failure, &failure_rx),
            // A deadline query was admitted: nothing to do beyond waking up —
            // the bounded reap above picks the fresh deadline up within one
            // tick even if nudges keep streaming in.
            Ok(SupervisorEvent::DeadlineAdmitted) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Fails all in-flight queries with a typed error, tears the dead pipeline
/// down, degrades the failed axis to its classic path and respawns.
///
/// The ordering is load-bearing (see the module docs and
/// `crate::preprocessor::drain_barrier`): queries are resolved to
/// [`QueryError::StageFailed`] *before* the poison flag releases any blocked
/// drain barrier, so the first-wins latch guarantees no truncated result is
/// ever delivered as `Ok`.
fn handle_failure(
    shared: &Arc<EngineShared>,
    failure: RoleFailure,
    failure_rx: &Receiver<SupervisorEvent>,
) {
    shared
        .counters
        .role_failures
        .fetch_add(1, Ordering::Relaxed);
    eprintln!(
        "cjoin: pipeline role '{}' died ({}); failing in-flight queries and restarting",
        failure.role, failure.detail
    );

    // Take the pipeline out of service first: submissions block on this lock,
    // so no new query can register against the dying core or install onto it.
    let mut core_guard = shared.core.lock();
    let core = core_guard.take();

    // Resolve every in-flight query BEFORE any barrier can release truncated.
    let failed: Vec<(u32, Arc<QueryRuntime>)> = {
        let mut admission = shared.admission.lock();
        admission.runtimes.drain().collect()
    };
    for (_, runtime) in &failed {
        runtime.mark_cancelled();
        runtime.resolve(Err(QueryError::StageFailed {
            role: failure.role.to_string(),
            detail: failure.detail.clone(),
        }));
    }
    for (id, _) in &failed {
        cleanup_query(QueryId(*id), &shared.chain, &shared.admission);
    }

    // Collapse a cascade (several roles dying around the same incident, e.g.
    // injected panics on both a scan worker and a shard) into one restart.
    // Benign admission nudges drained alongside are simply dropped — the
    // bounded reap in `run_supervisor` covers any deadline they announced.
    let mut roles = vec![failure.role];
    while let Ok(extra) = failure_rx.try_recv() {
        if let SupervisorEvent::Failure(extra) = extra {
            shared
                .counters
                .role_failures
                .fetch_add(1, Ordering::Relaxed);
            roles.push(extra.role);
        }
    }
    if let Some(core) = core {
        teardown_core(core, true);
    }
    while let Ok(extra) = failure_rx.try_recv() {
        if let SupervisorEvent::Failure(extra) = extra {
            shared
                .counters
                .role_failures
                .fetch_add(1, Ordering::Relaxed);
            roles.push(extra.role);
        }
    }

    if shared.shutdown_flag.load(Ordering::Acquire) {
        return;
    }

    // Degrade each failed axis to its classic path and respawn.
    let config = {
        let mut config = shared.config.lock();
        for role in &roles {
            if let Some(note) = degrade(&mut config, role) {
                eprintln!("cjoin: degrading after '{role}' failure: {note}");
                shared.degradations.lock().push(note);
            }
            // A degradation is a forced downscale as far as the scheduler is
            // concerned: commit the degraded width so the respawn below (and
            // every future one) spawns the degraded shape even on a governed
            // axis, record the event, and reset the tuning policy's
            // hysteresis clock. Same-width commits record nothing.
            let pass = shared.counters.scan_passes.load(Ordering::Relaxed);
            match role {
                RoleKind::ScanWorker(_) | RoleKind::ScanCoordinator => {
                    shared.scheduler.commit_resize(
                        Axis::ScanWorkers,
                        config.scan_workers,
                        ResizeReason::Degraded,
                        pass,
                    );
                }
                RoleKind::StageWorker { .. } => {
                    shared.scheduler.commit_resize(
                        Axis::StageWorkers,
                        config.worker_threads,
                        ResizeReason::Degraded,
                        pass,
                    );
                }
                RoleKind::ShardRouter | RoleKind::DistributorShard(_) | RoleKind::ShardMerger => {
                    shared.scheduler.commit_resize(
                        Axis::DistributorShards,
                        config.distributor_shards,
                        ResizeReason::Degraded,
                        pass,
                    );
                }
                RoleKind::Manager => {}
            }
        }
        config.clone()
    };
    match CjoinEngine::spawn_pipeline(shared, &config) {
        Ok(core) => {
            shared
                .counters
                .pipeline_restarts
                .fetch_add(1, Ordering::Relaxed);
            *core_guard = Some(core);
            shared.core_epoch.fetch_add(1, Ordering::Release);
        }
        Err(e) => {
            eprintln!("cjoin: failed to respawn the pipeline after a role failure: {e}");
        }
    }
}

/// Degrades the axis hosting `role` one step towards the classic CJOIN layout.
/// Returns a description of the applied step, or `None` if the axis is already
/// at its simplest configuration (the role is respawned as-is).
fn degrade(config: &mut CjoinConfig, role: &RoleKind) -> Option<String> {
    match role {
        RoleKind::ScanWorker(_) | RoleKind::ScanCoordinator => {
            if config.scan_workers > 1 {
                config.scan_workers = 1;
                Some(
                    "collapsed the segmented scan front-end to the classic single Preprocessor"
                        .into(),
                )
            } else if config.columnar_scan {
                config.columnar_scan = false;
                Some("fell back from the columnar replica scan to the row store".into())
            } else {
                None
            }
        }
        RoleKind::StageWorker { .. } => {
            if config.worker_threads > 1 || config.stage_layout != StageLayout::Horizontal {
                config.stage_layout = StageLayout::Horizontal;
                config.worker_threads = 1;
                Some("collapsed the filter stages to a single horizontal worker".into())
            } else {
                None
            }
        }
        RoleKind::ShardRouter | RoleKind::DistributorShard(_) | RoleKind::ShardMerger => {
            if config.distributor_shards > 1 {
                config.distributor_shards = 1;
                Some(
                    "collapsed the sharded aggregation stage to the classic single Distributor"
                        .into(),
                )
            } else {
                None
            }
        }
        RoleKind::Manager => None,
    }
}

/// The deadline reaper (one supervisor tick): resolves overdue queries to
/// [`QueryError::DeadlineExceeded`] and retires them from the scan through the
/// normal cancel path, so partial state is released with exactly-once
/// bookkeeping and the id recycles through the manager as usual.
fn reap_deadlines(shared: &Arc<EngineShared>) {
    let now = Instant::now();
    // Lock order everywhere: core before admission.
    let core_guard = shared.core.lock();
    let Some(core) = core_guard.as_ref() else {
        return;
    };
    let overdue: Vec<Arc<QueryRuntime>> = {
        let admission = shared.admission.lock();
        admission
            .runtimes
            .values()
            .filter(|rt| rt.deadline_at.is_some_and(|at| now >= at))
            .map(Arc::clone)
            .collect()
    };
    for runtime in overdue {
        let deadline = runtime
            .deadline_at
            .expect("reaper only selects queries with deadlines")
            .duration_since(runtime.admitted_at);
        runtime.mark_cancelled();
        if runtime.resolve(Err(QueryError::DeadlineExceeded { deadline })) {
            let _ = core
                .cmd_tx
                .send(ScanMessage::Command(PreprocessorCommand::Cancel {
                    id: runtime.id,
                }));
        }
    }
}

/// Tears one pipeline incarnation down and joins every thread.
///
/// `poisoned == false` is the graceful path: shutdown messages flow through
/// the queues so every stage drains its pending batches in order.
///
/// `poisoned == true` is the failure path, which must never block on a queue
/// whose consumer is dead. It releases every blocking primitive up front —
/// the poison flag (drain barriers), the stall gate (parked segment workers),
/// a best-effort shutdown command (idle command loops) — then DROPS the
/// engine-side queue handles before joining, so a producer blocked on a full
/// queue observes the channel disconnect once the dead consumer's receiver is
/// gone instead of waiting forever. Surviving consumers keep draining until
/// their upstream disconnects, which preserves the join order's termination
/// argument stage by stage; the manager exits last, when the aggregation
/// stage drops the finished-query channel.
fn teardown_core(core: PipelineCore, poisoned: bool) {
    let PipelineCore {
        cmd_tx,
        stage_queues,
        distributor_queue,
        stall,
        poison,
        threads,
        ..
    } = core;
    if poisoned {
        poison.store(true, Ordering::Release);
        if let Some(stall) = &stall {
            stall.shutdown();
        }
        let _ = cmd_tx.send(ScanMessage::Command(PreprocessorCommand::Shutdown));
        drop(cmd_tx);
        drop(stage_queues);
        drop(distributor_queue);
        join_pipeline_threads(threads);
        return;
    }
    // Stop the producers first so no new data enters the pipeline. In sharded
    // mode the coordinator consumes the shutdown, opens the stall gate and
    // relays the stop to every segment worker before exiting.
    let _ = cmd_tx.send(ScanMessage::Command(PreprocessorCommand::Shutdown));
    let mut threads = threads;
    if let Some(coordinator) = threads.scan_coordinator.take() {
        let _ = coordinator.join();
    }
    for handle in threads.scan_workers.drain(..) {
        let _ = handle.join();
    }
    // Stop each stage in order; downstream stages are still draining while
    // upstream workers finish their last batches.
    for (stage_index, stage_workers) in threads.workers.drain(..).enumerate() {
        for _ in 0..stage_workers.len() {
            let _ = stage_queues[stage_index].send(Message::Shutdown);
        }
        for handle in stage_workers {
            let _ = handle.join();
        }
    }
    // One shutdown message stops the whole aggregation stage: the single
    // Distributor consumes it directly; in sharded mode the router consumes it
    // and broadcasts it to every shard.
    let _ = distributor_queue.send(Message::Shutdown);
    if let Some(router) = threads.router.take() {
        let _ = router.join();
    }
    for handle in threads.distributors.drain(..) {
        let _ = handle.join();
    }
    // Every shard dropping its partials sender lets the merger observe the
    // disconnect and exit.
    if let Some(merger) = threads.merger.take() {
        let _ = merger.join();
    }
    // The aggregation stage dropping its side of the finished-query channel lets
    // the manager observe the disconnect and exit.
    let _ = threads.manager.join();
}

/// Joins every pipeline thread after the failure-path teardown released all
/// blocking primitives; a panicked thread's `Err` join result is discarded
/// (its payload already travelled to the supervisor as a [`RoleFailure`]).
fn join_pipeline_threads(threads: PipelineThreads) {
    if let Some(coordinator) = threads.scan_coordinator {
        let _ = coordinator.join();
    }
    for handle in threads.scan_workers {
        let _ = handle.join();
    }
    for stage_workers in threads.workers {
        for handle in stage_workers {
            let _ = handle.join();
        }
    }
    if let Some(router) = threads.router {
        let _ = router.join();
    }
    for handle in threads.distributors {
        let _ = handle.join();
    }
    if let Some(merger) = threads.merger {
        let _ = merger.join();
    }
    let _ = threads.manager.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{reference, AggFunc, AggValue, AggregateSpec, ColumnRef, Predicate};
    use cjoin_storage::{Column, Schema, Table, Value};

    /// A small synthetic star schema: fact(sales) with two dimensions.
    fn small_catalog(fact_rows: i64) -> Arc<Catalog> {
        let catalog = Catalog::new();
        let color = Table::new(Schema::new(
            "color",
            vec![Column::int("k"), Column::str("name")],
        ));
        for (k, name) in [(1, "red"), (2, "green"), (3, "blue")] {
            color
                .insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)
                .unwrap();
        }
        let size = Table::new(Schema::new(
            "size",
            vec![Column::int("k"), Column::str("label")],
        ));
        for (k, label) in [(1, "small"), (2, "large")] {
            size.insert(vec![Value::int(k), Value::str(label)], SnapshotId::INITIAL)
                .unwrap();
        }
        let fact = Table::with_rows_per_page(
            Schema::new(
                "sales",
                vec![
                    Column::int("colorkey"),
                    Column::int("sizekey"),
                    Column::int("amount"),
                ],
            ),
            32,
        );
        fact.insert_batch_unchecked(
            (0..fact_rows).map(|i| {
                Row::new(vec![
                    Value::int(i % 3 + 1),
                    Value::int(i % 2 + 1),
                    Value::int(i),
                ])
            }),
            SnapshotId::INITIAL,
        );
        catalog.add_table(Arc::new(color));
        catalog.add_table(Arc::new(size));
        catalog.add_fact_table(Arc::new(fact));
        Arc::new(catalog)
    }

    fn test_config() -> CjoinConfig {
        CjoinConfig::default()
            .with_max_concurrency(32)
            .with_worker_threads(2)
            .with_batch_size(64)
    }

    fn red_sum_query(name: &str) -> StarQuery {
        StarQuery::builder(name)
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
            .aggregate(AggregateSpec::count_star())
            .build()
    }

    #[test]
    fn single_query_matches_reference() {
        let catalog = small_catalog(300);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let query = red_sum_query("red_sum");
        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query).unwrap();
        assert!(
            result.approx_eq(&expected),
            "diff: {:?}",
            result.diff(&expected)
        );
        engine.shutdown();
    }

    #[test]
    fn concurrent_queries_share_the_pipeline_and_all_match_reference() {
        let catalog = small_catalog(600);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let queries: Vec<StarQuery> = vec![
            red_sum_query("q_red"),
            StarQuery::builder("q_by_color")
                .join_dimension("color", "colorkey", "k", Predicate::True)
                .group_by(ColumnRef::dim("color", "name"))
                .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
                .build(),
            StarQuery::builder("q_two_dims")
                .join_dimension(
                    "color",
                    "colorkey",
                    "k",
                    Predicate::in_list("name", vec!["red", "blue"]),
                )
                .join_dimension("size", "sizekey", "k", Predicate::eq("label", "large"))
                .group_by(ColumnRef::dim("size", "label"))
                .aggregate(AggregateSpec::count_star())
                .build(),
            StarQuery::builder("q_fact_only")
                .aggregate(AggregateSpec::over(AggFunc::Max, ColumnRef::fact("amount")))
                .build(),
        ];
        let expected: Vec<_> = queries
            .iter()
            .map(|q| reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap())
            .collect();
        let handles: Vec<_> = queries
            .into_iter()
            .map(|q| engine.submit(q).unwrap())
            .collect();
        assert!(engine.active_queries() >= 1);
        for (handle, expected) in handles.into_iter().zip(expected) {
            let name = handle.name().to_string();
            let result = handle.wait().unwrap();
            assert!(
                result.approx_eq(&expected),
                "{name} diverges from reference: {:?}",
                result.diff(&expected)
            );
        }
        // After completion the manager cleans everything up.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(engine.active_queries(), 0);
        let stats = engine.stats();
        assert_eq!(stats.queries_admitted, 4);
        assert_eq!(stats.queries_completed, 4);
        assert!(stats.tuples_scanned >= 600);
        engine.shutdown();
    }

    #[test]
    fn query_ids_are_recycled_after_completion() {
        let catalog = small_catalog(120);
        let config = CjoinConfig::default()
            .with_max_concurrency(2)
            .with_worker_threads(1)
            .with_batch_size(32);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        // More sequential queries than maxConc: ids must be recycled.
        for i in 0..5 {
            let result = engine.execute(red_sum_query(&format!("q{i}"))).unwrap();
            assert_eq!(result.num_rows(), 1);
            // Allow the manager to clean up before the next submission needs an id.
            let deadline = Instant::now() + Duration::from_secs(2);
            while engine.active_queries() > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        engine.shutdown();
    }

    #[test]
    fn max_concurrency_is_enforced() {
        let catalog = small_catalog(50_000);
        let config = CjoinConfig::default()
            .with_max_concurrency(2)
            .with_worker_threads(1)
            .with_batch_size(128);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        let _h1 = engine.submit(red_sum_query("a")).unwrap();
        let _h2 = engine.submit(red_sum_query("b")).unwrap();
        let err = engine.submit(red_sum_query("c")).unwrap_err();
        assert!(matches!(err, Error::TooManyConcurrentQueries { .. }));
        engine.shutdown();
    }

    #[test]
    fn vertical_layout_produces_identical_results() {
        let catalog = small_catalog(400);
        let config = test_config().with_stage_layout(crate::config::StageLayout::Vertical);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        let query = StarQuery::builder("two_dims")
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "green"))
            .join_dimension("size", "sizekey", "k", Predicate::True)
            .group_by(ColumnRef::dim("size", "label"))
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
            .build();
        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query).unwrap();
        assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));
        assert_eq!(engine.stage_plan().num_stages(), 2);
        engine.shutdown();
    }

    #[test]
    fn sharded_distributor_produces_identical_results() {
        let catalog = small_catalog(500);
        let config = test_config().with_distributor_shards(4);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        assert_eq!(engine.stage_plan().distributor_shards, 4);
        let queries = vec![
            red_sum_query("scalar"),
            StarQuery::builder("grouped")
                .join_dimension("color", "colorkey", "k", Predicate::True)
                .group_by(ColumnRef::dim("color", "name"))
                .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
                .aggregate(AggregateSpec::over(AggFunc::Avg, ColumnRef::fact("amount")))
                .build(),
        ];
        for query in queries {
            let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query).unwrap();
            assert!(
                result.approx_eq(&expected),
                "diff: {:?}",
                result.diff(&expected)
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.distributor_shards.len(), 4);
        assert_eq!(stats.shard_tuples_distributed(), stats.tuples_distributed);
        assert_eq!(stats.shard_routings(), stats.routings);
        assert_eq!(stats.batches_in_flight, 0, "quiesced pipeline");
        engine.shutdown();
    }

    #[test]
    fn sharded_scan_front_end_produces_identical_results() {
        let catalog = small_catalog(700);
        let config = test_config()
            .with_scan_workers(4)
            .with_distributor_shards(2);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        assert_eq!(engine.stage_plan().scan_workers, 4);
        let queries = vec![
            red_sum_query("scalar"),
            StarQuery::builder("grouped")
                .join_dimension("color", "colorkey", "k", Predicate::True)
                .group_by(ColumnRef::dim("color", "name"))
                .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
                .aggregate(AggregateSpec::count_star())
                .build(),
            StarQuery::builder("fact_only")
                .aggregate(AggregateSpec::over(AggFunc::Max, ColumnRef::fact("amount")))
                .build(),
        ];
        for query in queries {
            let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query).unwrap();
            assert!(
                result.approx_eq(&expected),
                "diff: {:?}",
                result.diff(&expected)
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.scan_workers.len(), 4);
        assert_eq!(stats.scan_worker_tuples_scanned(), stats.tuples_scanned);
        assert_eq!(stats.scan_worker_batches_sent(), stats.batches_sent);
        assert!(
            stats
                .scan_workers
                .iter()
                .filter(|w| w.tuples_scanned > 0)
                .count()
                >= 2,
            "the segmented scan actually spread work: {:?}",
            stats.scan_workers
        );
        assert_eq!(stats.batches_in_flight, 0, "quiesced pipeline");
        engine.shutdown();
    }

    #[test]
    fn unknown_table_is_rejected_and_id_released() {
        let catalog = small_catalog(50);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let bad = StarQuery::builder("bad")
            .join_dimension("nonexistent", "colorkey", "k", Predicate::True)
            .aggregate(AggregateSpec::count_star())
            .build();
        assert!(engine.submit(bad).is_err());
        // The failed admission must not leak a query id.
        let good = engine.execute(red_sum_query("good")).unwrap();
        assert_eq!(good.num_rows(), 1);
        engine.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let catalog = small_catalog(50);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        engine.shutdown();
        engine.shutdown(); // idempotent
        assert!(engine.submit(red_sum_query("late")).is_err());
    }

    #[test]
    fn snapshot_queries_see_consistent_data() {
        let catalog = small_catalog(100);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        // Commit an update that adds 10 more "red" rows at a later snapshot.
        let snap_before = catalog.snapshots().current();
        let fact = catalog.fact_table().unwrap();
        let snap_after = catalog.snapshots().commit();
        for i in 0..10 {
            fact.insert(
                vec![Value::int(1), Value::int(1), Value::int(1000 + i)],
                snap_after,
            )
            .unwrap();
        }
        let old = StarQuery::builder("old_snapshot")
            .snapshot(snap_before)
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .build();
        let new = StarQuery::builder("new_snapshot")
            .snapshot(snap_after)
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .build();
        let expected_old = reference::evaluate(&catalog, &old, snap_before).unwrap();
        let expected_new = reference::evaluate(&catalog, &new, snap_after).unwrap();
        let got_old = engine.execute(old).unwrap();
        let got_new = engine.execute(new).unwrap();
        assert!(got_old.approx_eq(&expected_old));
        assert!(got_new.approx_eq(&expected_new));
        // And they differ from each other by exactly the 10 inserted rows.
        let count = |r: &QueryResult| match r.rows().next().unwrap().1[0] {
            AggValue::Int(c) => c,
            _ => panic!("expected count"),
        };
        assert_eq!(count(&got_new) - count(&got_old), 10);
        engine.shutdown();
    }

    #[test]
    fn progress_reaches_completion_and_is_monotonic() {
        let catalog = small_catalog(5_000);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let handle = engine.submit(red_sum_query("tracked")).unwrap();
        let progress = Arc::clone(handle.progress());
        assert_eq!(progress.rows_total(), 5_000);

        let mut last = 0.0f64;
        for _ in 0..200 {
            let f = progress.fraction();
            assert!(
                f >= last - 1e-9,
                "progress must not go backwards ({f} < {last})"
            );
            last = f;
            if progress.is_completed() {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let _ = handle.wait().unwrap();
        assert!(progress.is_completed());
        assert_eq!(progress.fraction(), 1.0);
        assert_eq!(progress.estimated_remaining(), Some(Duration::ZERO));
        engine.shutdown();
    }

    #[test]
    fn client_cancel_resolves_with_cancelled_and_engine_stays_serviceable() {
        let catalog = small_catalog(200_000);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let handle = engine.submit(red_sum_query("doomed")).unwrap();
        handle.cancel();
        match handle.wait() {
            Err(QueryError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The cancelled query retires through the normal finalize path, so the
        // engine keeps serving fresh queries with exact results.
        let query = red_sum_query("after_cancel");
        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query).unwrap();
        assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));
        engine.shutdown();
    }

    #[test]
    fn unreachable_deadline_is_shed_at_admission() {
        let catalog = small_catalog(300);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        // Pretend the last full scan pass took 10s; a 1ms deadline is hopeless.
        engine
            .shared
            .counters
            .last_pass_ns
            .store(10_000_000_000, Ordering::Relaxed);
        let doomed = StarQuery::builder("doomed")
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .deadline(Duration::from_millis(1))
            .build();
        let handle = engine.submit(doomed).unwrap();
        match handle.wait() {
            Err(QueryError::ShedAtAdmission {
                deadline,
                estimated,
            }) => {
                assert_eq!(deadline, Duration::from_millis(1));
                assert_eq!(estimated, Duration::from_secs(10));
            }
            other => panic!("expected ShedAtAdmission, got {other:?}"),
        }
        // Shedding touched no pipeline state: no id leaked, fresh queries run.
        assert_eq!(engine.active_queries(), 0);
        let result = engine.execute(red_sum_query("after_shed")).unwrap();
        assert_eq!(result.num_rows(), 1);
        engine.shutdown();
    }

    #[test]
    fn overdue_query_is_reaped_with_deadline_exceeded() {
        use crate::fault::{FaultPlan, FaultSite};
        let catalog = small_catalog(20_000);
        // Slow every scan step down so the pass takes much longer than the
        // deadline, deterministically.
        let config = test_config().with_fault_plan(
            FaultPlan::seeded(1)
                .delay(FaultSite::ScanWorker, 2_000)
                .build(),
        );
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        let slow = StarQuery::builder("slow")
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .deadline(Duration::from_millis(40))
            .build();
        let started = Instant::now();
        let handle = engine.submit(slow).unwrap();
        match handle.wait() {
            Err(QueryError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::from_millis(40));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The reaper fires within a couple of ticks of the deadline, not after
        // the (much longer) full pass.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "reaper should not wait for the pass to finish"
        );
        engine.shutdown();
    }

    /// Regression test for reaper starvation: the supervisor used to reap only
    /// on the `recv_timeout` *Timeout* arm, so any event stream with
    /// inter-arrival under the 10ms tick postponed reaping indefinitely — an
    /// overdue query would quietly run to completion instead of being
    /// reaped. With the bounded inter-reap interval, the flood below cannot
    /// starve the reaper and the overdue query resolves to DeadlineExceeded.
    #[test]
    fn reaper_fires_under_sustained_supervisor_channel_traffic() {
        use crate::fault::{FaultPlan, FaultSite};
        let catalog = small_catalog(20_000);
        let config = test_config().with_fault_plan(
            FaultPlan::seeded(1)
                .delay(FaultSite::ScanWorker, 2_000)
                .build(),
        );
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();

        // Flood the supervisor's channel with benign events far faster than
        // its reap tick, for the whole lifetime of the overdue query.
        let flood_tx = engine.shared.failure_tx.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flooder = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let _ = flood_tx.send(SupervisorEvent::DeadlineAdmitted);
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };

        let slow = StarQuery::builder("slow_under_flood")
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .deadline(Duration::from_millis(40))
            .build();
        let started = Instant::now();
        let handle = engine.submit(slow).unwrap();
        let outcome = handle.wait();
        stop.store(true, Ordering::Release);
        flooder.join().unwrap();

        match outcome {
            Err(QueryError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::from_millis(40));
            }
            other => panic!("expected DeadlineExceeded despite channel flood, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "reaper must fire at its bounded interval even under channel traffic"
        );
        engine.shutdown();
    }

    /// Regression test for ETA-quote drift: the pre-shed used to compare the
    /// raw wall-clock last-pass time against the deadline, so a pass that
    /// straddled an idle period (engine idle between queries, scan halted,
    /// clock running) inflated the estimate and over-shed perfectly feasible
    /// queries. The busy-only quote stays honest: a deadline of quote + ε is
    /// admitted and completes.
    #[test]
    fn idle_time_does_not_inflate_the_deadline_quote() {
        let catalog = small_catalog(300);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        // Complete a query, idle well past the deadline below, then complete
        // another: the pass that finishes the second query straddles the idle
        // gap, which a wall-clock pass timer would charge to the estimate.
        engine.execute(red_sum_query("warm")).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        engine.execute(red_sum_query("across_the_gap")).unwrap();

        let quote = engine.quote_eta().expect("completed passes give a quote");
        assert!(
            quote < Duration::from_millis(200),
            "busy-only quote must not include the 400ms idle gap, got {quote:?}"
        );

        // Oracle: deadline ≈ quote + ε is admitted and completes — under the
        // old wall-clock estimate (≥ 400ms) this deadline was shed.
        let deadline = quote + Duration::from_millis(150);
        let feasible = StarQuery::builder("feasible")
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .deadline(deadline)
            .build();
        let outcome = engine.submit(feasible).unwrap().wait();
        assert!(
            outcome.is_ok(),
            "deadline {deadline:?} over honest quote {quote:?} must complete, got {outcome:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn submission_time_is_recorded() {
        let catalog = small_catalog(200);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let handle = engine.submit(red_sum_query("timed")).unwrap();
        assert!(handle.submission_time() > Duration::ZERO);
        assert_eq!(handle.name(), "timed");
        let (result, response_time) = handle.wait_with_time().unwrap();
        assert_eq!(result.num_rows(), 1);
        assert!(response_time >= Duration::ZERO);
        engine.shutdown();
    }
}
