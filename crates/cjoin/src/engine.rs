//! The public CJOIN engine: query admission, finalization and pipeline lifecycle.
//!
//! [`CjoinEngine::start`] builds the always-on pipeline (continuous scan →
//! Preprocessor → Stages → aggregation stage) and the manager thread. The scan
//! front-end is a single Preprocessor by default, or — with
//! `CjoinConfig::scan_workers > 1` — that many segment scan workers behind an
//! admission coordinator (see [`crate::preprocessor`]). The
//! aggregation stage is a single Distributor by default, or — with
//! `CjoinConfig::distributor_shards > 1` — a router, that many parallel
//! aggregation shards, and an end-barrier merger (see [`crate::distributor`]). Queries are
//! registered at any time with [`CjoinEngine::submit`], which performs Algorithm 1 of
//! the paper on the caller's thread (the Pipeline Manager work runs concurrently with
//! the pipeline, which keeps flowing while dimension hash tables are updated) and
//! returns a [`QueryHandle`] whose [`QueryHandle::wait`] blocks until the continuous
//! scan has wrapped around the query's starting tuple and its result is complete.
//!
//! The manager thread performs the asynchronous work of §3.3.2 and §3.4: cleaning up
//! dimension hash tables after queries finish (Algorithm 2), recycling query ids, and
//! periodically re-optimising the Filter order from observed selectivities.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use cjoin_common::{Error, FxHashMap, QueryId, QueryIdAllocator, QuerySet, Result};
use cjoin_query::{QueryResult, StarQuery};
use cjoin_storage::{
    segment_ranges, Catalog, ColumnarTable, CompressionPolicy, ContinuousScan, PartitionScheme,
    Row, ScanVolume, SnapshotId, DEFAULT_ROW_GROUP_ROWS,
};

use crate::colscan::ColumnarScanCursor;
use crate::config::CjoinConfig;
use crate::dimension::DimensionTable;
use crate::distributor::{Distributor, ShardMerger, ShardRouter};
use crate::filter::FilterChain;
use crate::optimizer::reorder_filters;
use crate::pipeline::{run_stage_worker, StagePlan};
use crate::pool::BatchPool;
use crate::preprocessor::{
    PartitionPlan, Preprocessor, PreprocessorCommand, PreprocessorContext, ScanCoordinator,
    ScanMessage, ScanStall,
};
use crate::progress::QueryProgress;
use crate::queue::{ShardQueues, TupleQueue};
use crate::stats::{
    ColumnarScanStats, FilterStatsSnapshot, PipelineStats, ScanWorkerCounters, ShardCounters,
    SharedCounters,
};
use crate::tuple::{Message, QueryRuntime};

/// A registered query's admission-side bookkeeping (used by Algorithm 2 at cleanup).
#[derive(Debug)]
struct Registered {
    referenced_dims: Vec<String>,
}

/// State shared between admissions (caller threads) and the manager thread.
#[derive(Debug)]
struct AdmissionState {
    allocator: QueryIdAllocator,
    registered: FxHashMap<u32, Registered>,
}

/// Handle to a query registered with the CJOIN pipeline.
#[derive(Debug)]
pub struct QueryHandle {
    id: QueryId,
    name: String,
    result_rx: Receiver<QueryResult>,
    submitted_at: Instant,
    submission_time: Duration,
    progress: Arc<QueryProgress>,
}

impl QueryHandle {
    /// The CJOIN-internal id assigned to the query.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time spent in admission: from submission until the query-start control tuple
    /// entered the pipeline (the paper's "submission time", Tables 1–3).
    pub fn submission_time(&self) -> Duration {
        self.submission_time
    }

    /// Blocks until the query completes and returns its result.
    ///
    /// # Errors
    /// Fails if the pipeline shuts down before the query completes.
    pub fn wait(self) -> Result<QueryResult> {
        self.result_rx
            .recv()
            .map_err(|_| Error::invalid_state("pipeline shut down before the query completed"))
    }

    /// Blocks until the query completes, returning the result together with the
    /// total response time (submission to completion).
    ///
    /// # Errors
    /// Fails if the pipeline shuts down before the query completes.
    pub fn wait_with_time(self) -> Result<(QueryResult, Duration)> {
        let started = self.submitted_at;
        let result = self.wait()?;
        Ok((result, started.elapsed()))
    }

    /// Returns the result if it is already available, without blocking.
    pub fn try_result(&self) -> Option<QueryResult> {
        self.result_rx.try_recv().ok()
    }

    /// The query's progress tracker (§3.2.3): the continuous scan position serves as
    /// a reliable progress indicator, and the observed rate gives an estimated time
    /// of completion.
    pub fn progress(&self) -> &Arc<QueryProgress> {
        &self.progress
    }
}

struct PipelineThreads {
    /// Scan front-end: the single classic Preprocessor, or one thread per segment
    /// scan worker.
    scan_workers: Vec<JoinHandle<()>>,
    /// The admission coordinator (sharded scan front-end only).
    scan_coordinator: Option<JoinHandle<()>>,
    workers: Vec<Vec<JoinHandle<()>>>,
    /// The aggregation-stage router (sharded mode only).
    router: Option<JoinHandle<()>>,
    /// Aggregation workers: the single Distributor, or one worker per shard.
    distributors: Vec<JoinHandle<()>>,
    /// The end-barrier merger (sharded mode only).
    merger: Option<JoinHandle<()>>,
    manager: JoinHandle<()>,
}

/// The CJOIN engine: one always-on pipeline over a catalog's fact table.
pub struct CjoinEngine {
    catalog: Arc<Catalog>,
    config: CjoinConfig,
    chain: Arc<FilterChain>,
    slot_count: Arc<AtomicUsize>,
    counters: Arc<SharedCounters>,
    shard_counters: Vec<Arc<ShardCounters>>,
    scan_worker_counters: Vec<Arc<ScanWorkerCounters>>,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    admission: Arc<Mutex<AdmissionState>>,
    cmd_tx: Sender<ScanMessage>,
    stage_queues: Vec<TupleQueue>,
    distributor_queue: TupleQueue,
    stage_plan: StagePlan,
    partition_info: Option<PartitionInfo>,
    /// The compressed columnar scan front-end's replica and byte-accounting
    /// counters (`None` unless `CjoinConfig::columnar_scan` is enabled).
    columnar: Option<(Arc<ColumnarTable>, Arc<ScanVolume>)>,
    shutdown_flag: Arc<AtomicBool>,
    threads: Mutex<Option<PipelineThreads>>,
}

#[derive(Debug, Clone)]
struct PartitionInfo {
    scheme: PartitionScheme,
    column_name: String,
    /// `rows_per_partition[w][p]` = rows of partition `p` that lie in scan worker
    /// `w`'s segment (one segment covering the whole table in classic mode), so
    /// per-worker pruning plans sum to the classic whole-table plan.
    rows_per_partition: Vec<Vec<u64>>,
}

impl CjoinEngine {
    /// Starts the always-on pipeline over `catalog`'s fact table.
    ///
    /// # Errors
    /// Fails if the configuration is invalid or the catalog has no fact table.
    pub fn start(catalog: Arc<Catalog>, config: CjoinConfig) -> Result<Self> {
        config.validate()?;
        let fact = catalog.fact_table()?;

        let stage_plan = StagePlan::derive(&config.stage_layout, config.worker_threads)
            .with_distributor_shards(config.distributor_shards)
            .with_scan_workers(config.scan_workers);
        let shards = stage_plan.distributor_shards;
        let scan_workers = stage_plan.scan_workers;
        let chain = Arc::new(FilterChain::new());
        let slot_count = Arc::new(AtomicUsize::new(0));
        let counters = SharedCounters::new();
        let shard_counters = ShardCounters::new_vec(shards);
        let scan_worker_counters = ScanWorkerCounters::new_vec(scan_workers);
        let in_flight = Arc::new(AtomicI64::new(0));
        // Enough pooled batches for every queue position plus the threads working on
        // one, including the per-shard queues and sub-batches of the sharded
        // aggregation stage and the per-segment working/leftover batches of the
        // sharded scan front-end.
        let pool_capacity = (stage_plan.num_stages() + 1) * config.queue_capacity
            + stage_plan.total_threads()
            + 2 * scan_workers
            + shards * (config.queue_capacity.max(4) + 1);
        let pool = BatchPool::new(pool_capacity, config.use_batch_pool);
        let shutdown_flag = Arc::new(AtomicBool::new(false));

        // The compressed columnar front-end scans a read-optimised replica of the
        // fact table built once at engine start; rows appended later are served
        // from the row store by the hybrid tail path (see `crate::colscan`).
        let columnar = if config.columnar_scan {
            let replica = Arc::new(ColumnarTable::from_table(
                &fact,
                CompressionPolicy::Adaptive,
            )?);
            let volume = Arc::new(ScanVolume::with_columns(fact.schema().arity()));
            Some((replica, volume))
        } else {
            None
        };

        // The fact table's page range is split into one static segment per scan
        // worker; the last segment's end is open so appended rows keep the classic
        // next-pass semantics. (One whole-table "segment" in classic mode.) The
        // columnar front-end aligns segment boundaries to row groups instead of
        // heap pages, so zone-map skipping never has to split a group between
        // two workers.
        let segment_unit = if columnar.is_some() {
            DEFAULT_ROW_GROUP_ROWS
        } else {
            fact.rows_per_page()
        };
        let scan_ranges = segment_ranges(fact.len() as u64, segment_unit, scan_workers);

        // Partition pruning needs per-partition row counts — per scan segment, so
        // each worker knows when it has covered all the partitions a query cares
        // about within its own segment.
        let partition_info = if config.partition_pruning {
            catalog.fact_partitioning().map(|scheme| {
                let column_name = fact.schema().column(scheme.column).name.clone();
                let mut rows_per_partition =
                    vec![vec![0u64; scheme.num_partitions()]; scan_ranges.len()];
                fact.for_each_visible(SnapshotId(u64::MAX), |row_id, row| {
                    let pid = scheme.partition_of(row.int(scheme.column)).index();
                    // Segment starts are sorted and contiguous from 0, so the
                    // owning segment is the last one starting at or before the
                    // row — a binary search, not a linear scan per row.
                    let segment = scan_ranges
                        .partition_point(|&(start, _)| start <= row_id.0)
                        .saturating_sub(1);
                    rows_per_partition[segment][pid] += 1;
                });
                PartitionInfo {
                    scheme,
                    column_name,
                    rows_per_partition,
                }
            })
        } else {
            None
        };
        let partition_scheme = partition_info
            .as_ref()
            .map(|p| (p.scheme.clone(), p.scheme.column));

        // Queues: one per stage plus the distributor's.
        let stage_queues: Vec<TupleQueue> = (0..stage_plan.num_stages())
            .map(|_| TupleQueue::new(config.queue_capacity))
            .collect();
        let distributor_queue = TupleQueue::new(config.queue_capacity.max(4));

        // Scan front-end: the classic single Preprocessor thread, or one segment
        // worker per scan range plus the admission coordinator (which owns the
        // engine-facing command channel — segment workers also report their
        // per-query pass completions into the same inbox).
        let (cmd_tx, cmd_rx) = unbounded();
        let preprocessor_context = |worker: usize| PreprocessorContext {
            stage_tx: stage_queues[0].sender(),
            distributor_tx: distributor_queue.sender(),
            in_flight: Arc::clone(&in_flight),
            pool: Arc::clone(&pool),
            slot_count: Arc::clone(&slot_count),
            counters: Arc::clone(&counters),
            worker_counters: Arc::clone(&scan_worker_counters[worker]),
            config: config.clone(),
            partition_scheme: partition_scheme.clone(),
        };
        let mut scan_worker_handles = Vec::with_capacity(scan_workers);
        let mut coordinator_handle = None;
        if scan_workers == 1 {
            let mut preprocessor = match &columnar {
                Some((replica, volume)) => {
                    let cursor = ColumnarScanCursor::new(
                        Arc::clone(replica),
                        Arc::clone(&fact),
                        Arc::clone(volume),
                    );
                    Preprocessor::new_columnar(cursor, cmd_rx, preprocessor_context(0))
                }
                None => {
                    let scan =
                        ContinuousScan::new(Arc::clone(&fact)).with_batch_rows(config.batch_size);
                    Preprocessor::new(scan, cmd_rx, preprocessor_context(0))
                }
            };
            scan_worker_handles.push(
                std::thread::Builder::new()
                    .name("cjoin-preprocessor".into())
                    .spawn(move || preprocessor.run())
                    .map_err(|e| {
                        Error::invalid_state(format!("failed to spawn preprocessor: {e}"))
                    })?,
            );
        } else {
            let stall = ScanStall::new(scan_workers);
            let mut worker_txs = Vec::with_capacity(scan_workers);
            for (worker, &(start, end)) in scan_ranges.iter().enumerate() {
                let (worker_tx, worker_rx) = unbounded();
                worker_txs.push(worker_tx);
                let mut segment_worker = match &columnar {
                    Some((replica, volume)) => {
                        let cursor = ColumnarScanCursor::new(
                            Arc::clone(replica),
                            Arc::clone(&fact),
                            Arc::clone(volume),
                        )
                        .with_segment(start, end);
                        Preprocessor::segment_worker_columnar(
                            cursor,
                            worker_rx,
                            preprocessor_context(worker),
                            worker,
                            cmd_tx.clone(),
                            Arc::clone(&stall),
                        )
                    }
                    None => {
                        let scan = ContinuousScan::new(Arc::clone(&fact))
                            .with_batch_rows(config.batch_size)
                            .with_segment(start, end);
                        Preprocessor::segment_worker(
                            scan,
                            worker_rx,
                            preprocessor_context(worker),
                            worker,
                            cmd_tx.clone(),
                            Arc::clone(&stall),
                        )
                    }
                };
                scan_worker_handles.push(
                    std::thread::Builder::new()
                        .name(format!("cjoin-scan-w{worker}"))
                        .spawn(move || segment_worker.run())
                        .map_err(|e| {
                            Error::invalid_state(format!("failed to spawn scan worker: {e}"))
                        })?,
                );
            }
            let mut coordinator = ScanCoordinator::new(
                cmd_rx,
                worker_txs,
                distributor_queue.sender(),
                Arc::clone(&in_flight),
                Arc::clone(&counters),
                stall,
                config.max_concurrency,
            );
            coordinator_handle = Some(
                std::thread::Builder::new()
                    .name("cjoin-scan-coord".into())
                    .spawn(move || coordinator.run())
                    .map_err(|e| {
                        Error::invalid_state(format!("failed to spawn scan coordinator: {e}"))
                    })?,
            );
        }

        // Stage worker threads.
        let num_stages = stage_plan.num_stages();
        let mut workers: Vec<Vec<JoinHandle<()>>> = Vec::with_capacity(num_stages);
        for (stage_index, &threads) in stage_plan.threads_per_stage.iter().enumerate() {
            let mut stage_workers = Vec::with_capacity(threads);
            for worker_index in 0..threads {
                let input = stage_queues[stage_index].receiver();
                let output = if stage_index + 1 < num_stages {
                    stage_queues[stage_index + 1].sender()
                } else {
                    distributor_queue.sender()
                };
                let chain = Arc::clone(&chain);
                let early_skip = config.early_skip;
                let batched_probing = config.batched_probing;
                let handle = std::thread::Builder::new()
                    .name(format!("cjoin-stage{stage_index}-w{worker_index}"))
                    .spawn(move || {
                        run_stage_worker(
                            stage_index,
                            num_stages,
                            input,
                            output,
                            chain,
                            early_skip,
                            batched_probing,
                        )
                    })
                    .map_err(|e| Error::invalid_state(format!("failed to spawn worker: {e}")))?;
                stage_workers.push(handle);
            }
            workers.push(stage_workers);
        }

        // Aggregation stage: a single Distributor, or router + shards + merger.
        let (finished_tx, finished_rx) = unbounded();
        let mut distributor_handles = Vec::with_capacity(shards);
        let mut router_handle = None;
        let mut merger_handle = None;
        if shards == 1 {
            let mut distributor = Distributor::single(
                distributor_queue.receiver(),
                Arc::clone(&in_flight),
                Arc::clone(&pool),
                Arc::clone(&counters),
                Arc::clone(&shard_counters[0]),
                finished_tx,
                config.max_concurrency,
            );
            distributor_handles.push(
                std::thread::Builder::new()
                    .name("cjoin-distributor".into())
                    .spawn(move || distributor.run())
                    .map_err(|e| {
                        Error::invalid_state(format!("failed to spawn distributor: {e}"))
                    })?,
            );
        } else {
            let shard_queues = ShardQueues::new(shards, config.queue_capacity.max(4));
            let (partials_tx, partials_rx) = unbounded();
            for (shard, shard_counter) in shard_counters.iter().enumerate() {
                let mut worker = Distributor::sharded(
                    shard,
                    shard_queues.shard(shard).receiver(),
                    Arc::clone(&in_flight),
                    Arc::clone(&pool),
                    Arc::clone(&counters),
                    Arc::clone(shard_counter),
                    partials_tx.clone(),
                    config.max_concurrency,
                );
                distributor_handles.push(
                    std::thread::Builder::new()
                        .name(format!("cjoin-distributor-s{shard}"))
                        .spawn(move || worker.run())
                        .map_err(|e| {
                            Error::invalid_state(format!("failed to spawn shard {shard}: {e}"))
                        })?,
                );
            }
            // The merger must observe the channel disconnect once every shard
            // exits, so the engine keeps no sender of its own.
            drop(partials_tx);
            // The router gets a sender-only handle; `shard_queues` drops at the end
            // of this block, leaving each worker as the sole receiver of its queue
            // so a dead shard surfaces as a send error rather than a blocked send.
            let mut router = ShardRouter::new(
                distributor_queue.receiver(),
                shard_queues.senders(),
                Arc::clone(&in_flight),
                Arc::clone(&pool),
                config.batch_size,
                config.max_concurrency,
            );
            router_handle = Some(
                std::thread::Builder::new()
                    .name("cjoin-dist-router".into())
                    .spawn(move || router.run())
                    .map_err(|e| Error::invalid_state(format!("failed to spawn router: {e}")))?,
            );
            let mut merger =
                ShardMerger::new(partials_rx, shards, Arc::clone(&counters), finished_tx);
            merger_handle = Some(
                std::thread::Builder::new()
                    .name("cjoin-dist-merger".into())
                    .spawn(move || merger.run())
                    .map_err(|e| Error::invalid_state(format!("failed to spawn merger: {e}")))?,
            );
        }

        // Manager thread: Algorithm 2 cleanup + adaptive filter ordering.
        let admission = Arc::new(Mutex::new(AdmissionState {
            allocator: QueryIdAllocator::new(config.max_concurrency),
            registered: FxHashMap::default(),
        }));
        let manager_handle = {
            let chain = Arc::clone(&chain);
            let admission = Arc::clone(&admission);
            let counters = Arc::clone(&counters);
            let config = config.clone();
            let shutdown_flag = Arc::clone(&shutdown_flag);
            std::thread::Builder::new()
                .name("cjoin-manager".into())
                .spawn(move || {
                    run_manager(
                        finished_rx,
                        chain,
                        admission,
                        counters,
                        config,
                        shutdown_flag,
                    )
                })
                .map_err(|e| Error::invalid_state(format!("failed to spawn manager: {e}")))?
        };

        Ok(Self {
            catalog,
            config,
            chain,
            slot_count,
            counters,
            shard_counters,
            scan_worker_counters,
            in_flight,
            pool,
            admission,
            cmd_tx,
            stage_queues,
            distributor_queue,
            stage_plan,
            partition_info,
            columnar,
            shutdown_flag,
            threads: Mutex::new(Some(PipelineThreads {
                scan_workers: scan_worker_handles,
                scan_coordinator: coordinator_handle,
                workers,
                router: router_handle,
                distributors: distributor_handles,
                merger: merger_handle,
                manager: manager_handle,
            })),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CjoinConfig {
        &self.config
    }

    /// The catalog the engine runs over.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Number of currently registered queries.
    pub fn active_queries(&self) -> usize {
        self.admission.lock().registered.len()
    }

    /// Registers a star query with the always-on pipeline (Algorithm 1) and returns a
    /// handle to wait for its result.
    ///
    /// # Errors
    /// Fails if the engine is shut down, the query does not bind against the catalog,
    /// the `maxConc` limit is reached, or the query joins a dimension through
    /// different key columns than an earlier query (role-playing dimensions are not
    /// supported by a single CJOIN operator).
    pub fn submit(&self, query: StarQuery) -> Result<QueryHandle> {
        if self.shutdown_flag.load(Ordering::Acquire) {
            return Err(Error::invalid_state("engine is shut down"));
        }
        let submitted_at = Instant::now();
        let bound = query.bind(&self.catalog)?;
        let snapshot = bound
            .snapshot
            .unwrap_or_else(|| self.catalog.snapshots().current());

        // ---- Algorithm 1, lines 1–16: update dimension hash tables -------------
        let mut admission = self.admission.lock();
        let id = admission.allocator.allocate()?;
        let others = QuerySet::from_bits(
            self.config.max_concurrency,
            admission.registered.keys().map(|&k| k as usize),
        );

        let mut referenced_dims = Vec::with_capacity(bound.dimensions.len());
        let mut slot_map = Vec::with_capacity(bound.dimensions.len());
        let mut admit = || -> Result<()> {
            for clause in &bound.dimensions {
                let dim_table = match self.chain.find(&clause.table) {
                    Some(existing) => {
                        if existing.fact_fk_column != clause.fact_fk_column
                            || existing.dim_key_column != clause.dim_key_column
                        {
                            return Err(Error::invalid_state(format!(
                                "dimension '{}' is already registered with different join columns",
                                clause.table
                            )));
                        }
                        existing
                    }
                    None => {
                        let slot = self.slot_count.fetch_add(1, Ordering::AcqRel);
                        let table = Arc::new(DimensionTable::new(
                            clause.table.clone(),
                            slot,
                            clause.fact_fk_column,
                            clause.dim_key_column,
                            self.config.max_concurrency,
                            &others,
                        ));
                        self.chain.push(Arc::clone(&table));
                        table
                    }
                };
                // Evaluate σ_cij(Dj) against the dimension table and load the result.
                let dimension = self.catalog.table(&clause.table)?;
                let rows: Vec<(i64, Row)> = dimension
                    .select(snapshot, |row| clause.predicate.eval(row))
                    .into_iter()
                    .map(|(_, row)| (row.int(clause.dim_key_column), row))
                    .collect();
                dim_table.register_query(id, &rows);
                referenced_dims.push(clause.table.clone());
                slot_map.push(dim_table.slot);
            }
            Ok(())
        };
        if let Err(e) = admit() {
            // Roll back: clear whatever this query managed to register.
            for dim in self.chain.snapshot() {
                let referenced = referenced_dims.contains(&dim.name);
                let empty = dim.unregister_query(id, referenced);
                if empty {
                    self.chain.remove(&dim.name);
                }
            }
            let _ = admission.allocator.release(id);
            return Err(e);
        }
        // Dimensions in the pipeline that this query does not reference implicitly
        // accept every tuple for it.
        for dim in self.chain.snapshot() {
            if !referenced_dims.contains(&dim.name) {
                dim.register_unreferencing_query(id);
            }
        }
        admission
            .registered
            .insert(id.0, Registered { referenced_dims });
        drop(admission);

        // ---- Partition pruning plans (§5), one per scan worker ------------------
        let partition: Vec<Option<PartitionPlan>> = self
            .partition_info
            .as_ref()
            .and_then(|info| {
                let (lo, hi) = bound.fact_column_range(&info.column_name)?;
                let covering = info.scheme.covering(lo, hi);
                let mut needed = vec![false; info.scheme.num_partitions()];
                for pid in &covering {
                    needed[pid.index()] = true;
                }
                // Each worker's plan counts only the needed-partition rows of its
                // own segment; the per-worker remainders sum to the classic
                // whole-table remainder.
                Some(
                    info.rows_per_partition
                        .iter()
                        .map(|segment_rows| {
                            let remaining_rows =
                                covering.iter().map(|pid| segment_rows[pid.index()]).sum();
                            Some(PartitionPlan {
                                needed: needed.clone(),
                                remaining_rows,
                            })
                        })
                        .collect(),
                )
            })
            .unwrap_or_default();

        // ---- Algorithm 1, lines 17–22: install in Preprocessor & Distributor ----
        let fact_predicate = if bound.fact_predicate_is_true {
            None
        } else {
            Some(bound.fact_predicate.clone())
        };
        let (result_tx, result_rx) = bounded(1);
        let progress = Arc::new(
            QueryProgress::new(self.catalog.fact_table()?.len() as u64)
                .with_segments(self.stage_plan.scan_workers as u64),
        );
        let runtime = Arc::new(QueryRuntime {
            id,
            name: query.name.clone(),
            bound: Arc::new(bound),
            slot_map,
            result_tx,
            admitted_at: submitted_at,
            progress: Arc::clone(&progress),
        });
        let (ack_tx, ack_rx) = bounded(1);
        self.cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime,
                fact_predicate,
                snapshot,
                partition,
                ack: Some(ack_tx),
            }))
            .map_err(|_| Error::invalid_state("pipeline is not running"))?;
        ack_rx
            .recv()
            .map_err(|_| Error::invalid_state("pipeline stopped during query installation"))?;
        let submission_time = submitted_at.elapsed();

        Ok(QueryHandle {
            id,
            name: query.name,
            result_rx,
            submitted_at,
            submission_time,
            progress,
        })
    }

    /// Convenience: submits a query and blocks until its result is available.
    ///
    /// # Errors
    /// Propagates submission and wait errors.
    pub fn execute(&self, query: StarQuery) -> Result<QueryResult> {
        self.submit(query)?.wait()
    }

    /// A point-in-time snapshot of pipeline statistics.
    pub fn stats(&self) -> PipelineStats {
        let filters = self
            .chain
            .snapshot()
            .iter()
            .map(|f| {
                let (tuples_in, tuples_dropped, probes, skips) = f.stats.snapshot();
                FilterStatsSnapshot {
                    dimension: f.name.clone(),
                    entries: f.len(),
                    tuples_in,
                    tuples_dropped,
                    probes,
                    skips,
                }
            })
            .collect();
        PipelineStats {
            tuples_scanned: self.counters.tuples_scanned.load(Ordering::Relaxed),
            batches_sent: self.counters.batches_sent.load(Ordering::Relaxed),
            tuples_distributed: self.counters.tuples_distributed.load(Ordering::Relaxed),
            routings: self.counters.routings.load(Ordering::Relaxed),
            scan_passes: self.counters.scan_passes.load(Ordering::Relaxed),
            queries_admitted: self.counters.queries_admitted.load(Ordering::Relaxed),
            queries_completed: self.counters.queries_completed.load(Ordering::Relaxed),
            active_queries: self.active_queries(),
            filter_reorders: self.counters.filter_reorders.load(Ordering::Relaxed),
            control_barriers: self.counters.control_barriers.load(Ordering::Relaxed),
            barrier_wait_ns: self.counters.barrier_wait_ns.load(Ordering::Relaxed),
            filters,
            scan_workers: self
                .scan_worker_counters
                .iter()
                .enumerate()
                .map(|(worker, c)| c.snapshot(worker))
                .collect(),
            distributor_shards: self
                .shard_counters
                .iter()
                .enumerate()
                .map(|(shard, c)| c.snapshot(shard))
                .collect(),
            batches_in_flight: self.in_flight.load(Ordering::Acquire),
            pool_hits: self.pool.hits(),
            pool_misses: self.pool.misses(),
            tuples_allocated: self.counters.tuples_allocated.load(Ordering::Relaxed),
            tuples_recycled: self.counters.tuples_recycled.load(Ordering::Relaxed),
            columnar: self.columnar.as_ref().map(|(_, volume)| ColumnarScanStats {
                bytes_scanned: volume.bytes_scanned(),
                rows_scanned: volume.rows_scanned(),
                row_groups_skipped: volume.row_groups_skipped(),
                rows_predicate_skipped: volume.rows_predicate_skipped(),
                predicate_probes: volume.predicate_probes(),
                predicate_rows: volume.predicate_rows(),
                column_bytes: volume.column_bytes(),
            }),
        }
    }

    /// The read-optimised columnar replica of the fact table, when the engine
    /// runs with `CjoinConfig::columnar_scan` (for compression-ratio reporting
    /// by the experiment harness).
    pub fn columnar_replica(&self) -> Option<&Arc<ColumnarTable>> {
        self.columnar.as_ref().map(|(replica, _)| replica)
    }

    /// Current filter order (dimension names), for diagnostics and tests.
    pub fn filter_order(&self) -> Vec<String> {
        self.chain.order()
    }

    /// Shuts the pipeline down and joins all threads. Idempotent.
    pub fn shutdown(&self) {
        let Some(threads) = self.threads.lock().take() else {
            return;
        };
        self.shutdown_flag.store(true, Ordering::Release);
        // Stop the producers first so no new data enters the pipeline. In sharded
        // mode the coordinator consumes the shutdown, opens the stall gate and
        // relays the stop to every segment worker before exiting.
        let _ = self
            .cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Shutdown));
        if let Some(coordinator) = threads.scan_coordinator {
            let _ = coordinator.join();
        }
        for handle in threads.scan_workers {
            let _ = handle.join();
        }
        // Stop each stage in order; downstream stages are still draining while
        // upstream workers finish their last batches.
        for (stage_index, stage_workers) in threads.workers.into_iter().enumerate() {
            for _ in 0..stage_workers.len() {
                let _ = self.stage_queues[stage_index].send(Message::Shutdown);
            }
            for handle in stage_workers {
                let _ = handle.join();
            }
        }
        // One shutdown message stops the whole aggregation stage: the single
        // Distributor consumes it directly; in sharded mode the router consumes it
        // and broadcasts it to every shard.
        let _ = self.distributor_queue.send(Message::Shutdown);
        if let Some(router) = threads.router {
            let _ = router.join();
        }
        for handle in threads.distributors {
            let _ = handle.join();
        }
        // Every shard dropping its partials sender lets the merger observe the
        // disconnect and exit.
        if let Some(merger) = threads.merger {
            let _ = merger.join();
        }
        // The aggregation stage dropping its side of the finished-query channel lets
        // the manager observe the disconnect and exit.
        let _ = threads.manager.join();
    }

    /// The derived stage plan (diagnostics / tests).
    pub fn stage_plan(&self) -> &StagePlan {
        &self.stage_plan
    }
}

impl Drop for CjoinEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl cjoin_query::QueryTicket for QueryHandle {
    fn wait(self: Box<Self>) -> Result<QueryResult> {
        QueryHandle::wait(*self)
    }
}

impl cjoin_query::JoinEngine for CjoinEngine {
    fn name(&self) -> &str {
        "CJOIN"
    }

    fn submit(&self, query: StarQuery) -> Result<Box<dyn cjoin_query::QueryTicket>> {
        let handle = CjoinEngine::submit(self, query)?;
        Ok(Box::new(handle))
    }

    fn stats(&self) -> cjoin_query::EngineStats {
        let stats = CjoinEngine::stats(self);
        cjoin_query::EngineStats {
            queries_submitted: stats.queries_admitted,
            queries_completed: stats.queries_completed,
            active_queries: stats.active_queries,
            fact_tuples_scanned: stats.tuples_scanned,
        }
    }

    fn shutdown(&self) {
        CjoinEngine::shutdown(self);
    }
}

/// The manager thread body: query cleanup (Algorithm 2) and adaptive filter ordering.
fn run_manager(
    finished_rx: Receiver<QueryId>,
    chain: Arc<FilterChain>,
    admission: Arc<Mutex<AdmissionState>>,
    counters: Arc<SharedCounters>,
    config: CjoinConfig,
    shutdown_flag: Arc<AtomicBool>,
) {
    let interval = Duration::from_millis(config.reorder_interval_ms.max(1));
    let mut last_reorder = Instant::now();
    loop {
        match finished_rx.recv_timeout(interval) {
            Ok(id) => cleanup_query(id, &chain, &admission),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if shutdown_flag.load(Ordering::Acquire) {
            // Drain any remaining notifications before exiting so ids are recycled.
            while let Ok(id) = finished_rx.try_recv() {
                cleanup_query(id, &chain, &admission);
            }
            break;
        }
        if config.adaptive_filter_ordering && last_reorder.elapsed() >= interval {
            reorder_filters(&chain, &counters);
            last_reorder = Instant::now();
        }
    }
}

/// Algorithm 2: remove a finished query from every dimension hash table, drop empty
/// Filters, and recycle the query id.
fn cleanup_query(id: QueryId, chain: &Arc<FilterChain>, admission: &Arc<Mutex<AdmissionState>>) {
    let mut admission = admission.lock();
    let Some(registered) = admission.registered.remove(&id.0) else {
        return;
    };
    for dim in chain.snapshot() {
        let referenced = registered.referenced_dims.contains(&dim.name);
        let empty = dim.unregister_query(id, referenced);
        if empty {
            chain.remove(&dim.name);
        }
    }
    let _ = admission.allocator.release(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{reference, AggFunc, AggValue, AggregateSpec, ColumnRef, Predicate};
    use cjoin_storage::{Column, Schema, Table, Value};

    /// A small synthetic star schema: fact(sales) with two dimensions.
    fn small_catalog(fact_rows: i64) -> Arc<Catalog> {
        let catalog = Catalog::new();
        let color = Table::new(Schema::new(
            "color",
            vec![Column::int("k"), Column::str("name")],
        ));
        for (k, name) in [(1, "red"), (2, "green"), (3, "blue")] {
            color
                .insert(vec![Value::int(k), Value::str(name)], SnapshotId::INITIAL)
                .unwrap();
        }
        let size = Table::new(Schema::new(
            "size",
            vec![Column::int("k"), Column::str("label")],
        ));
        for (k, label) in [(1, "small"), (2, "large")] {
            size.insert(vec![Value::int(k), Value::str(label)], SnapshotId::INITIAL)
                .unwrap();
        }
        let fact = Table::with_rows_per_page(
            Schema::new(
                "sales",
                vec![
                    Column::int("colorkey"),
                    Column::int("sizekey"),
                    Column::int("amount"),
                ],
            ),
            32,
        );
        fact.insert_batch_unchecked(
            (0..fact_rows).map(|i| {
                Row::new(vec![
                    Value::int(i % 3 + 1),
                    Value::int(i % 2 + 1),
                    Value::int(i),
                ])
            }),
            SnapshotId::INITIAL,
        );
        catalog.add_table(Arc::new(color));
        catalog.add_table(Arc::new(size));
        catalog.add_fact_table(Arc::new(fact));
        Arc::new(catalog)
    }

    fn test_config() -> CjoinConfig {
        CjoinConfig::default()
            .with_max_concurrency(32)
            .with_worker_threads(2)
            .with_batch_size(64)
    }

    fn red_sum_query(name: &str) -> StarQuery {
        StarQuery::builder(name)
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
            .aggregate(AggregateSpec::count_star())
            .build()
    }

    #[test]
    fn single_query_matches_reference() {
        let catalog = small_catalog(300);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let query = red_sum_query("red_sum");
        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query).unwrap();
        assert!(
            result.approx_eq(&expected),
            "diff: {:?}",
            result.diff(&expected)
        );
        engine.shutdown();
    }

    #[test]
    fn concurrent_queries_share_the_pipeline_and_all_match_reference() {
        let catalog = small_catalog(600);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let queries: Vec<StarQuery> = vec![
            red_sum_query("q_red"),
            StarQuery::builder("q_by_color")
                .join_dimension("color", "colorkey", "k", Predicate::True)
                .group_by(ColumnRef::dim("color", "name"))
                .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
                .build(),
            StarQuery::builder("q_two_dims")
                .join_dimension(
                    "color",
                    "colorkey",
                    "k",
                    Predicate::in_list("name", vec!["red", "blue"]),
                )
                .join_dimension("size", "sizekey", "k", Predicate::eq("label", "large"))
                .group_by(ColumnRef::dim("size", "label"))
                .aggregate(AggregateSpec::count_star())
                .build(),
            StarQuery::builder("q_fact_only")
                .aggregate(AggregateSpec::over(AggFunc::Max, ColumnRef::fact("amount")))
                .build(),
        ];
        let expected: Vec<_> = queries
            .iter()
            .map(|q| reference::evaluate(&catalog, q, SnapshotId::INITIAL).unwrap())
            .collect();
        let handles: Vec<_> = queries
            .into_iter()
            .map(|q| engine.submit(q).unwrap())
            .collect();
        assert!(engine.active_queries() >= 1);
        for (handle, expected) in handles.into_iter().zip(expected) {
            let name = handle.name().to_string();
            let result = handle.wait().unwrap();
            assert!(
                result.approx_eq(&expected),
                "{name} diverges from reference: {:?}",
                result.diff(&expected)
            );
        }
        // After completion the manager cleans everything up.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(engine.active_queries(), 0);
        let stats = engine.stats();
        assert_eq!(stats.queries_admitted, 4);
        assert_eq!(stats.queries_completed, 4);
        assert!(stats.tuples_scanned >= 600);
        engine.shutdown();
    }

    #[test]
    fn query_ids_are_recycled_after_completion() {
        let catalog = small_catalog(120);
        let config = CjoinConfig::default()
            .with_max_concurrency(2)
            .with_worker_threads(1)
            .with_batch_size(32);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        // More sequential queries than maxConc: ids must be recycled.
        for i in 0..5 {
            let result = engine.execute(red_sum_query(&format!("q{i}"))).unwrap();
            assert_eq!(result.num_rows(), 1);
            // Allow the manager to clean up before the next submission needs an id.
            let deadline = Instant::now() + Duration::from_secs(2);
            while engine.active_queries() > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        engine.shutdown();
    }

    #[test]
    fn max_concurrency_is_enforced() {
        let catalog = small_catalog(50_000);
        let config = CjoinConfig::default()
            .with_max_concurrency(2)
            .with_worker_threads(1)
            .with_batch_size(128);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        let _h1 = engine.submit(red_sum_query("a")).unwrap();
        let _h2 = engine.submit(red_sum_query("b")).unwrap();
        let err = engine.submit(red_sum_query("c")).unwrap_err();
        assert!(matches!(err, Error::TooManyConcurrentQueries { .. }));
        engine.shutdown();
    }

    #[test]
    fn vertical_layout_produces_identical_results() {
        let catalog = small_catalog(400);
        let config = test_config().with_stage_layout(crate::config::StageLayout::Vertical);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        let query = StarQuery::builder("two_dims")
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "green"))
            .join_dimension("size", "sizekey", "k", Predicate::True)
            .group_by(ColumnRef::dim("size", "label"))
            .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
            .build();
        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let result = engine.execute(query).unwrap();
        assert!(result.approx_eq(&expected), "{:?}", result.diff(&expected));
        assert_eq!(engine.stage_plan().num_stages(), 2);
        engine.shutdown();
    }

    #[test]
    fn sharded_distributor_produces_identical_results() {
        let catalog = small_catalog(500);
        let config = test_config().with_distributor_shards(4);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        assert_eq!(engine.stage_plan().distributor_shards, 4);
        let queries = vec![
            red_sum_query("scalar"),
            StarQuery::builder("grouped")
                .join_dimension("color", "colorkey", "k", Predicate::True)
                .group_by(ColumnRef::dim("color", "name"))
                .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
                .aggregate(AggregateSpec::over(AggFunc::Avg, ColumnRef::fact("amount")))
                .build(),
        ];
        for query in queries {
            let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query).unwrap();
            assert!(
                result.approx_eq(&expected),
                "diff: {:?}",
                result.diff(&expected)
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.distributor_shards.len(), 4);
        assert_eq!(stats.shard_tuples_distributed(), stats.tuples_distributed);
        assert_eq!(stats.shard_routings(), stats.routings);
        assert_eq!(stats.batches_in_flight, 0, "quiesced pipeline");
        engine.shutdown();
    }

    #[test]
    fn sharded_scan_front_end_produces_identical_results() {
        let catalog = small_catalog(700);
        let config = test_config()
            .with_scan_workers(4)
            .with_distributor_shards(2);
        let engine = CjoinEngine::start(Arc::clone(&catalog), config).unwrap();
        assert_eq!(engine.stage_plan().scan_workers, 4);
        let queries = vec![
            red_sum_query("scalar"),
            StarQuery::builder("grouped")
                .join_dimension("color", "colorkey", "k", Predicate::True)
                .group_by(ColumnRef::dim("color", "name"))
                .aggregate(AggregateSpec::over(AggFunc::Sum, ColumnRef::fact("amount")))
                .aggregate(AggregateSpec::count_star())
                .build(),
            StarQuery::builder("fact_only")
                .aggregate(AggregateSpec::over(AggFunc::Max, ColumnRef::fact("amount")))
                .build(),
        ];
        for query in queries {
            let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
            let result = engine.execute(query).unwrap();
            assert!(
                result.approx_eq(&expected),
                "diff: {:?}",
                result.diff(&expected)
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.scan_workers.len(), 4);
        assert_eq!(stats.scan_worker_tuples_scanned(), stats.tuples_scanned);
        assert_eq!(stats.scan_worker_batches_sent(), stats.batches_sent);
        assert!(
            stats
                .scan_workers
                .iter()
                .filter(|w| w.tuples_scanned > 0)
                .count()
                >= 2,
            "the segmented scan actually spread work: {:?}",
            stats.scan_workers
        );
        assert_eq!(stats.batches_in_flight, 0, "quiesced pipeline");
        engine.shutdown();
    }

    #[test]
    fn unknown_table_is_rejected_and_id_released() {
        let catalog = small_catalog(50);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let bad = StarQuery::builder("bad")
            .join_dimension("nonexistent", "colorkey", "k", Predicate::True)
            .aggregate(AggregateSpec::count_star())
            .build();
        assert!(engine.submit(bad).is_err());
        // The failed admission must not leak a query id.
        let good = engine.execute(red_sum_query("good")).unwrap();
        assert_eq!(good.num_rows(), 1);
        engine.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let catalog = small_catalog(50);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        engine.shutdown();
        engine.shutdown(); // idempotent
        assert!(engine.submit(red_sum_query("late")).is_err());
    }

    #[test]
    fn snapshot_queries_see_consistent_data() {
        let catalog = small_catalog(100);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        // Commit an update that adds 10 more "red" rows at a later snapshot.
        let snap_before = catalog.snapshots().current();
        let fact = catalog.fact_table().unwrap();
        let snap_after = catalog.snapshots().commit();
        for i in 0..10 {
            fact.insert(
                vec![Value::int(1), Value::int(1), Value::int(1000 + i)],
                snap_after,
            )
            .unwrap();
        }
        let old = StarQuery::builder("old_snapshot")
            .snapshot(snap_before)
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .build();
        let new = StarQuery::builder("new_snapshot")
            .snapshot(snap_after)
            .join_dimension("color", "colorkey", "k", Predicate::eq("name", "red"))
            .aggregate(AggregateSpec::count_star())
            .build();
        let expected_old = reference::evaluate(&catalog, &old, snap_before).unwrap();
        let expected_new = reference::evaluate(&catalog, &new, snap_after).unwrap();
        let got_old = engine.execute(old).unwrap();
        let got_new = engine.execute(new).unwrap();
        assert!(got_old.approx_eq(&expected_old));
        assert!(got_new.approx_eq(&expected_new));
        // And they differ from each other by exactly the 10 inserted rows.
        let count = |r: &QueryResult| match r.rows().next().unwrap().1[0] {
            AggValue::Int(c) => c,
            _ => panic!("expected count"),
        };
        assert_eq!(count(&got_new) - count(&got_old), 10);
        engine.shutdown();
    }

    #[test]
    fn progress_reaches_completion_and_is_monotonic() {
        let catalog = small_catalog(5_000);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let handle = engine.submit(red_sum_query("tracked")).unwrap();
        let progress = Arc::clone(handle.progress());
        assert_eq!(progress.rows_total(), 5_000);

        let mut last = 0.0f64;
        for _ in 0..200 {
            let f = progress.fraction();
            assert!(
                f >= last - 1e-9,
                "progress must not go backwards ({f} < {last})"
            );
            last = f;
            if progress.is_completed() {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let _ = handle.wait().unwrap();
        assert!(progress.is_completed());
        assert_eq!(progress.fraction(), 1.0);
        assert_eq!(progress.estimated_remaining(), Some(Duration::ZERO));
        engine.shutdown();
    }

    #[test]
    fn submission_time_is_recorded() {
        let catalog = small_catalog(200);
        let engine = CjoinEngine::start(Arc::clone(&catalog), test_config()).unwrap();
        let handle = engine.submit(red_sum_query("timed")).unwrap();
        assert!(handle.submission_time() > Duration::ZERO);
        assert_eq!(handle.name(), "timed");
        let (result, response_time) = handle.wait_with_time().unwrap();
        assert_eq!(result.num_rows(), 1);
        assert!(response_time >= Duration::ZERO);
        engine.shutdown();
    }
}
