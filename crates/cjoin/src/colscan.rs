//! Encoded-predicate kernel for the compressed columnar scan front-end (§5,
//! Column Stores / Compressed Tables).
//!
//! When `CjoinConfig::columnar_scan` is on, the Preprocessor's continuous scan
//! runs over a read-optimised [`ColumnarTable`] replica instead of the row
//! store. This module provides the two pieces the Preprocessor composes:
//!
//! * [`EncodedFactPredicate`] — a query's fact predicate compiled, at install
//!   time, into a form evaluable directly over encoded column data: integer
//!   comparisons run on the encoded values (one probe per run on RLE columns),
//!   and string predicates are pre-translated into sets of dictionary *codes*
//!   (the partial-decompression trick), so no string is ever materialised on
//!   the scan path. Each compiled predicate can also be tested against a row
//!   group's [`ZoneMap`]s, yielding a [`ZoneVerdict`] that lets the scan skip
//!   whole groups (`Never`) or skip per-row evaluation (`Always`).
//! * [`ColumnarScanCursor`] — the pipeline-side scan cursor. It mirrors
//!   [`cjoin_storage::ContinuousScan`]'s segment/wrap semantics exactly
//!   (including the hybrid tail: rows appended to the source table after the
//!   replica was built are served from the live row store), so the §3.3
//!   admission and completion protocol is unchanged.
//!
//! ## Why encoded evaluation is exact
//!
//! Compilation mirrors [`cjoin_query::BoundPredicate`]'s evaluation semantics
//! leaf by leaf — including its two-valued NULL handling (a comparison with a
//! NULL operand is `false`, and `Not` is plain negation, so `Not(cmp)` *does*
//! match NULL rows) and the derived cross-type `Value` ordering
//! (`Int < Str < Null` by variant). Cross-type and NULL literals therefore
//! compile to constant nodes ([`matches nothing`](PredNode::Const) or
//! [`matches every non-NULL row`](PredNode::NonNull)) rather than being
//! rejected. Any shape that cannot be translated exactly makes `compile`
//! return `None`, and the Preprocessor falls back to evaluating the stored
//! `BoundPredicate` on fully materialised rows — slower, never wrong.

use std::sync::Arc;

use cjoin_query::{CompareOp, Predicate};
use cjoin_storage::{
    ColumnId, ColumnarTable, Dictionary, EncodedColumn, IntEncoding, Row, RowId, RowVersion,
    ScanVolume, Schema, Table, Value, ZoneCodes, ZoneMap,
};

/// What a row group's zone maps prove about a compiled predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneVerdict {
    /// No row in the group can match: the group's bytes need not be touched
    /// for this query.
    Never,
    /// Some rows may match: evaluate per row (or per run).
    Maybe,
    /// Every row in the group matches: the match bitmap fill can be skipped.
    Always,
}

/// A fact predicate compiled against a specific [`ColumnarTable`] replica.
#[derive(Debug, Clone)]
pub struct EncodedFactPredicate {
    root: PredNode,
    /// Sorted, distinct fact columns the predicate reads (for byte accounting).
    columns: Vec<ColumnId>,
}

/// One node of a compiled predicate. Leaves evaluate over encoded data with the
/// exact semantics of the corresponding `BoundNode`.
#[derive(Debug, Clone)]
enum PredNode {
    /// Matches every row (`true`) or no row (`false`) regardless of content.
    Const(bool),
    /// Matches every row whose `col` is non-NULL (cross-type comparisons whose
    /// outcome is fixed by the `Value` variant ordering reduce to this).
    NonNull { col: ColumnId },
    /// `col <op> value` over an integer column; NULL rows never match.
    IntCmp {
        col: ColumnId,
        op: CompareOp,
        value: i64,
    },
    /// `col BETWEEN lo AND hi` (inclusive) over an integer column.
    IntBetween { col: ColumnId, lo: i64, hi: i64 },
    /// `col IN (values)` over an integer column; `values` sorted and distinct.
    IntIn { col: ColumnId, values: Vec<i64> },
    /// String predicate pre-translated to dictionary codes: matches non-NULL
    /// rows whose code is in `codes` (sorted, distinct).
    StrIn { col: ColumnId, codes: Vec<u32> },
    /// Conjunction (empty = `true`).
    And(Vec<PredNode>),
    /// Disjunction (empty = `false`).
    Or(Vec<PredNode>),
    /// Plain negation (matches `BoundNode::Not`: NULL-row leaves negate to `true`).
    Not(Box<PredNode>),
}

/// Applies `op` to two ordered operands the way `CompareOp::eval` does for two
/// non-NULL values of the same type.
fn cmp_ord<T: Ord>(op: CompareOp, lhs: T, rhs: T) -> bool {
    match op {
        CompareOp::Eq => lhs == rhs,
        CompareOp::Ne => lhs != rhs,
        CompareOp::Lt => lhs < rhs,
        CompareOp::Le => lhs <= rhs,
        CompareOp::Gt => lhs > rhs,
        CompareOp::Ge => lhs >= rhs,
    }
}

/// The outcome of `Int(col) <op> Str(_)` for every non-NULL row, per the derived
/// `Value` ordering (`Int < Str`).
fn int_vs_str(op: CompareOp) -> bool {
    matches!(op, CompareOp::Ne | CompareOp::Lt | CompareOp::Le)
}

/// The outcome of `Str(col) <op> Int(_)` for every non-NULL row (`Str > Int`).
fn str_vs_int(op: CompareOp) -> bool {
    matches!(op, CompareOp::Ne | CompareOp::Gt | CompareOp::Ge)
}

/// A constant verdict for all non-NULL rows of `col`.
fn non_null_const(col: ColumnId, result: bool) -> PredNode {
    if result {
        PredNode::NonNull { col }
    } else {
        PredNode::Const(false)
    }
}

/// All dictionary codes whose string satisfies `op` against `s`, sorted.
fn str_codes_matching(dict: &Dictionary, op: CompareOp, s: &str) -> Vec<u32> {
    (0..dict.len() as u32)
        .filter(|&c| {
            let v = dict.value_of(c).expect("code in range");
            cmp_ord(op, v.as_ref(), s)
        })
        .collect()
}

impl EncodedFactPredicate {
    /// Compiles `pred` for evaluation over `replica`'s encoded columns, or
    /// `None` if any leaf cannot be translated exactly (the caller falls back
    /// to row-at-a-time `BoundPredicate` evaluation).
    pub fn compile(pred: &Predicate, schema: &Schema, replica: &ColumnarTable) -> Option<Self> {
        let root = compile_node(pred, schema, replica)?;
        let mut columns = Vec::new();
        collect_columns(&root, &mut columns);
        columns.sort_unstable();
        columns.dedup();
        Some(Self { root, columns })
    }

    /// The sorted, distinct fact columns the predicate reads.
    pub fn columns(&self) -> &[ColumnId] {
        &self.columns
    }

    /// Tests the predicate against a row group's zone maps.
    pub fn zone_verdict(&self, zones: &[ZoneMap]) -> ZoneVerdict {
        node_verdict(&self.root, zones)
    }

    /// Evaluates the predicate over rows `start .. start + out.len()` of
    /// `replica`, writing one match flag per row into `out` and recording
    /// probe counts into `volume`.
    pub fn eval_range(
        &self,
        replica: &ColumnarTable,
        start: usize,
        out: &mut [bool],
        volume: &ScanVolume,
    ) {
        eval_node(&self.root, replica, start, out, volume);
    }
}

fn compile_node(pred: &Predicate, schema: &Schema, replica: &ColumnarTable) -> Option<PredNode> {
    use cjoin_storage::ColumnType;
    Some(match pred {
        Predicate::True => PredNode::Const(true),
        Predicate::Compare { column, op, value } => {
            let col = schema.column_index(column).ok()?;
            match (schema.columns()[col].ty, value) {
                (_, Value::Null) => PredNode::Const(false),
                (ColumnType::Int, Value::Int(v)) => PredNode::IntCmp {
                    col,
                    op: *op,
                    value: *v,
                },
                (ColumnType::Int, Value::Str(_)) => non_null_const(col, int_vs_str(*op)),
                (ColumnType::Str, Value::Int(_)) => non_null_const(col, str_vs_int(*op)),
                (ColumnType::Str, Value::Str(s)) => {
                    let dict = str_dictionary(replica, col)?;
                    if *op == CompareOp::Eq {
                        match dict.code_of(s) {
                            Some(code) => PredNode::StrIn {
                                col,
                                codes: vec![code],
                            },
                            None => PredNode::Const(false),
                        }
                    } else {
                        PredNode::StrIn {
                            col,
                            codes: str_codes_matching(dict, *op, s),
                        }
                    }
                }
            }
        }
        Predicate::Between { column, low, high } => {
            let col = schema.column_index(column).ok()?;
            if low.is_null() || high.is_null() {
                return Some(PredNode::Const(false));
            }
            match (schema.columns()[col].ty, low, high) {
                (ColumnType::Int, Value::Int(lo), Value::Int(hi)) => PredNode::IntBetween {
                    col,
                    lo: *lo,
                    hi: *hi,
                },
                // `Int(v) >= Str(_)` is false: nothing can satisfy the lower bound.
                (ColumnType::Int, Value::Str(_), _) => PredNode::Const(false),
                // `Int(v) <= Str(_)` is true: only the lower bound constrains.
                (ColumnType::Int, Value::Int(lo), Value::Str(_)) => PredNode::IntCmp {
                    col,
                    op: CompareOp::Ge,
                    value: *lo,
                },
                // `Str(v) <= Int(_)` is false: nothing can satisfy the upper bound.
                (ColumnType::Str, _, Value::Int(_)) => PredNode::Const(false),
                // `Str(v) >= Int(_)` is true: only the upper bound constrains.
                (ColumnType::Str, Value::Int(_), Value::Str(hi)) => {
                    let dict = str_dictionary(replica, col)?;
                    PredNode::StrIn {
                        col,
                        codes: str_codes_matching(dict, CompareOp::Le, hi),
                    }
                }
                (ColumnType::Str, Value::Str(lo), Value::Str(hi)) => {
                    let dict = str_dictionary(replica, col)?;
                    let codes = (0..dict.len() as u32)
                        .filter(|&c| {
                            let v = dict.value_of(c).expect("code in range");
                            v.as_ref() >= lo.as_ref() && v.as_ref() <= hi.as_ref()
                        })
                        .collect();
                    PredNode::StrIn { col, codes }
                }
                (_, Value::Null, _) | (_, _, Value::Null) => unreachable!("handled above"),
            }
        }
        Predicate::InList { column, values } => {
            let col = schema.column_index(column).ok()?;
            match schema.columns()[col].ty {
                ColumnType::Int => {
                    // Cross-type and NULL list entries can never equal an Int row.
                    let mut ints: Vec<i64> = values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int(i) => Some(*i),
                            _ => None,
                        })
                        .collect();
                    ints.sort_unstable();
                    ints.dedup();
                    if ints.is_empty() {
                        PredNode::Const(false)
                    } else {
                        PredNode::IntIn { col, values: ints }
                    }
                }
                ColumnType::Str => {
                    let dict = str_dictionary(replica, col)?;
                    let mut codes: Vec<u32> = values
                        .iter()
                        .filter_map(|v| match v {
                            // A string absent from the replica's dictionary cannot
                            // match any stored row.
                            Value::Str(s) => dict.code_of(s),
                            _ => None,
                        })
                        .collect();
                    codes.sort_unstable();
                    codes.dedup();
                    if codes.is_empty() {
                        PredNode::Const(false)
                    } else {
                        PredNode::StrIn { col, codes }
                    }
                }
            }
        }
        Predicate::And(ps) => PredNode::And(
            ps.iter()
                .map(|p| compile_node(p, schema, replica))
                .collect::<Option<Vec<_>>>()?,
        ),
        Predicate::Or(ps) => PredNode::Or(
            ps.iter()
                .map(|p| compile_node(p, schema, replica))
                .collect::<Option<Vec<_>>>()?,
        ),
        Predicate::Not(p) => PredNode::Not(Box::new(compile_node(p, schema, replica)?)),
    })
}

/// The dictionary of a string column of the replica (`None` on a type mismatch,
/// which means the replica disagrees with the schema — fall back).
fn str_dictionary(replica: &ColumnarTable, col: ColumnId) -> Option<&Dictionary> {
    match replica.encoded_column(col) {
        EncodedColumn::Str { codes, .. } => Some(codes.dictionary()),
        EncodedColumn::Int { .. } => None,
    }
}

fn collect_columns(node: &PredNode, out: &mut Vec<ColumnId>) {
    match node {
        PredNode::Const(_) => {}
        PredNode::NonNull { col }
        | PredNode::IntCmp { col, .. }
        | PredNode::IntBetween { col, .. }
        | PredNode::IntIn { col, .. }
        | PredNode::StrIn { col, .. } => out.push(*col),
        PredNode::And(ps) | PredNode::Or(ps) => {
            for p in ps {
                collect_columns(p, out);
            }
        }
        PredNode::Not(p) => collect_columns(p, out),
    }
}

// ---------------------------------------------------------------------------
// Zone verdicts
// ---------------------------------------------------------------------------

fn node_verdict(node: &PredNode, zones: &[ZoneMap]) -> ZoneVerdict {
    match node {
        PredNode::Const(true) => ZoneVerdict::Always,
        PredNode::Const(false) => ZoneVerdict::Never,
        PredNode::NonNull { col } => match &zones[*col] {
            ZoneMap::Int { min, max, has_null } => {
                if min > max {
                    ZoneVerdict::Never // all-NULL group
                } else if !has_null {
                    ZoneVerdict::Always
                } else {
                    ZoneVerdict::Maybe
                }
            }
            ZoneMap::Str { codes, has_null } => {
                if codes.exact().is_some_and(<[u32]>::is_empty) {
                    ZoneVerdict::Never
                } else if !has_null {
                    ZoneVerdict::Always
                } else {
                    ZoneVerdict::Maybe
                }
            }
        },
        PredNode::IntCmp { col, op, value } => {
            let ZoneMap::Int { min, max, has_null } = &zones[*col] else {
                return ZoneVerdict::Maybe;
            };
            let (min, max, v) = (*min, *max, *value);
            if min > max {
                return ZoneVerdict::Never; // all-NULL group: no row matches a comparison
            }
            let (never, always) = match op {
                CompareOp::Eq => (v < min || v > max, min == max && min == v),
                CompareOp::Ne => (min == max && min == v, v < min || v > max),
                CompareOp::Lt => (min >= v, max < v),
                CompareOp::Le => (min > v, max <= v),
                CompareOp::Gt => (max <= v, min > v),
                CompareOp::Ge => (max < v, min >= v),
            };
            if never {
                ZoneVerdict::Never
            } else if always && !has_null {
                ZoneVerdict::Always
            } else {
                ZoneVerdict::Maybe
            }
        }
        PredNode::IntBetween { col, lo, hi } => {
            let ZoneMap::Int { min, max, has_null } = &zones[*col] else {
                return ZoneVerdict::Maybe;
            };
            if min > max || *max < *lo || *min > *hi {
                ZoneVerdict::Never
            } else if !has_null && *min >= *lo && *max <= *hi {
                ZoneVerdict::Always
            } else {
                ZoneVerdict::Maybe
            }
        }
        PredNode::IntIn { col, values } => {
            let ZoneMap::Int { min, max, has_null } = &zones[*col] else {
                return ZoneVerdict::Maybe;
            };
            if min > max {
                return ZoneVerdict::Never;
            }
            // First candidate value >= min; the group may match only if it is <= max.
            let at = values.partition_point(|v| v < min);
            let overlaps = values.get(at).is_some_and(|v| v <= max);
            if !overlaps {
                ZoneVerdict::Never
            } else if !has_null && min == max && values.binary_search(min).is_ok() {
                ZoneVerdict::Always
            } else {
                ZoneVerdict::Maybe
            }
        }
        PredNode::StrIn { col, codes } => {
            let ZoneMap::Str {
                codes: zone,
                has_null,
            } = &zones[*col]
            else {
                return ZoneVerdict::Maybe;
            };
            match zone {
                ZoneCodes::Exact(present) => {
                    let any = present.iter().any(|c| codes.binary_search(c).is_ok());
                    if !any {
                        ZoneVerdict::Never
                    } else if !has_null && present.iter().all(|c| codes.binary_search(c).is_ok()) {
                        ZoneVerdict::Always
                    } else {
                        ZoneVerdict::Maybe
                    }
                }
                // A Bloom summary can prove absence (no false negatives) but
                // never presence of every row's code.
                ZoneCodes::Bloom(_) => {
                    if codes.iter().all(|c| !zone.may_contain(*c)) {
                        ZoneVerdict::Never
                    } else {
                        ZoneVerdict::Maybe
                    }
                }
            }
        }
        PredNode::And(ps) => {
            let mut all_always = true;
            for p in ps {
                match node_verdict(p, zones) {
                    ZoneVerdict::Never => return ZoneVerdict::Never,
                    ZoneVerdict::Maybe => all_always = false,
                    ZoneVerdict::Always => {}
                }
            }
            if all_always {
                ZoneVerdict::Always
            } else {
                ZoneVerdict::Maybe
            }
        }
        PredNode::Or(ps) => {
            let mut all_never = true;
            for p in ps {
                match node_verdict(p, zones) {
                    ZoneVerdict::Always => return ZoneVerdict::Always,
                    ZoneVerdict::Maybe => all_never = false,
                    ZoneVerdict::Never => {}
                }
            }
            if all_never {
                ZoneVerdict::Never
            } else {
                ZoneVerdict::Maybe
            }
        }
        // `Not` is plain negation over all stored rows, so the verdicts flip
        // exactly: "no row matches p" means "every row matches Not(p)".
        PredNode::Not(p) => match node_verdict(p, zones) {
            ZoneVerdict::Never => ZoneVerdict::Always,
            ZoneVerdict::Always => ZoneVerdict::Never,
            ZoneVerdict::Maybe => ZoneVerdict::Maybe,
        },
    }
}

// ---------------------------------------------------------------------------
// Range evaluation over encoded data
// ---------------------------------------------------------------------------

/// Evaluates an integer leaf via `test` over whatever encoding the column uses.
/// RLE columns pay one `test` per run overlapping the range instead of one per
/// row — the §5 "predicates evaluated on compressed data" win.
fn eval_int_leaf(
    replica: &ColumnarTable,
    col: ColumnId,
    start: usize,
    out: &mut [bool],
    volume: &ScanVolume,
    test: impl Fn(i64) -> bool,
) {
    let len = out.len();
    let EncodedColumn::Int { data, nulls } = replica.encoded_column(col) else {
        out.fill(false);
        return;
    };
    match data {
        IntEncoding::Plain(values) => {
            let slice = &values[start..start + len];
            match nulls {
                None => {
                    for (o, &v) in out.iter_mut().zip(slice) {
                        *o = test(v);
                    }
                }
                Some(ns) => {
                    let ns = &ns[start..start + len];
                    for ((o, &v), &null) in out.iter_mut().zip(slice).zip(ns) {
                        *o = !null && test(v);
                    }
                }
            }
            volume.record_predicate(len as u64, len as u64);
        }
        IntEncoding::Rle(rle) => {
            let (s, e) = (start as u64, (start + len) as u64);
            let mut cursor = rle.runs();
            cursor.seek(s);
            let mut probes = 0u64;
            while let Some((value, run_start, run_end)) = cursor.next_run() {
                if run_start >= e {
                    break;
                }
                let matched = test(value);
                probes += 1;
                let from = (run_start.max(s) - s) as usize;
                let to = (run_end.min(e) - s) as usize;
                out[from..to].fill(matched);
                if run_end >= e {
                    break;
                }
            }
            volume.record_predicate(probes, len as u64);
        }
        IntEncoding::Packed(v) => {
            for (i, o) in out.iter_mut().enumerate() {
                *o = test(v.get(start + i).expect("row in range"));
            }
            volume.record_predicate(len as u64, len as u64);
        }
        IntEncoding::Delta(v) => {
            for (i, o) in out.iter_mut().enumerate() {
                *o = test(v.get(start + i).expect("row in range"));
            }
            volume.record_predicate(len as u64, len as u64);
        }
    }
}

fn eval_node(
    node: &PredNode,
    replica: &ColumnarTable,
    start: usize,
    out: &mut [bool],
    volume: &ScanVolume,
) {
    match node {
        PredNode::Const(b) => out.fill(*b),
        PredNode::NonNull { col } => {
            let nulls = match replica.encoded_column(*col) {
                EncodedColumn::Int { nulls, .. } => nulls,
                EncodedColumn::Str { nulls, .. } => nulls,
            };
            match nulls {
                None => out.fill(true),
                Some(ns) => {
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = !ns[start + i];
                    }
                }
            }
        }
        PredNode::IntCmp { col, op, value } => {
            let (op, value) = (*op, *value);
            eval_int_leaf(replica, *col, start, out, volume, move |v| {
                cmp_ord(op, v, value)
            });
        }
        PredNode::IntBetween { col, lo, hi } => {
            let (lo, hi) = (*lo, *hi);
            eval_int_leaf(replica, *col, start, out, volume, move |v| {
                v >= lo && v <= hi
            });
        }
        PredNode::IntIn { col, values } => {
            eval_int_leaf(replica, *col, start, out, volume, |v| {
                values.binary_search(&v).is_ok()
            });
        }
        PredNode::StrIn { col, codes } => {
            let len = out.len();
            let EncodedColumn::Str {
                codes: column,
                nulls,
            } = replica.encoded_column(*col)
            else {
                out.fill(false);
                return;
            };
            for (i, o) in out.iter_mut().enumerate() {
                let row = start + i;
                let null = nulls.is_some_and(|ns| ns[row]);
                *o = !null
                    && codes
                        .binary_search(&column.code(row).expect("row in range"))
                        .is_ok();
            }
            volume.record_predicate(len as u64, len as u64);
        }
        PredNode::And(ps) => {
            if ps.is_empty() {
                out.fill(true);
                return;
            }
            eval_node(&ps[0], replica, start, out, volume);
            if ps.len() > 1 {
                let mut scratch = vec![false; out.len()];
                for p in &ps[1..] {
                    eval_node(p, replica, start, &mut scratch, volume);
                    for (o, &s) in out.iter_mut().zip(&scratch) {
                        *o &= s;
                    }
                }
            }
        }
        PredNode::Or(ps) => {
            if ps.is_empty() {
                out.fill(false);
                return;
            }
            eval_node(&ps[0], replica, start, out, volume);
            if ps.len() > 1 {
                let mut scratch = vec![false; out.len()];
                for p in &ps[1..] {
                    eval_node(p, replica, start, &mut scratch, volume);
                    for (o, &s) in out.iter_mut().zip(&scratch) {
                        *o |= s;
                    }
                }
            }
        }
        PredNode::Not(p) => {
            eval_node(p, replica, start, out, volume);
            for o in out.iter_mut() {
                *o = !*o;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The pipeline-side columnar scan cursor
// ---------------------------------------------------------------------------

/// The columnar scan cursor the Preprocessor drives when
/// `CjoinConfig::columnar_scan` is on.
///
/// Mirrors [`cjoin_storage::ContinuousScan`]'s position/segment/wrap semantics
/// over the *live* source table length, so the §3.3 lifecycle (admission at
/// batch boundaries, wrap-around completion, segment partitioning) is
/// identical to the row-store path. Rows `< replica.len()` are served from the
/// encoded replica; rows appended after the replica was built (the hybrid
/// tail) are read from the row store with their live visibility metadata.
#[derive(Debug)]
pub struct ColumnarScanCursor {
    /// The encoded replica (prefix of the live table, frozen at build time).
    pub(crate) replica: Arc<ColumnarTable>,
    /// The live source table (authoritative length + hybrid tail rows).
    pub(crate) table: Arc<Table>,
    /// Scan-volume accounting shared with the engine's stats.
    pub(crate) volume: Arc<ScanVolume>,
    /// Next row position the scan will produce.
    pub(crate) position: u64,
    /// First row of this cursor's segment.
    pub(crate) segment_start: u64,
    /// One past the last row of the segment; `None` = runs to the live end.
    pub(crate) segment_end: Option<u64>,
    /// Completed passes over the segment.
    pub(crate) passes: u64,
    /// Average encoded bytes per row of each column (for volume accounting).
    pub(crate) col_bytes_per_row: Vec<u64>,
    /// Reusable per-chunk match bitmaps (one per query with a fact predicate).
    pub(crate) match_bufs: Vec<Vec<bool>>,
    /// Reusable per-chunk set of columns whose bytes were touched.
    pub(crate) touched_cols: Vec<bool>,
    /// Reusable buffer for hybrid-tail rows read from the row store.
    pub(crate) tail_buffer: Vec<(RowId, Row, RowVersion)>,
    /// Per-row-group checksum verdicts, lazily filled on first touch
    /// ([`GROUP_UNVERIFIED`] / [`GROUP_VERIFIED`] / [`GROUP_QUARANTINED`]).
    pub(crate) group_state: Vec<u8>,
}

/// The cursor has not yet touched this row group.
pub(crate) const GROUP_UNVERIFIED: u8 = 0;
/// The group's checksum verified; its encoded columns and zone maps are trusted.
pub(crate) const GROUP_VERIFIED: u8 = 1;
/// The group failed verification; its rows are served from the row store.
pub(crate) const GROUP_QUARANTINED: u8 = 2;

impl ColumnarScanCursor {
    /// Creates a whole-table cursor.
    pub fn new(replica: Arc<ColumnarTable>, table: Arc<Table>, volume: Arc<ScanVolume>) -> Self {
        let arity = replica.schema().arity();
        let rows = replica.len().max(1) as u64;
        let col_bytes_per_row = (0..arity)
            .map(|c| replica.column_encoded_bytes(c).div_ceil(rows).max(1))
            .collect();
        let group_state = vec![GROUP_UNVERIFIED; replica.row_groups().len()];
        Self {
            replica,
            table,
            volume,
            position: 0,
            segment_start: 0,
            segment_end: None,
            passes: 0,
            col_bytes_per_row,
            match_bufs: Vec::new(),
            touched_cols: vec![false; arity],
            tail_buffer: Vec::new(),
            group_state,
        }
    }

    /// Restricts the cursor to `[start, end)` (`end = None` runs to the live
    /// table end), the same contract as [`cjoin_storage::ContinuousScan::with_segment`].
    pub fn with_segment(mut self, start: u64, end: Option<u64>) -> Self {
        self.segment_start = start;
        self.segment_end = end;
        self.position = start;
        self
    }

    /// Current segment bounds clamped to the live table length.
    pub(crate) fn current_bounds(&self) -> (u64, u64) {
        let len = self.table.len() as u64;
        let end = self.segment_end.unwrap_or(len).min(len);
        (self.segment_start.min(end), end)
    }

    /// The position folded into the segment (matches
    /// [`cjoin_storage::ContinuousScan::normalized_position`]): a cursor past
    /// the end — or before the start — reports the segment start, because that
    /// is where the next batch will begin.
    pub fn normalized_position(&self) -> u64 {
        let (start, end) = self.current_bounds();
        if self.position >= end || self.position < start {
            start
        } else {
            self.position
        }
    }

    /// Completed passes over the segment.
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_storage::{Column, CompressionPolicy, SnapshotId};

    fn fact_table(rows: i64) -> Table {
        let schema = Schema::new(
            "lineorder",
            vec![
                Column::int("lo_orderkey"),
                Column::int("lo_orderdate"),
                Column::str("lo_shipmode"),
                Column::int("lo_revenue"),
            ],
        );
        let table = Table::with_rows_per_page(schema, 32);
        table.insert_batch_unchecked(
            (0..rows).map(|i| {
                Row::new(vec![
                    Value::int(i),
                    Value::int(19940101 + i / 50),
                    Value::str(if i % 3 == 0 { "AIR" } else { "TRUCK" }),
                    Value::int(i * 7 % 1000),
                ])
            }),
            SnapshotId::INITIAL,
        );
        table
    }

    fn replica(table: &Table) -> Arc<ColumnarTable> {
        Arc::new(ColumnarTable::from_table(table, CompressionPolicy::Adaptive).unwrap())
    }

    /// Oracle: the compiled predicate must agree with BoundPredicate row by row.
    fn assert_matches_bound(table: &Table, pred: &Predicate) {
        let replica = replica(table);
        let schema = table.schema();
        let bound = pred.bind(schema).expect("predicate binds");
        let compiled =
            EncodedFactPredicate::compile(pred, schema, &replica).expect("predicate compiles");
        let len = replica.len();
        let volume = ScanVolume::new();
        let mut out = vec![false; len];
        compiled.eval_range(&replica, 0, &mut out, &volume);
        for (i, &matched) in out.iter().enumerate() {
            let row = replica.row(i).unwrap();
            assert_eq!(
                matched,
                bound.eval(&row),
                "{pred:?} disagrees at row {i}: {row:?}"
            );
        }
    }

    #[test]
    fn compiled_predicates_agree_with_bound_evaluation() {
        let table = fact_table(400);
        let preds = vec![
            Predicate::True,
            Predicate::eq("lo_orderdate", 19940103),
            Predicate::eq("lo_shipmode", "AIR"),
            Predicate::eq("lo_shipmode", "RAIL"), // absent from the dictionary
            Predicate::between("lo_orderdate", 19940102, 19940104),
            Predicate::between("lo_revenue", 500, 600),
            Predicate::in_list("lo_orderkey", vec![3i64, 77, 399, 1000]),
            Predicate::in_list("lo_shipmode", vec!["TRUCK", "SHIP"]),
            Predicate::eq("lo_orderdate", 19940103).and(Predicate::eq("lo_shipmode", "AIR")),
            Predicate::Or(vec![
                Predicate::eq("lo_shipmode", "AIR"),
                Predicate::between("lo_revenue", 0, 10),
            ]),
            Predicate::Not(Box::new(Predicate::eq("lo_shipmode", "AIR"))),
            Predicate::Compare {
                column: "lo_shipmode".into(),
                op: CompareOp::Lt,
                value: Value::str("TRUCK"),
            },
            Predicate::Compare {
                column: "lo_shipmode".into(),
                op: CompareOp::Ne,
                value: Value::str("AIR"),
            },
            // Cross-type comparisons follow the derived Value ordering.
            Predicate::Compare {
                column: "lo_revenue".into(),
                op: CompareOp::Lt,
                value: Value::str("zzz"),
            },
            Predicate::Compare {
                column: "lo_shipmode".into(),
                op: CompareOp::Gt,
                value: Value::int(5),
            },
            Predicate::eq("lo_orderkey", Value::Null),
            Predicate::in_list("lo_orderkey", Vec::<i64>::new()),
        ];
        for pred in &preds {
            assert_matches_bound(&table, pred);
        }
    }

    #[test]
    fn compiled_predicates_agree_on_nullable_columns() {
        let schema = Schema::new("t", vec![Column::int("a"), Column::str("s")]);
        let table = Table::new(schema);
        for i in 0..40 {
            let (a, s) = if i % 5 == 0 {
                (Value::Null, Value::Null)
            } else {
                (
                    Value::int(i),
                    Value::str(if i % 2 == 0 { "x" } else { "y" }),
                )
            };
            table.insert(vec![a, s], SnapshotId::INITIAL).unwrap();
        }
        for pred in [
            Predicate::eq("a", 10),
            Predicate::Not(Box::new(Predicate::eq("a", 10))), // matches NULL rows
            Predicate::eq("s", "x"),
            Predicate::Not(Box::new(Predicate::eq("s", "x"))),
            Predicate::between("a", 5, 20),
            Predicate::in_list("s", vec!["y"]),
        ] {
            assert_matches_bound(&table, &pred);
        }
    }

    #[test]
    fn rle_columns_probe_once_per_run() {
        let table = fact_table(500); // lo_orderdate has runs of 50
        let replica = replica(&table);
        let pred = Predicate::eq("lo_orderdate", 19940105);
        let compiled = EncodedFactPredicate::compile(&pred, table.schema(), &replica).unwrap();
        let volume = ScanVolume::new();
        let mut out = vec![false; 500];
        compiled.eval_range(&replica, 0, &mut out, &volume);
        assert_eq!(volume.predicate_rows(), 500);
        assert_eq!(
            volume.predicate_probes(),
            10,
            "10 runs of 50 should cost 10 probes"
        );
        assert_eq!(out.iter().filter(|&&m| m).count(), 50);
    }

    #[test]
    fn zone_verdicts_are_sound_and_useful() {
        let table = fact_table(4096);
        let replica = replica(&table);
        let schema = table.schema();
        let groups = replica.row_groups();
        assert!(groups.len() >= 4);

        // Orderkey is sequential: only one group can contain key 100.
        let pred = Predicate::eq("lo_orderkey", 100);
        let compiled = EncodedFactPredicate::compile(&pred, schema, &replica).unwrap();
        let verdicts: Vec<ZoneVerdict> = groups
            .iter()
            .map(|g| compiled.zone_verdict(&g.zones))
            .collect();
        assert_eq!(verdicts[0], ZoneVerdict::Maybe);
        assert!(verdicts[1..].iter().all(|v| *v == ZoneVerdict::Never));

        // A predicate matching everything is Always everywhere.
        let all = Predicate::Compare {
            column: "lo_orderkey".into(),
            op: CompareOp::Ge,
            value: Value::int(0),
        };
        let compiled = EncodedFactPredicate::compile(&all, schema, &replica).unwrap();
        for g in groups {
            assert_eq!(compiled.zone_verdict(&g.zones), ZoneVerdict::Always);
        }

        // Verdict soundness oracle: Never groups contain no matching row,
        // Always groups contain only matching rows.
        let volume = ScanVolume::new();
        for pred in [
            Predicate::between("lo_orderdate", 19940110, 19940120),
            Predicate::eq("lo_shipmode", "AIR"),
            Predicate::Not(Box::new(Predicate::between("lo_orderkey", 0, 2047))),
        ] {
            let compiled = EncodedFactPredicate::compile(&pred, schema, &replica).unwrap();
            for g in groups {
                let verdict = compiled.zone_verdict(&g.zones);
                let mut out = vec![false; g.len as usize];
                compiled.eval_range(&replica, g.start as usize, &mut out, &volume);
                match verdict {
                    ZoneVerdict::Never => assert!(
                        out.iter().all(|m| !m),
                        "{pred:?}: Never group {} has a match",
                        g.start
                    ),
                    ZoneVerdict::Always => assert!(
                        out.iter().all(|m| *m),
                        "{pred:?}: Always group {} has a non-match",
                        g.start
                    ),
                    ZoneVerdict::Maybe => {}
                }
            }
        }
    }

    #[test]
    fn cursor_mirrors_row_scan_segment_semantics() {
        let table = Arc::new(fact_table(100));
        let rep = replica(&table);
        let volume = Arc::new(ScanVolume::new());
        let cursor = ColumnarScanCursor::new(Arc::clone(&rep), Arc::clone(&table), volume)
            .with_segment(32, Some(64));
        assert_eq!(cursor.normalized_position(), 32);
        assert_eq!(cursor.current_bounds(), (32, 64));
        let mut past = cursor;
        past.position = 64;
        assert_eq!(past.normalized_position(), 32);
        assert_eq!(past.passes(), 0);
    }
}
