//! Operator statistics.
//!
//! The experiments of §6 need visibility into what the pipeline is doing: tuples
//! scanned, tuples reaching the Distributor, per-Filter probe/drop counts, scan
//! passes, and query lifecycle counts. Counters are updated with relaxed atomics on
//! the hot path and snapshotted on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared atomic counters updated by the pipeline threads.
#[derive(Debug, Default)]
pub struct SharedCounters {
    /// Fact tuples read from the continuous scan.
    pub tuples_scanned: AtomicU64,
    /// Data batches sent into the filter stage(s).
    pub batches_sent: AtomicU64,
    /// Tuples that reached the Distributor with a non-zero bit-vector.
    pub tuples_distributed: AtomicU64,
    /// (tuple, query) routing events performed by the Distributor.
    pub routings: AtomicU64,
    /// Completed passes over the fact table.
    pub scan_passes: AtomicU64,
    /// Queries admitted (Algorithm 1 completed).
    pub queries_admitted: AtomicU64,
    /// Queries finalized (results delivered).
    pub queries_completed: AtomicU64,
    /// Filter-order changes applied by the run-time optimizer.
    pub filter_reorders: AtomicU64,
    /// Pipeline stalls taken to emit control tuples (drain barriers).
    pub control_barriers: AtomicU64,
    /// Cumulative nanoseconds the scan front-end spent waiting in drain barriers
    /// (spin-then-park backoff included). Submission-latency predictability
    /// analyses (fig6-style) use this to attribute stalls to control-tuple
    /// ordering rather than filter work.
    pub barrier_wait_ns: AtomicU64,
    /// In-flight tuples freshly heap-allocated by the Preprocessor (cold path;
    /// should stop growing once the batch pool is warm).
    pub tuples_allocated: AtomicU64,
    /// In-flight tuples reinitialised in place from a batch's spare pool
    /// (the zero-allocation steady-state path).
    pub tuples_recycled: AtomicU64,
    /// Supervised pipeline roles that died (panicked) and were handled.
    pub role_failures: AtomicU64,
    /// Pipeline respawns performed by the supervisor after a role failure.
    pub pipeline_restarts: AtomicU64,
    /// *Busy* nanoseconds of the most recently completed scan pass (written
    /// with `store`, not `add`): the measured pass time admission uses to
    /// pre-shed queries whose deadline cannot survive one more pass. Busy-only
    /// — the reporting scan worker excludes its idle sleeps, so an engine that
    /// sat idle mid-pass does not inflate the next deadline quote.
    pub last_pass_ns: AtomicU64,
    /// Rows the most recently completed scan pass covered (the reporting
    /// worker's segment; the whole table on the classic path). Together with
    /// a live in-pass rate this turns `last_pass_ns` into a rate-based cycle
    /// estimate instead of a stale wall-clock sample.
    pub cycle_rows: AtomicU64,
    /// Rows the reporting scan worker has covered in the *current* pass so far
    /// (reset to zero at each wrap; written with `store`).
    pub pass_rows: AtomicU64,
    /// Busy nanoseconds the reporting scan worker has accumulated in the
    /// current pass so far (reset at each wrap; written with `store`).
    pub pass_busy_ns: AtomicU64,
    /// Exponentially weighted moving average (α = 1/8) of submit→install
    /// latency in nanoseconds, updated after every successful admission. The
    /// deadline quote adds this to the cycle estimate so install backlog no
    /// longer causes under-shedding.
    pub install_ns_ewma: AtomicU64,
}

impl SharedCounters {
    /// Creates zeroed counters.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Atomic counters owned by one Distributor shard.
///
/// Shard workers update *both* their own [`ShardCounters`] and the global
/// [`SharedCounters`] totals, so for any quiesced pipeline the per-shard values
/// sum exactly to the global `tuples_distributed` / `routings` counters — the
/// invariant `tests/distributor_sharding.rs` pins down.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Surviving tuples this shard accumulated.
    pub tuples_distributed: AtomicU64,
    /// (tuple, query) routing events this shard performed.
    pub routings: AtomicU64,
    /// Data batches this shard drained from its queue.
    pub batches_drained: AtomicU64,
    /// Per-query partial aggregations this shard emitted at query end.
    pub partials_emitted: AtomicU64,
}

impl ShardCounters {
    /// Creates one zeroed counter set per shard.
    pub fn new_vec(shards: usize) -> Vec<Arc<Self>> {
        (0..shards).map(|_| Arc::new(Self::default())).collect()
    }

    /// A point-in-time snapshot of this shard's counters.
    pub fn snapshot(&self, shard: usize) -> DistributorShardStats {
        DistributorShardStats {
            shard,
            tuples_distributed: self.tuples_distributed.load(Ordering::Relaxed),
            routings: self.routings.load(Ordering::Relaxed),
            batches_drained: self.batches_drained.load(Ordering::Relaxed),
            partials_emitted: self.partials_emitted.load(Ordering::Relaxed),
        }
    }
}

/// Atomic counters owned by one continuous-scan (Preprocessor) worker.
///
/// Scan workers update *both* their own `ScanWorkerCounters` and the global
/// [`SharedCounters`] totals, so for any quiesced pipeline the per-worker values
/// sum exactly to the global `tuples_scanned` / `batches_sent` / `scan_passes`
/// counters — the front-end mirror of the [`ShardCounters`] invariant, pinned
/// down by `tests/scan_parallelism.rs`. The classic single-threaded Preprocessor
/// owns the single entry of a one-element vector, so the stats shape is uniform
/// across `scan_workers` settings.
#[derive(Debug, Default)]
pub struct ScanWorkerCounters {
    /// Fact tuples this worker read from its segment cursor.
    pub tuples_scanned: AtomicU64,
    /// Data batches this worker pushed into the filter stage(s).
    pub batches_sent: AtomicU64,
    /// Completed passes over this worker's segment (whole-table passes for the
    /// classic single worker).
    pub segment_passes: AtomicU64,
}

impl ScanWorkerCounters {
    /// Creates one zeroed counter set per scan worker.
    pub fn new_vec(workers: usize) -> Vec<Arc<Self>> {
        (0..workers).map(|_| Arc::new(Self::default())).collect()
    }

    /// A point-in-time snapshot of this worker's counters.
    pub fn snapshot(&self, worker: usize) -> ScanWorkerStats {
        ScanWorkerStats {
            worker,
            tuples_scanned: self.tuples_scanned.load(Ordering::Relaxed),
            batches_sent: self.batches_sent.load(Ordering::Relaxed),
            segment_passes: self.segment_passes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics of one continuous-scan worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanWorkerStats {
    /// Worker index in `[0, scan_workers)`.
    pub worker: usize,
    /// Fact tuples this worker read from its segment cursor.
    pub tuples_scanned: u64,
    /// Data batches this worker pushed into the filter stage(s).
    pub batches_sent: u64,
    /// Completed passes over this worker's segment.
    pub segment_passes: u64,
}

/// Point-in-time statistics of one Distributor shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributorShardStats {
    /// Shard index in `[0, distributor_shards)`.
    pub shard: usize,
    /// Surviving tuples this shard accumulated.
    pub tuples_distributed: u64,
    /// (tuple, query) routing events this shard performed.
    pub routings: u64,
    /// Data batches this shard drained from its queue.
    pub batches_drained: u64,
    /// Per-query partial aggregations this shard emitted at query end.
    pub partials_emitted: u64,
}

/// Point-in-time statistics of one Filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterStatsSnapshot {
    /// Dimension table the Filter covers.
    pub dimension: String,
    /// Dimension tuples currently stored in its hash table.
    pub entries: usize,
    /// Tuples that entered the Filter.
    pub tuples_in: u64,
    /// Tuples dropped by the Filter.
    pub tuples_dropped: u64,
    /// Hash probes performed.
    pub probes: u64,
    /// Probes avoided by the early-skip optimisation.
    pub skips: u64,
}

impl FilterStatsSnapshot {
    /// Observed drop rate.
    pub fn drop_rate(&self) -> f64 {
        if self.tuples_in == 0 {
            0.0
        } else {
            self.tuples_dropped as f64 / self.tuples_in as f64
        }
    }
}

/// Point-in-time statistics of the compressed columnar scan front-end
/// (`CjoinConfig::columnar_scan`): the byte-level scan volume and zone-map /
/// per-run evidence the `io` and `bench-json` experiments report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarScanStats {
    /// Bytes of encoded column data the scan actually touched (predicate
    /// columns billed per chunk, late-materialized columns per surviving row).
    pub bytes_scanned: u64,
    /// Rows the columnar scan produced.
    pub rows_scanned: u64,
    /// Row groups skipped outright because no active query's predicate could
    /// match their zone maps.
    pub row_groups_skipped: u64,
    /// Rows whose bytes were never touched thanks to zone-map skipping.
    pub rows_predicate_skipped: u64,
    /// Row groups quarantined by a failed checksum verification; their rows are
    /// served from the row store instead (graceful degradation, not data loss).
    pub groups_quarantined: u64,
    /// Predicate evaluations actually performed (one per run on RLE data).
    pub predicate_probes: u64,
    /// Rows those predicate evaluations covered; `predicate_rows /
    /// predicate_probes` is the average rows answered per probe (≫ 1 on
    /// RLE-encoded columns).
    pub predicate_rows: u64,
    /// Bytes touched per fact column (indexed by `ColumnId`).
    pub column_bytes: Vec<u64>,
}

impl ColumnarScanStats {
    /// Average rows answered per predicate probe (1.0 for plain encodings,
    /// ≫ 1 when run-length encoding lets one probe cover a whole run).
    pub fn rows_per_probe(&self) -> f64 {
        if self.predicate_probes == 0 {
            0.0
        } else {
            self.predicate_rows as f64 / self.predicate_probes as f64
        }
    }

    /// Average bytes of column data touched per produced row.
    pub fn bytes_per_row(&self) -> f64 {
        if self.rows_scanned == 0 {
            0.0
        } else {
            self.bytes_scanned as f64 / self.rows_scanned as f64
        }
    }
}

/// Atomic counters of the durable ingestion path (WAL + `IngestSession`).
#[derive(Debug, Default)]
pub struct IngestCounters {
    /// Mutation records appended to the WAL (commit markers not counted).
    pub records_appended: AtomicU64,
    /// Ingestion batches whose commit marker became durable.
    pub commits: AtomicU64,
    /// Cumulative nanoseconds spent waiting on WAL fsync (written with `store`
    /// from the log's own clock).
    pub sync_ns: AtomicU64,
    /// Logs truncated during crash recovery because a torn or corrupt record
    /// was found (0 or 1 per engine start; summed across restarts).
    pub recovery_truncations: AtomicU64,
    /// Columnar replica rebuilds triggered by row-store tail growth.
    pub tail_compactions: AtomicU64,
}

impl IngestCounters {
    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> IngestStats {
        IngestStats {
            records_appended: self.records_appended.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            sync_ns: self.sync_ns.load(Ordering::Relaxed),
            recovery_truncations: self.recovery_truncations.load(Ordering::Relaxed),
            tail_compactions: self.tail_compactions.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics of the durable ingestion path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Mutation records appended to the WAL (commit markers not counted).
    pub records_appended: u64,
    /// Ingestion batches whose commit marker became durable.
    pub commits: u64,
    /// Cumulative nanoseconds spent waiting on WAL fsync.
    pub sync_ns: u64,
    /// Logs truncated during crash recovery (torn tail / corrupt record).
    pub recovery_truncations: u64,
    /// Columnar replica rebuilds triggered by row-store tail growth.
    pub tail_compactions: u64,
}

/// Point-in-time statistics of the whole pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Fact tuples read from the continuous scan.
    pub tuples_scanned: u64,
    /// Data batches sent into the filter stage(s).
    pub batches_sent: u64,
    /// Tuples that reached the Distributor.
    pub tuples_distributed: u64,
    /// (tuple, query) routing events.
    pub routings: u64,
    /// Completed passes over the fact table.
    pub scan_passes: u64,
    /// Queries admitted so far.
    pub queries_admitted: u64,
    /// Queries completed so far.
    pub queries_completed: u64,
    /// Queries currently registered.
    pub active_queries: usize,
    /// Filter-order changes applied.
    pub filter_reorders: u64,
    /// Drain barriers taken for control tuples.
    pub control_barriers: u64,
    /// Cumulative nanoseconds the scan front-end waited in drain barriers.
    pub barrier_wait_ns: u64,
    /// Current filter order with per-filter statistics.
    pub filters: Vec<FilterStatsSnapshot>,
    /// Per-worker continuous-scan statistics (one entry per configured scan
    /// worker; a single entry when `scan_workers = 1`). The per-worker
    /// `tuples_scanned` / `batches_sent` / `segment_passes` values sum to the
    /// pipeline-wide totals above.
    pub scan_workers: Vec<ScanWorkerStats>,
    /// Per-shard Distributor statistics (one entry per configured shard; a single
    /// entry when `distributor_shards = 1`). The per-shard `tuples_distributed` /
    /// `routings` values sum to the pipeline-wide totals above.
    pub distributor_shards: Vec<DistributorShardStats>,
    /// Data batches currently in flight between the Preprocessor and the
    /// aggregation shards (zero whenever the pipeline is quiesced).
    pub batches_in_flight: i64,
    /// Batch-pool hits (recycled batches).
    pub pool_hits: u64,
    /// Batch-pool misses (fresh allocations).
    pub pool_misses: u64,
    /// In-flight tuples freshly heap-allocated by the Preprocessor.
    pub tuples_allocated: u64,
    /// In-flight tuples reinitialised in place from recycled spares.
    pub tuples_recycled: u64,
    /// Supervised pipeline roles that died (panicked) and were handled by the
    /// supervisor over the engine's lifetime.
    pub role_failures: u64,
    /// Pipeline respawns the supervisor performed after role failures (each
    /// possibly degrading one configuration axis; see the engine docs).
    pub pipeline_restarts: u64,
    /// Compressed columnar scan statistics (`None` unless the engine runs with
    /// `CjoinConfig::columnar_scan` enabled).
    pub columnar: Option<ColumnarScanStats>,
    /// Elastic stage-scheduler snapshot: current per-axis widths, governed
    /// axes, resize events and the tuning policy's last bottleneck verdict.
    pub scheduler: crate::scheduler::SchedulerStats,
    /// Durable ingestion statistics (all zero unless the engine runs with a
    /// WAL configured via `CjoinConfig::wal_path`).
    pub ingest: IngestStats,
}

impl PipelineStats {
    /// Fraction of scanned tuples that survived all Filters.
    pub fn survival_rate(&self) -> f64 {
        if self.tuples_scanned == 0 {
            0.0
        } else {
            self.tuples_distributed as f64 / self.tuples_scanned as f64
        }
    }

    /// Fraction of batch-pool takes served without allocating (≈ 1 after warm-up).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Fraction of in-flight tuples served by in-place recycling rather than a
    /// fresh heap allocation (≈ 1 after warm-up; the "zero per-tuple allocation"
    /// steady-state claim in numbers).
    pub fn tuple_recycle_rate(&self) -> f64 {
        let total = self.tuples_allocated + self.tuples_recycled;
        if total == 0 {
            0.0
        } else {
            self.tuples_recycled as f64 / total as f64
        }
    }

    /// Sum of the per-shard `tuples_distributed` counters; equals
    /// [`PipelineStats::tuples_distributed`] on a quiesced pipeline.
    pub fn shard_tuples_distributed(&self) -> u64 {
        self.distributor_shards
            .iter()
            .map(|s| s.tuples_distributed)
            .sum()
    }

    /// Sum of the per-shard `routings` counters; equals
    /// [`PipelineStats::routings`] on a quiesced pipeline.
    pub fn shard_routings(&self) -> u64 {
        self.distributor_shards.iter().map(|s| s.routings).sum()
    }

    /// Sum of the per-scan-worker `tuples_scanned` counters; equals
    /// [`PipelineStats::tuples_scanned`] on a quiesced pipeline.
    pub fn scan_worker_tuples_scanned(&self) -> u64 {
        self.scan_workers.iter().map(|w| w.tuples_scanned).sum()
    }

    /// Sum of the per-scan-worker `batches_sent` counters; equals
    /// [`PipelineStats::batches_sent`] on a quiesced pipeline.
    pub fn scan_worker_batches_sent(&self) -> u64 {
        self.scan_workers.iter().map(|w| w.batches_sent).sum()
    }

    /// Sum of the per-scan-worker `segment_passes` counters; equals
    /// [`PipelineStats::scan_passes`] on a quiesced pipeline (with `N` scan
    /// workers the global counter counts *segment* passes, `N` per logical pass
    /// over the whole table).
    pub fn scan_worker_segment_passes(&self) -> u64 {
        self.scan_workers.iter().map(|w| w.segment_passes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_counters_accumulate() {
        let c = SharedCounters::new();
        SharedCounters::add(&c.tuples_scanned, 10);
        SharedCounters::add(&c.tuples_scanned, 5);
        assert_eq!(c.tuples_scanned.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn filter_snapshot_drop_rate() {
        let s = FilterStatsSnapshot {
            dimension: "date".into(),
            entries: 10,
            tuples_in: 200,
            tuples_dropped: 50,
            probes: 180,
            skips: 20,
        };
        assert!((s.drop_rate() - 0.25).abs() < 1e-12);
        let empty = FilterStatsSnapshot {
            dimension: "date".into(),
            entries: 0,
            tuples_in: 0,
            tuples_dropped: 0,
            probes: 0,
            skips: 0,
        };
        assert_eq!(empty.drop_rate(), 0.0);
    }

    #[test]
    fn pipeline_stats_survival_rate() {
        let stats = PipelineStats {
            tuples_scanned: 1000,
            batches_sent: 10,
            tuples_distributed: 250,
            routings: 400,
            scan_passes: 2,
            queries_admitted: 3,
            queries_completed: 1,
            active_queries: 2,
            filter_reorders: 1,
            control_barriers: 4,
            barrier_wait_ns: 1_000,
            filters: vec![],
            scan_workers: vec![
                ScanWorkerStats {
                    worker: 0,
                    tuples_scanned: 600,
                    batches_sent: 6,
                    segment_passes: 1,
                },
                ScanWorkerStats {
                    worker: 1,
                    tuples_scanned: 400,
                    batches_sent: 4,
                    segment_passes: 1,
                },
            ],
            distributor_shards: vec![
                DistributorShardStats {
                    shard: 0,
                    tuples_distributed: 100,
                    routings: 150,
                    batches_drained: 4,
                    partials_emitted: 1,
                },
                DistributorShardStats {
                    shard: 1,
                    tuples_distributed: 150,
                    routings: 250,
                    batches_drained: 6,
                    partials_emitted: 1,
                },
            ],
            batches_in_flight: 0,
            pool_hits: 5,
            pool_misses: 5,
            tuples_allocated: 100,
            tuples_recycled: 900,
            role_failures: 0,
            pipeline_restarts: 0,
            columnar: None,
            scheduler: crate::scheduler::SchedulerStats::default(),
            ingest: IngestStats::default(),
        };
        assert!((stats.survival_rate() - 0.25).abs() < 1e-12);
        assert!((stats.pool_hit_rate() - 0.5).abs() < 1e-12);
        assert!((stats.tuple_recycle_rate() - 0.9).abs() < 1e-12);
        assert_eq!(
            stats.shard_tuples_distributed(),
            stats.tuples_distributed,
            "per-shard counters sum to the pipeline total"
        );
        assert_eq!(stats.shard_routings(), stats.routings);
        assert_eq!(
            stats.scan_worker_tuples_scanned(),
            stats.tuples_scanned,
            "per-worker scan counters sum to the pipeline total"
        );
        assert_eq!(stats.scan_worker_batches_sent(), stats.batches_sent);
        assert_eq!(stats.scan_worker_segment_passes(), stats.scan_passes);
        let zero = PipelineStats {
            tuples_scanned: 0,
            pool_hits: 0,
            pool_misses: 0,
            tuples_allocated: 0,
            tuples_recycled: 0,
            ..stats
        };
        assert_eq!(zero.survival_rate(), 0.0);
        assert_eq!(zero.pool_hit_rate(), 0.0);
        assert_eq!(zero.tuple_recycle_rate(), 0.0);
    }
}
