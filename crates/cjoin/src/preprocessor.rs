//! The Preprocessor (§3.2.2, §3.3).
//!
//! The Preprocessor owns the continuous scan. For every fact tuple it:
//!
//! 1. initialises the query bit-vector `bτ` from the registered queries' fact-table
//!    predicates and snapshot visibility (§3.5 treats snapshot membership as a
//!    virtual fact predicate);
//! 2. detects query completion: when the scan wraps around a query's starting tuple,
//!    the query's bit is switched off and an *end-of-query* control tuple is emitted
//!    ahead of that tuple (§3.3.2);
//! 3. applies pending admissions: a newly registered query is installed at a batch
//!    boundary — its starting position is recorded, its bit joins the active mask,
//!    and a *query-start* control tuple is emitted (§3.3.1, Algorithm 1 lines 17–22);
//! 4. batches surviving tuples and pushes them into the filter stage.
//!
//! The scan loop is allocation-free at steady state: the per-row bit-vector is
//! computed in a Preprocessor-owned scratch `QuerySet` (as is the list of queries
//! ending at a row), and surviving rows are written into recycled in-flight tuples
//! obtained from the [`BatchPool`] via [`Batch::next_slot`] +
//! [`InFlightTuple::reset`](crate::tuple::InFlightTuple::reset), reusing their
//! bit-vector words and dimension-slot vectors in place (§4's specialized
//! allocator). The `tuples_allocated` / `tuples_recycled` counters expose this.
//!
//! ## Control-tuple ordering
//!
//! §3.3.3 requires that a control tuple enqueued before (after) a fact tuple is never
//! processed by the Distributor after (before) that tuple. Data tuples travel through
//! the worker stages while control tuples take a direct path to the Distributor's
//! queue, so ordering is enforced with a *drain barrier*: before emitting a control
//! tuple the Preprocessor stops sending data and waits until every batch it has
//! already sent has been fully processed by the Distributor (an atomic in-flight
//! counter reaches zero). Only then is the control tuple enqueued. Admissions and
//! completions are rare relative to tuple flow, so the stall is negligible — it is
//! the same "stall the pipeline" step the paper describes.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender, TryRecvError};

use cjoin_common::{QueryId, QuerySet};
use cjoin_query::BoundPredicate;
use cjoin_storage::{ContinuousScan, PartitionScheme, RowVersion, ScanBatch, SnapshotId};

use crate::config::CjoinConfig;
use crate::pool::BatchPool;
use crate::progress::QueryProgress;
use crate::stats::SharedCounters;
use crate::tuple::{Batch, ControlTuple, Message, QueryRuntime};

/// Partition-pruning plan attached to a query at admission (§5, Fact Table
/// Partitioning): the set of partitions the query needs and how many fact rows of
/// those partitions remain to be seen.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// `needed[p]` is true iff partition `p` overlaps the query's fact-predicate range.
    pub needed: Vec<bool>,
    /// Rows of needed partitions not yet seen since the query was installed.
    pub remaining_rows: u64,
}

/// A command sent from the engine (acting as the Pipeline Manager) to the
/// Preprocessor thread.
#[derive(Debug)]
pub enum PreprocessorCommand {
    /// Install a freshly admitted query (Algorithm 1, lines 17–22).
    Install {
        /// Everything the Distributor needs to run the query.
        runtime: Arc<QueryRuntime>,
        /// The query's fact-table predicate, if it has a non-trivial one.
        fact_predicate: Option<BoundPredicate>,
        /// Snapshot the query reads.
        snapshot: SnapshotId,
        /// Partition-pruning plan, if partition pruning applies to this query.
        partition: Option<PartitionPlan>,
        /// Acknowledged once the query-start control tuple has been enqueued; the
        /// elapsed time up to this point is the paper's "submission time" metric.
        ack: Sender<()>,
    },
    /// Shut the pipeline down: forward shutdown messages and exit.
    Shutdown,
}

/// Per-query state kept by the Preprocessor while the query is active.
#[derive(Debug)]
struct ActiveQuery {
    progress: Arc<QueryProgress>,
    fact_predicate: Option<BoundPredicate>,
    snapshot: SnapshotId,
    /// Row position at which the query entered the operator; the query completes when
    /// the scan next reaches this position.
    start_position: u64,
    /// False until the scan has produced the starting tuple once (the moment of
    /// registration), true afterwards; the second encounter is the wrap-around.
    passed_start: bool,
    partition: Option<PartitionPlan>,
}

/// The Preprocessor: owns the continuous scan and the active-query bookkeeping.
pub struct Preprocessor {
    scan: ContinuousScan,
    commands: Receiver<PreprocessorCommand>,
    stage_tx: Sender<Message>,
    distributor_tx: Sender<Message>,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    slot_count: Arc<AtomicUsize>,
    counters: Arc<SharedCounters>,
    config: CjoinConfig,
    partition_scheme: Option<(PartitionScheme, usize)>,

    active_mask: QuerySet,
    queries: Vec<Option<ActiveQuery>>,
    /// Bits of queries with a fact predicate, a non-default snapshot or a partition
    /// plan — the slow path of bit initialisation.
    special_bits: Vec<usize>,
    scan_buffer: ScanBatch,
    /// Scratch bit-vector the per-row `bτ` is computed in before being copied into a
    /// (usually recycled) in-flight tuple — reused across rows, never reallocated.
    bits_scratch: QuerySet,
    /// Scratch list of queries ending at the current row — reused across rows.
    ending_scratch: Vec<usize>,
    shutdown: bool,
}

impl Preprocessor {
    /// Creates a Preprocessor.
    ///
    /// `partition_scheme` carries the fact table's partitioning metadata together
    /// with the fact column it partitions on, when partition pruning is enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scan: ContinuousScan,
        commands: Receiver<PreprocessorCommand>,
        stage_tx: Sender<Message>,
        distributor_tx: Sender<Message>,
        in_flight: Arc<AtomicI64>,
        pool: Arc<BatchPool>,
        slot_count: Arc<AtomicUsize>,
        counters: Arc<SharedCounters>,
        config: CjoinConfig,
        partition_scheme: Option<(PartitionScheme, usize)>,
    ) -> Self {
        let max = config.max_concurrency;
        Self {
            scan,
            commands,
            stage_tx,
            distributor_tx,
            in_flight,
            pool,
            slot_count,
            counters,
            config,
            partition_scheme,
            active_mask: QuerySet::new(max),
            queries: (0..max).map(|_| None).collect(),
            special_bits: Vec::new(),
            scan_buffer: ScanBatch::default(),
            bits_scratch: QuerySet::new(max),
            ending_scratch: Vec::new(),
            shutdown: false,
        }
    }

    /// Number of currently active queries (test/diagnostic helper).
    pub fn active_queries(&self) -> usize {
        self.active_mask.count()
    }

    /// Runs the Preprocessor loop until shutdown.
    ///
    /// On shutdown the Preprocessor simply stops producing; the engine is responsible
    /// for shutting down the downstream stages and the Distributor afterwards.
    pub fn run(&mut self) {
        loop {
            self.apply_commands();
            if self.shutdown {
                return;
            }
            if self.active_mask.is_empty() {
                // The operator is "always on" but idles cheaply when no query is
                // registered instead of burning a scan.
                std::thread::sleep(Duration::from_micros(self.config.idle_sleep_us));
                continue;
            }
            self.process_next_scan_batch();
        }
    }

    // ------------------------------------------------------------------
    // Command handling (admission / shutdown)
    // ------------------------------------------------------------------

    fn apply_commands(&mut self) {
        loop {
            match self.commands.try_recv() {
                Ok(PreprocessorCommand::Install {
                    runtime,
                    fact_predicate,
                    snapshot,
                    partition,
                    ack,
                }) => {
                    self.install_query(runtime, fact_predicate, snapshot, partition);
                    let _ = ack.send(());
                }
                Ok(PreprocessorCommand::Shutdown) => {
                    self.shutdown = true;
                    return;
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    self.shutdown = true;
                    return;
                }
            }
        }
    }

    fn install_query(
        &mut self,
        runtime: Arc<QueryRuntime>,
        fact_predicate: Option<BoundPredicate>,
        snapshot: SnapshotId,
        partition: Option<PartitionPlan>,
    ) {
        let bit = runtime.id.index();
        let table_len = self.scan.table().len() as u64;
        let start_position = if table_len == 0 {
            0
        } else {
            self.scan.position() % table_len
        };
        // The query-start control tuple must precede any tuple carrying the query's
        // bit. Data tuples with the bit are only produced after this method returns,
        // and they reach the Distributor's queue strictly later than this control
        // tuple, so no drain barrier is needed here.
        let _ = self
            .distributor_tx
            .send(Message::Control(ControlTuple::QueryStart(Arc::clone(
                &runtime,
            ))));

        let special =
            fact_predicate.is_some() || snapshot != SnapshotId::INITIAL || partition.is_some();
        self.queries[bit] = Some(ActiveQuery {
            progress: Arc::clone(&runtime.progress),
            fact_predicate,
            snapshot,
            start_position,
            passed_start: false,
            partition,
        });
        self.active_mask.set(bit);
        if special {
            self.special_bits.push(bit);
        }
        SharedCounters::add(&self.counters.queries_admitted, 1);
    }

    fn finalize_query(&mut self, bit: usize) {
        let Some(query) = &self.queries[bit] else {
            return;
        };
        query.progress.mark_completed();
        self.active_mask.unset(bit);
        self.special_bits.retain(|&b| b != bit);
        self.queries[bit] = None;
        // Everything sent so far may still carry the query's bit: drain before the
        // end-of-query control tuple so its aggregation operator neither misses
        // tuples nor sees them twice.
        self.drain_barrier();
        let _ = self
            .distributor_tx
            .send(Message::Control(ControlTuple::QueryEnd(QueryId(
                bit as u32,
            ))));
    }

    fn drain_barrier(&self) {
        SharedCounters::add(&self.counters.control_barriers, 1);
        while self.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
    }

    // ------------------------------------------------------------------
    // Scan processing
    // ------------------------------------------------------------------

    fn process_next_scan_batch(&mut self) {
        let mut scan_buffer = std::mem::take(&mut self.scan_buffer);
        self.scan.next_batch(&mut scan_buffer);
        if scan_buffer.wrapped {
            SharedCounters::add(&self.counters.scan_passes, 1);
        }
        if scan_buffer.is_empty() {
            // Empty fact table: nothing will ever complete the registered queries by
            // wrap-around, so finalize them all immediately (their results are empty).
            let bits: Vec<usize> = self.active_mask.iter().collect();
            for bit in bits {
                self.finalize_query(bit);
            }
            self.scan_buffer = scan_buffer;
            std::thread::sleep(Duration::from_micros(self.config.idle_sleep_us));
            return;
        }
        SharedCounters::add(&self.counters.tuples_scanned, scan_buffer.len() as u64);
        // Every active query sees every scanned row exactly once per pass; the batch
        // length is therefore each query's progress increment (§3.2.3).
        for bit in self.active_mask.iter() {
            if let Some(q) = &self.queries[bit] {
                q.progress.advance(scan_buffer.len() as u64);
            }
        }

        let num_slots = self.slot_count.load(Ordering::Acquire);
        let mut out: Batch = self.pool.take(self.config.batch_size);
        // Queries that exhausted their needed partitions on this batch; finalized
        // after their last relevant tuple has been emitted.
        let mut partition_done: Vec<usize> = Vec::new();
        // Tuple-recycling statistics accumulate locally and flush once per scan
        // batch (same batch-local-counter discipline as the Filter stats).
        let mut tuples_recycled = 0u64;
        let mut tuples_allocated = 0u64;

        for (row_id, row, version) in scan_buffer.rows.drain(..) {
            // Wrap-around detection: a query ends right before its starting tuple is
            // seen for the second time. The scratch list is reused across rows
            // (taken/restored around `finalize_query`, which needs `&mut self`).
            let position = row_id.0;
            let mut ending = std::mem::take(&mut self.ending_scratch);
            ending.clear();
            ending.extend(self.active_mask.iter().filter(|&bit| {
                self.queries[bit]
                    .as_ref()
                    .is_some_and(|q| q.start_position == position && q.passed_start)
            }));
            if !ending.is_empty() {
                // Flush tuples produced so far so the barrier covers them.
                out = self.flush(out);
                for &bit in &ending {
                    self.finalize_query(bit);
                }
            }
            self.ending_scratch = ending;
            if self.active_mask.is_empty() {
                // No query left; the rest of the scan batch is irrelevant.
                break;
            }
            for bit in self.active_mask.iter() {
                if let Some(q) = &mut self.queries[bit] {
                    if q.start_position == position {
                        q.passed_start = true;
                    }
                }
            }

            // Initialise the row's bit-vector in the reusable scratch (no per-row
            // allocation), then copy it into a pooled tuple only if it survives.
            self.bits_scratch.copy_from(&self.active_mask);
            if version != RowVersion::ALWAYS_VISIBLE {
                // The row carries update history: snapshot visibility is a virtual
                // fact predicate for every registered query (§3.5).
                for bit in self.active_mask.iter() {
                    if let Some(q) = &self.queries[bit] {
                        if !version.visible_at(q.snapshot) {
                            self.bits_scratch.unset(bit);
                        }
                    }
                }
            }
            if !self.special_bits.is_empty() {
                self.apply_special_predicates(&row, &mut partition_done);
            }

            if !self.bits_scratch.is_empty() {
                // Zero-allocation steady state: the slot reuses a spare tuple's
                // bit-vector words and dimension-slot vector in place.
                let (slot, recycled) = out.next_slot(self.config.max_concurrency);
                slot.reset(row_id, row, &self.bits_scratch, num_slots);
                if recycled {
                    tuples_recycled += 1;
                } else {
                    tuples_allocated += 1;
                }
                if out.len() >= self.config.batch_size {
                    out = self.flush(out);
                }
            }

            if !partition_done.is_empty() {
                out = self.flush(out);
                for bit in partition_done.drain(..) {
                    self.finalize_query(bit);
                }
            }
        }
        if tuples_recycled > 0 {
            SharedCounters::add(&self.counters.tuples_recycled, tuples_recycled);
        }
        if tuples_allocated > 0 {
            SharedCounters::add(&self.counters.tuples_allocated, tuples_allocated);
        }
        let leftover = self.flush(out);
        self.pool.put(leftover);
        self.scan_buffer = scan_buffer;
    }

    /// Applies fact predicates and partition accounting for the queries that need
    /// them (snapshot visibility has already been handled by the caller). Operates
    /// on `self.bits_scratch`, the reusable per-row bit-vector.
    fn apply_special_predicates(
        &mut self,
        row: &cjoin_storage::Row,
        partition_done: &mut Vec<usize>,
    ) {
        let partition_of = self
            .partition_scheme
            .as_ref()
            .map(|(scheme, column)| scheme.partition_of(row.int(*column)).index());
        for &bit in &self.special_bits {
            let Some(q) = &mut self.queries[bit] else {
                continue;
            };
            if let Some(pred) = &q.fact_predicate {
                if !pred.eval(row) {
                    self.bits_scratch.unset(bit);
                    // Note: the row still counts towards partition coverage below —
                    // coverage is about having *seen* the partition's rows.
                }
            }
            if let (Some(plan), Some(pid)) = (&mut q.partition, partition_of) {
                if plan.needed.get(pid).copied().unwrap_or(false) {
                    plan.remaining_rows = plan.remaining_rows.saturating_sub(1);
                    if plan.remaining_rows == 0 {
                        partition_done.push(bit);
                    }
                }
            }
        }
    }

    /// Sends a non-empty batch to the filter stage and returns a fresh batch.
    fn flush(&self, batch: Batch) -> Batch {
        if batch.is_empty() {
            return batch;
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        SharedCounters::add(&self.counters.batches_sent, 1);
        if self.stage_tx.send(Message::Data(batch)).is_err() {
            // Pipeline tearing down; undo the in-flight accounting so barriers do not
            // hang during shutdown.
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        self.pool.take(self.config.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{AggregateSpec, StarQuery};
    use cjoin_storage::{Catalog, Column, Row, Schema, Table, Value};
    use crossbeam::channel::{bounded, unbounded};
    use std::time::Instant;

    fn fact_table(rows: i64) -> Arc<Table> {
        let t = Table::with_rows_per_page(
            Schema::new("fact", vec![Column::int("fk"), Column::int("v")]),
            16,
        );
        t.insert_batch_unchecked(
            (0..rows).map(|i| Row::new(vec![Value::int(i % 3), Value::int(i)])),
            SnapshotId::INITIAL,
        );
        Arc::new(t)
    }

    /// Builds a Preprocessor wired to in-memory channels, returning the pieces the
    /// test drives directly.
    #[allow(clippy::type_complexity)]
    fn harness(
        rows: i64,
        config: CjoinConfig,
    ) -> (
        Preprocessor,
        Sender<PreprocessorCommand>,
        Receiver<Message>,
        Receiver<Message>,
        Arc<AtomicI64>,
    ) {
        let table = fact_table(rows);
        let scan = ContinuousScan::new(table).with_batch_rows(config.batch_size);
        let (cmd_tx, cmd_rx) = unbounded();
        let (stage_tx, stage_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let pre = Preprocessor::new(
            scan,
            cmd_rx,
            stage_tx,
            dist_tx,
            Arc::clone(&in_flight),
            BatchPool::new(8, true),
            Arc::new(AtomicUsize::new(1)),
            SharedCounters::new(),
            config,
            None,
        );
        (pre, cmd_tx, stage_rx, dist_rx, in_flight)
    }

    fn dummy_runtime(bit: u32) -> (Arc<QueryRuntime>, Receiver<cjoin_query::QueryResult>) {
        // A minimal bound query against a catalog with a fact table only.
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("v")],
        ));
        catalog.add_fact_table(Arc::new(fact));
        let bound = StarQuery::builder(format!("q{bit}"))
            .aggregate(AggregateSpec::count_star())
            .build()
            .bind(&catalog)
            .unwrap();
        let (tx, rx) = bounded(1);
        (
            Arc::new(QueryRuntime {
                id: QueryId(bit),
                name: format!("q{bit}"),
                bound: Arc::new(bound),
                slot_map: vec![],
                result_tx: tx,
                admitted_at: Instant::now(),
                progress: Arc::new(QueryProgress::new(0)),
            }),
            rx,
        )
    }

    fn install(cmd_tx: &Sender<PreprocessorCommand>, runtime: Arc<QueryRuntime>) {
        let (ack_tx, _ack_rx) = bounded(1);
        cmd_tx
            .send(PreprocessorCommand::Install {
                runtime,
                fact_predicate: None,
                snapshot: SnapshotId::INITIAL,
                partition: None,
                ack: ack_tx,
            })
            .unwrap();
    }

    #[test]
    fn install_emits_query_start_control() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10);
        let (mut pre, cmd_tx, _stage_rx, dist_rx, _) = harness(25, config);
        let (rt, _res) = dummy_runtime(0);
        install(&cmd_tx, rt);
        pre.apply_commands();
        assert_eq!(pre.active_queries(), 1);
        match dist_rx.try_recv().unwrap() {
            Message::Control(ControlTuple::QueryStart(rt)) => assert_eq!(rt.id, QueryId(0)),
            other => panic!("expected QueryStart, got {other:?}"),
        }
    }

    #[test]
    fn one_full_pass_then_query_end() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(25, config);
        let (rt, _res) = dummy_runtime(0);
        install(&cmd_tx, rt);
        pre.apply_commands();
        let _ = dist_rx.try_recv(); // QueryStart

        // Drive scan batches; acknowledge data batches by decrementing in-flight as
        // the distributor would, so drain barriers complete.
        let mut data_tuples = 0usize;
        let mut saw_end = false;
        for _ in 0..10 {
            pre.process_next_scan_batch();
            while let Ok(msg) = stage_rx.try_recv() {
                if let Message::Data(batch) = msg {
                    data_tuples += batch.len();
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            if let Ok(Message::Control(ControlTuple::QueryEnd(id))) = dist_rx.try_recv() {
                assert_eq!(id, QueryId(0));
                saw_end = true;
                break;
            }
        }
        assert!(saw_end, "query must finalize after one full pass");
        assert_eq!(
            data_tuples, 25,
            "exactly one pass worth of tuples had the query's bit"
        );
        assert_eq!(pre.active_queries(), 0);
    }

    #[test]
    fn query_registered_mid_scan_sees_exactly_one_pass() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(30, config);

        // First query keeps the scan busy.
        let (rt0, _r0) = dummy_runtime(0);
        install(&cmd_tx, rt0);
        pre.apply_commands();
        let _ = dist_rx.try_recv();
        pre.process_next_scan_batch(); // rows 0..10 for q0

        // Second query arrives mid-scan (position 10).
        let (rt1, _r1) = dummy_runtime(1);
        install(&cmd_tx, rt1);
        pre.apply_commands();
        let _ = dist_rx.try_recv();

        let mut q1_tuples = 0usize;
        let mut q1_ended = false;
        for _ in 0..20 {
            pre.process_next_scan_batch();
            while let Ok(msg) = stage_rx.try_recv() {
                if let Message::Data(batch) = msg {
                    q1_tuples += batch.iter().filter(|t| t.bits.get(1)).count();
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            while let Ok(msg) = dist_rx.try_recv() {
                if let Message::Control(ControlTuple::QueryEnd(QueryId(1))) = msg {
                    q1_ended = true;
                }
            }
            if q1_ended {
                break;
            }
        }
        assert!(q1_ended);
        assert_eq!(
            q1_tuples, 30,
            "the mid-scan query sees each fact tuple exactly once"
        );
    }

    #[test]
    fn fact_predicate_clears_bits() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(100);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(30, config);
        let (rt, _r) = dummy_runtime(0);
        // Predicate: fk = 1 (10 of 30 rows).
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("v")],
        ));
        catalog.add_fact_table(Arc::new(fact));
        let pred = cjoin_query::Predicate::eq("fk", 1)
            .bind(catalog.fact_table().unwrap().schema())
            .unwrap();
        let (ack_tx, _ack) = bounded(1);
        cmd_tx
            .send(PreprocessorCommand::Install {
                runtime: rt,
                fact_predicate: Some(pred),
                snapshot: SnapshotId::INITIAL,
                partition: None,
                ack: ack_tx,
            })
            .unwrap();
        pre.apply_commands();
        let _ = dist_rx.try_recv();

        let mut relevant = 0usize;
        for _ in 0..3 {
            pre.process_next_scan_batch();
            while let Ok(Message::Data(batch)) = stage_rx.try_recv() {
                relevant += batch.len();
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            if pre.active_queries() == 0 {
                break;
            }
        }
        assert_eq!(
            relevant, 10,
            "only rows satisfying the fact predicate are forwarded"
        );
    }

    #[test]
    fn shutdown_command_stops_the_loop() {
        let config = CjoinConfig::default().with_max_concurrency(4);
        let (mut pre, cmd_tx, stage_rx, dist_rx, _) = harness(5, config);
        cmd_tx.send(PreprocessorCommand::Shutdown).unwrap();
        pre.run(); // returns instead of scanning forever
        assert!(
            stage_rx.try_recv().is_err(),
            "no data produced after shutdown"
        );
        assert!(
            dist_rx.try_recv().is_err(),
            "no control produced after shutdown"
        );
    }

    #[test]
    fn snapshot_visibility_is_a_virtual_predicate() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(100);
        // Build a table where 5 rows are visible at snapshot 0 and 5 more at snapshot 1.
        let t = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("v")],
        ));
        for i in 0..5 {
            t.insert(vec![Value::int(i), Value::int(i)], SnapshotId(0))
                .unwrap();
        }
        for i in 5..10 {
            t.insert(vec![Value::int(i), Value::int(i)], SnapshotId(1))
                .unwrap();
        }
        let scan = ContinuousScan::new(Arc::new(t)).with_batch_rows(100);
        let (cmd_tx, cmd_rx) = unbounded();
        let (stage_tx, stage_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let mut pre = Preprocessor::new(
            scan,
            cmd_rx,
            stage_tx,
            dist_tx,
            Arc::clone(&in_flight),
            BatchPool::new(4, true),
            Arc::new(AtomicUsize::new(0)),
            SharedCounters::new(),
            config,
            None,
        );
        // Query pinned at snapshot 0 must only see the first 5 rows.
        let (rt, _r) = dummy_runtime(0);
        let (ack_tx, _ack) = bounded(1);
        cmd_tx
            .send(PreprocessorCommand::Install {
                runtime: rt,
                fact_predicate: None,
                snapshot: SnapshotId(0),
                partition: None,
                ack: ack_tx,
            })
            .unwrap();
        pre.apply_commands();
        let _ = dist_rx.try_recv();
        let mut forwarded = 0usize;
        for _ in 0..3 {
            pre.process_next_scan_batch();
            while let Ok(Message::Data(batch)) = stage_rx.try_recv() {
                forwarded += batch.len();
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            if pre.active_queries() == 0 {
                break;
            }
        }
        assert_eq!(forwarded, 5);
    }
}
