//! The Preprocessor (§3.2.2, §3.3) — classic single-threaded, or sharded into
//! parallel segment scan workers behind an admission coordinator.
//!
//! The Preprocessor owns the continuous scan. For every fact tuple it:
//!
//! 1. initialises the query bit-vector `bτ` from the registered queries' fact-table
//!    predicates and snapshot visibility (§3.5 treats snapshot membership as a
//!    virtual fact predicate);
//! 2. detects query completion: when the scan wraps around a query's starting tuple,
//!    the query's bit is switched off and an *end-of-query* control tuple is emitted
//!    ahead of that tuple (§3.3.2);
//! 3. applies pending admissions: a newly registered query is installed at a batch
//!    boundary — its starting position is recorded, its bit joins the active mask,
//!    and a *query-start* control tuple is emitted (§3.3.1, Algorithm 1 lines 17–22);
//! 4. batches surviving tuples and pushes them into the filter stage.
//!
//! The scan loop is allocation-free at steady state: the per-row bit-vector is
//! computed in a Preprocessor-owned scratch `QuerySet` (as is the list of queries
//! ending at a row), and surviving rows are written into recycled in-flight tuples
//! obtained from the [`BatchPool`] via [`Batch::next_slot`] +
//! [`InFlightTuple::reset`](crate::tuple::InFlightTuple::reset), reusing their
//! bit-vector words and dimension-slot vectors in place (§4's specialized
//! allocator). The `tuples_allocated` / `tuples_recycled` counters expose this.
//!
//! It is also O(1) per row in the number of active queries: starting positions are
//! indexed in an ordered `position → bits` map ([`Preprocessor::starts_at`]), so
//! each scan batch performs one range query over the row ids it covers and the
//! per-row work degenerates to a single integer comparison against the next known
//! boundary — instead of rescanning every active query per row for wrap-around
//! detection and `passed_start` flipping.
//!
//! ## Sharded front-end (`CjoinConfig::scan_workers > 1`)
//!
//! With `N > 1` scan workers the fact table's page range is split into `N` static
//! segments ([`cjoin_storage::segment_ranges`]); each segment is owned by one
//! worker running the full per-row path above over its own circular segment
//! cursor, feeding the filter stages concurrently. A [`ScanCoordinator`] thread
//! preserves the paper's §3.3 admission guarantees:
//!
//! * **Admission** — the coordinator emits the query-start control tuple *first*,
//!   then relays the install to every worker; each worker installs the query at
//!   its own segment-batch boundary, recording the query's starting position
//!   within its segment. Any data tuple carrying the new bit is therefore
//!   produced strictly after the start tuple was enqueued, so the Distributor's
//!   FIFO queue observes start-before-data (invariant 1) with no global pause.
//! * **Exactly one pass** — each worker independently retires the query's bit the
//!   moment its segment cursor wraps the per-segment starting tuple (or its
//!   partition plan is exhausted): from then on the worker never sets the bit, so
//!   no segment row is seen twice; and because every segment installs the bit at
//!   a boundary it was not yet produced past, no row is missed. The segment
//!   ranges partition the table, so the union over workers is exactly one pass.
//! * **Completion** — a worker that retires a bit notifies the coordinator
//!   (`SegmentPassDone`). Once **all** `N` segments have completed one pass since
//!   the admission, the coordinator stalls the workers at their next batch
//!   boundary ([`ScanStall`]), runs the drain barrier below, emits the single
//!   end-of-query control tuple, and releases the stall — so the
//!   Distributor/ShardMerger lifecycle protocol is identical to the classic
//!   single-scan mode.
//!
//! ## Columnar front-end (`CjoinConfig::columnar_scan`)
//!
//! With the columnar scan on, each Preprocessor (classic or segment worker)
//! drives a [`ColumnarScanCursor`] over a compressed replica of the fact table
//! instead of a [`ContinuousScan`] over the row store. The scan advances in
//! *chunks* cut so that query-start boundaries, row-group edges, the replica/
//! row-store frontier and the segment end all fall on chunk starts; the §3.3
//! lifecycle steps (admission at boundaries, wrap-around completion, drain
//! barriers) therefore run at chunk starts with the exact same ordering as the
//! row path's per-row boundary checks. Within a chunk, fact predicates are
//! evaluated over encoded data via each query's install-time-compiled
//! [`EncodedFactPredicate`] (zone maps decide whole chunks where possible),
//! and surviving tuples materialise only the union of columns the active
//! queries' join keys, group-bys and aggregates read — column positions are
//! preserved (unneeded columns read as NULL) so every downstream index keeps
//! working. See [`crate::colscan`] for the correctness argument.
//!
//! ## Control-tuple ordering
//!
//! §3.3.3 requires that a control tuple enqueued before (after) a fact tuple is never
//! processed by the Distributor after (before) that tuple. Data tuples travel through
//! the worker stages while control tuples take a direct path to the Distributor's
//! queue, so ordering is enforced with a *drain barrier*: before emitting an
//! end-of-query control tuple the front-end stops sending data and waits until every
//! batch already sent has been fully processed by the Distributor (an atomic
//! in-flight counter reaches zero). In sharded mode "stops sending data" is the
//! [`ScanStall`]: concurrent segment workers park at their next batch boundary, the
//! counter can only fall, and the barrier terminates. The wait itself uses bounded
//! spin-then-park backoff and records its duration in
//! `SharedCounters::barrier_wait_ns`, so submission-latency predictability analyses
//! can attribute stalls. Admissions and completions are rare relative to tuple flow,
//! so the stall is negligible — it is the same "stall the pipeline" step the paper
//! describes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender, TryRecvError};

use cjoin_common::{QueryId, QuerySet};
use cjoin_query::star::ColumnSource;
use cjoin_query::{BoundPredicate, BoundStarQuery};
use cjoin_storage::{
    ColumnId, ContinuousScan, EncodedColumn, PartitionScheme, RowId, RowVersion, ScanBatch,
    SnapshotId,
};

use crate::colscan::{
    ColumnarScanCursor, EncodedFactPredicate, ZoneVerdict, GROUP_QUARANTINED, GROUP_UNVERIFIED,
    GROUP_VERIFIED,
};
use crate::config::CjoinConfig;
use crate::fault::{self, FaultPlan, FaultSite};
use crate::pool::BatchPool;
use crate::progress::QueryProgress;
use crate::stats::{ScanWorkerCounters, SharedCounters};
use crate::tuple::{Batch, ControlTuple, Message, QueryRuntime};

/// Partition-pruning plan attached to a query at admission (§5, Fact Table
/// Partitioning): the set of partitions the query needs and how many fact rows of
/// those partitions remain to be seen. In sharded-scan mode each worker carries
/// its own plan whose `remaining_rows` counts only the rows of its segment, so
/// the per-worker plans sum to the classic whole-table plan.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// `needed[p]` is true iff partition `p` overlaps the query's fact-predicate range.
    pub needed: Vec<bool>,
    /// Rows of needed partitions not yet seen since the query was installed.
    pub remaining_rows: u64,
}

/// A command sent from the engine (acting as the Pipeline Manager) to the scan
/// front-end (the classic Preprocessor thread, or the [`ScanCoordinator`]).
#[derive(Debug)]
pub enum PreprocessorCommand {
    /// Install a freshly admitted query (Algorithm 1, lines 17–22).
    Install {
        /// Everything the Distributor needs to run the query.
        runtime: Arc<QueryRuntime>,
        /// The query's fact-table predicate, if it has a non-trivial one.
        fact_predicate: Option<BoundPredicate>,
        /// Snapshot the query reads.
        snapshot: SnapshotId,
        /// Partition-pruning plans, one per scan worker (a single entry in
        /// classic mode; empty when partition pruning does not apply).
        partition: Vec<Option<PartitionPlan>>,
        /// Acknowledged once the query-start control tuple has been enqueued (and,
        /// in sharded mode, the install has been relayed to every scan worker's
        /// FIFO command queue); the elapsed time up to this point is the paper's
        /// "submission time" metric. `None` on the coordinator's per-worker
        /// relays — the engine-facing ack does not wait for a round-trip.
        ack: Option<Sender<()>>,
    },
    /// Cancel an in-flight query: finalize it immediately (retire its bit,
    /// emit the end-of-query control tuple behind the usual drain barrier) so
    /// its partial state is released through the normal lifecycle machinery.
    /// The canceller resolves the query's outcome *before* sending this, so the
    /// Distributor's eventual result for the truncated scan is discarded by the
    /// first-wins latch — exactly-once accounting is preserved because the
    /// control-tuple protocol is unchanged.
    Cancel {
        /// The query to cancel.
        id: QueryId,
    },
    /// Shut the pipeline down: forward shutdown messages and exit.
    Shutdown,
    /// Liveness probe: ignored by workers. The coordinator sends one to every
    /// worker before stalling for a finalize, so a dead worker (dropped command
    /// receiver) surfaces as a send error instead of a stall that waits forever
    /// for a thread that can no longer park.
    Probe,
}

/// A message travelling to the scan front-end: engine commands, plus (sharded
/// mode) per-segment pass-completion events from the workers to the coordinator.
/// One enum keeps the classic and sharded front-ends behind the same channel type.
#[derive(Debug)]
pub enum ScanMessage {
    /// An engine command (install / shutdown).
    Command(PreprocessorCommand),
    /// Scan worker `segment` has completed one pass over its segment for `query`
    /// since the query's admission and has retired the query's bit locally.
    SegmentPassDone {
        /// The reporting worker's segment index.
        segment: usize,
        /// The query whose per-segment pass completed.
        query: QueryId,
    },
}

/// Everything a Preprocessor (classic or segment worker) shares with the rest of
/// the pipeline. Bundled so constructors stay readable as the front-end grows.
pub struct PreprocessorContext {
    /// Queue into the first filter Stage.
    pub stage_tx: Sender<Message>,
    /// Direct path for control tuples to the aggregation stage.
    pub distributor_tx: Sender<Message>,
    /// Batches in flight between the front-end and the aggregation stage.
    pub in_flight: Arc<AtomicI64>,
    /// Pooled batch allocator.
    pub pool: Arc<BatchPool>,
    /// Number of dimension slots currently allocated (for tuple sizing).
    pub slot_count: Arc<AtomicUsize>,
    /// Global pipeline counters.
    pub counters: Arc<SharedCounters>,
    /// This worker's own counters (always sum to the global totals).
    pub worker_counters: Arc<ScanWorkerCounters>,
    /// Supervisor poison flag: set (before teardown) when a pipeline role died,
    /// releasing the drain barrier and stopping the scan loop so a failed
    /// pipeline can always be joined. See the barrier-release-on-failure
    /// argument in [`crate::pipeline`].
    pub poison: Arc<AtomicBool>,
    /// Engine configuration.
    pub config: CjoinConfig,
    /// The fact table's partitioning metadata together with the fact column it
    /// partitions on, when partition pruning is enabled.
    pub partition_scheme: Option<(PartitionScheme, usize)>,
}

/// The scan source a Preprocessor drives: the classic row-store continuous
/// scan, or the compressed columnar cursor when `CjoinConfig::columnar_scan`
/// is on.
pub enum ScanKind {
    /// The row-store continuous scan (the default).
    Row(ContinuousScan),
    /// The compressed columnar scan cursor.
    Columnar(ColumnarScanCursor),
}

impl ScanKind {
    /// The cursor position folded into the scan's segment — where the next
    /// produced row will come from (a query's starting position at install).
    fn normalized_position(&self) -> u64 {
        match self {
            ScanKind::Row(scan) => scan.normalized_position(),
            ScanKind::Columnar(cursor) => cursor.normalized_position(),
        }
    }
}

/// Per-query state kept by the Preprocessor while the query is active.
#[derive(Debug)]
struct ActiveQuery {
    progress: Arc<QueryProgress>,
    fact_predicate: Option<BoundPredicate>,
    /// The fact predicate compiled for evaluation over encoded column data
    /// (columnar mode only; `None` falls back to `fact_predicate` on
    /// materialised replica rows — slower, never wrong).
    encoded_predicate: Option<EncodedFactPredicate>,
    /// Fact columns this query's join keys, group-bys and aggregate inputs
    /// read (columnar mode only): the refcounted inputs to the
    /// late-materialization projection.
    needs: Vec<ColumnId>,
    snapshot: SnapshotId,
    /// Row position at which the query entered the operator (within this worker's
    /// segment); the query's segment pass completes when the cursor next reaches
    /// this position.
    start_position: u64,
    /// False until the scan has produced the starting tuple once (the moment of
    /// registration), true afterwards; the second encounter is the wrap-around.
    passed_start: bool,
    partition: Option<PartitionPlan>,
}

/// How one query's fact predicate resolved for the current columnar chunk.
enum ChunkPredicate {
    /// The zone maps prove every row of the chunk's group matches.
    All,
    /// The zone maps prove no row can match.
    None,
    /// Evaluated over encoded data into the match buffer at this index.
    Buf(usize),
    /// The predicate did not compile: evaluate the bound predicate on a
    /// materialised replica row (shared across queries within the row).
    RowEval,
}

/// The fact columns `bound`'s join keys, group-bys and aggregate inputs read —
/// the set the columnar scan must materialise for tuples carrying its bit.
fn query_column_needs(bound: &BoundStarQuery) -> Vec<ColumnId> {
    let mut needs: Vec<ColumnId> = bound.dimensions.iter().map(|d| d.fact_fk_column).collect();
    let refs = bound
        .group_by
        .iter()
        .chain(bound.aggregates.iter().filter_map(|a| a.input.as_ref()));
    for col in refs {
        if let ColumnSource::Fact(c) = col.source {
            needs.push(c);
        }
    }
    needs.sort_unstable();
    needs.dedup();
    needs
}

/// How a Preprocessor behaves at query lifecycle edges.
enum Role {
    /// The classic single-threaded front-end: emits the query-start control tuple
    /// at install and the end-of-query control tuple (behind the drain barrier)
    /// at wrap-around.
    Classic,
    /// One segment worker of a sharded front-end: the [`ScanCoordinator`] owns
    /// both control tuples; the worker only retires bits locally and reports
    /// segment-pass completion.
    Segment {
        /// This worker's segment index.
        segment: usize,
        /// Pass-completion events into the coordinator's inbox.
        events: Sender<ScanMessage>,
        /// Parks the worker at batch boundaries while the coordinator drains.
        stall: Arc<ScanStall>,
    },
}

/// The Preprocessor: owns a continuous scan (whole-table or one segment) and the
/// active-query bookkeeping for it.
pub struct Preprocessor {
    scan: ScanKind,
    commands: Receiver<ScanMessage>,
    stage_tx: Sender<Message>,
    distributor_tx: Sender<Message>,
    in_flight: Arc<AtomicI64>,
    pool: Arc<BatchPool>,
    slot_count: Arc<AtomicUsize>,
    counters: Arc<SharedCounters>,
    worker_counters: Arc<ScanWorkerCounters>,
    poison: Arc<AtomicBool>,
    config: CjoinConfig,
    partition_scheme: Option<(PartitionScheme, usize)>,
    role: Role,
    /// Busy time accumulated in the current scan pass, published to
    /// `SharedCounters::last_pass_ns` at each wrap, feeding admission's
    /// deadline ETA (the paper's predictability, measured rather than
    /// modelled). Deliberately *busy-only*: idle sleeps between queries are
    /// excluded, so a pass that straddled an idle period does not inflate the
    /// next deadline quote into over-shedding.
    pass_busy: Duration,
    /// Rows covered so far in the current scan pass (reset at each wrap).
    pass_rows_seen: u64,

    active_mask: QuerySet,
    queries: Vec<Option<ActiveQuery>>,
    /// Ordered index `start position → bits starting there`: one range query per
    /// scan batch replaces the per-row scans over all active queries for both
    /// wrap-around detection and `passed_start` flipping.
    starts_at: BTreeMap<u64, Vec<usize>>,
    /// Bits of queries with a fact predicate, a non-default snapshot or a partition
    /// plan — the slow path of bit initialisation.
    special_bits: Vec<usize>,
    /// `special_index[bit]` = position of `bit` in `special_bits`, so finalize
    /// removes a special bit with one swap instead of an O(specials) retain.
    special_index: Vec<Option<usize>>,
    scan_buffer: ScanBatch,
    /// Scratch bit-vector the per-row `bτ` is computed in before being copied into a
    /// (usually recycled) in-flight tuple — reused across rows, never reallocated.
    bits_scratch: QuerySet,
    /// Scratch list of queries ending at the current row — reused across rows.
    ending_scratch: Vec<usize>,
    /// Scratch list of `(position, bit)` boundaries within the current scan batch,
    /// materialised once per batch from `starts_at` — reused across batches.
    boundary_scratch: Vec<(u64, usize)>,
    /// `col_needs[c]` = number of active queries reading fact column `c`
    /// (columnar mode only); the late-materialization projection is the set of
    /// columns with a non-zero count.
    col_needs: Vec<usize>,
    /// Cached sorted union of the active queries' needed columns.
    projection: Vec<ColumnId>,
    shutdown: bool,
}

impl Preprocessor {
    /// Creates the classic single-threaded Preprocessor over a whole-table scan.
    pub fn new(
        scan: ContinuousScan,
        commands: Receiver<ScanMessage>,
        ctx: PreprocessorContext,
    ) -> Self {
        Self::with_role(ScanKind::Row(scan), commands, ctx, Role::Classic)
    }

    /// Creates the classic single-threaded Preprocessor over a columnar cursor
    /// (`CjoinConfig::columnar_scan`).
    pub fn new_columnar(
        cursor: ColumnarScanCursor,
        commands: Receiver<ScanMessage>,
        ctx: PreprocessorContext,
    ) -> Self {
        Self::with_role(ScanKind::Columnar(cursor), commands, ctx, Role::Classic)
    }

    /// Creates one segment worker of a sharded scan front-end. `scan` must be a
    /// segment scan (see [`ContinuousScan::with_segment`]); lifecycle control
    /// tuples are owned by the [`ScanCoordinator`] receiving `events`.
    pub fn segment_worker(
        scan: ContinuousScan,
        commands: Receiver<ScanMessage>,
        ctx: PreprocessorContext,
        segment: usize,
        events: Sender<ScanMessage>,
        stall: Arc<ScanStall>,
    ) -> Self {
        Self::with_role(
            ScanKind::Row(scan),
            commands,
            ctx,
            Role::Segment {
                segment,
                events,
                stall,
            },
        )
    }

    /// Creates one columnar segment worker of a sharded scan front-end.
    /// `cursor` must carry a segment (see [`ColumnarScanCursor::with_segment`]);
    /// segment bounds should be row-group-aligned so zone-map chunks do not
    /// straddle workers.
    pub fn segment_worker_columnar(
        cursor: ColumnarScanCursor,
        commands: Receiver<ScanMessage>,
        ctx: PreprocessorContext,
        segment: usize,
        events: Sender<ScanMessage>,
        stall: Arc<ScanStall>,
    ) -> Self {
        Self::with_role(
            ScanKind::Columnar(cursor),
            commands,
            ctx,
            Role::Segment {
                segment,
                events,
                stall,
            },
        )
    }

    fn with_role(
        scan: ScanKind,
        commands: Receiver<ScanMessage>,
        ctx: PreprocessorContext,
        role: Role,
    ) -> Self {
        let max = ctx.config.max_concurrency;
        let col_needs = match &scan {
            ScanKind::Columnar(cursor) => vec![0; cursor.replica.schema().arity()],
            ScanKind::Row(_) => Vec::new(),
        };
        Self {
            scan,
            commands,
            stage_tx: ctx.stage_tx,
            distributor_tx: ctx.distributor_tx,
            in_flight: ctx.in_flight,
            pool: ctx.pool,
            slot_count: ctx.slot_count,
            counters: ctx.counters,
            worker_counters: ctx.worker_counters,
            poison: ctx.poison,
            config: ctx.config,
            partition_scheme: ctx.partition_scheme,
            role,
            pass_busy: Duration::ZERO,
            pass_rows_seen: 0,
            active_mask: QuerySet::new(max),
            queries: (0..max).map(|_| None).collect(),
            starts_at: BTreeMap::new(),
            special_bits: Vec::new(),
            special_index: vec![None; max],
            scan_buffer: ScanBatch::default(),
            bits_scratch: QuerySet::new(max),
            ending_scratch: Vec::new(),
            boundary_scratch: Vec::new(),
            col_needs,
            projection: Vec::new(),
            shutdown: false,
        }
    }

    /// Number of currently active queries (test/diagnostic helper).
    pub fn active_queries(&self) -> usize {
        self.active_mask.count()
    }

    /// Runs the Preprocessor loop until shutdown.
    ///
    /// On shutdown the Preprocessor simply stops producing; the engine is responsible
    /// for shutting down the downstream stages and the Distributor afterwards.
    pub fn run(&mut self) {
        loop {
            if let Role::Segment { stall, .. } = &self.role {
                stall.park_if_requested();
            }
            self.apply_commands();
            if self.shutdown || self.poison.load(Ordering::Acquire) {
                return;
            }
            if !self.active_mask.is_empty() {
                fault::inject(&self.config.fault_plan, FaultSite::ScanWorker);
            }
            if self.active_mask.is_empty() {
                // The operator is "always on" but idles cheaply when no query is
                // registered instead of burning a scan.
                std::thread::sleep(Duration::from_micros(self.config.idle_sleep_us));
                continue;
            }
            let step_started = Instant::now();
            match self.scan {
                ScanKind::Row(_) => self.process_next_scan_batch(),
                ScanKind::Columnar(_) => self.process_next_columnar_chunk(),
            }
            self.note_busy(step_started.elapsed());
        }
    }

    /// Accumulates one scan step's elapsed time into the busy pass clock and,
    /// for the reporting worker, publishes the live in-pass progress counters
    /// the admission ETA quote extrapolates from.
    fn note_busy(&mut self, elapsed: Duration) {
        self.pass_busy += elapsed;
        if self.reports_pass_progress() {
            self.counters
                .pass_rows
                .store(self.pass_rows_seen, Ordering::Relaxed);
            self.counters
                .pass_busy_ns
                .store(self.pass_busy.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Whether this worker publishes the live `pass_rows` / `pass_busy_ns`
    /// counters. Exactly one worker per pipeline does (the classic
    /// Preprocessor, or segment worker 0 of a sharded front-end) so the
    /// counters are a consistent single-segment sample rather than an
    /// interleaving of workers racing `store`s.
    fn reports_pass_progress(&self) -> bool {
        matches!(self.role, Role::Classic | Role::Segment { segment: 0, .. })
    }

    // ------------------------------------------------------------------
    // Command handling (admission / shutdown)
    // ------------------------------------------------------------------

    fn apply_commands(&mut self) {
        loop {
            match self.commands.try_recv() {
                Ok(ScanMessage::Command(PreprocessorCommand::Install {
                    runtime,
                    fact_predicate,
                    snapshot,
                    partition,
                    ack,
                })) => {
                    let plan = partition.into_iter().next().flatten();
                    self.install_query(runtime, fact_predicate, snapshot, plan);
                    if let Some(ack) = ack {
                        let _ = ack.send(());
                    }
                }
                Ok(ScanMessage::Command(PreprocessorCommand::Cancel { id })) => {
                    let bit = id.index();
                    if self.queries.get(bit).is_some_and(Option::is_some) {
                        self.finalize_query(bit);
                    }
                }
                Ok(ScanMessage::Command(PreprocessorCommand::Shutdown)) => {
                    self.shutdown = true;
                    return;
                }
                Ok(ScanMessage::Command(PreprocessorCommand::Probe)) => {}
                Ok(ScanMessage::SegmentPassDone { .. }) => {
                    // Only the coordinator's inbox carries these.
                    debug_assert!(false, "segment event delivered to a scan worker");
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    self.shutdown = true;
                    return;
                }
            }
        }
    }

    fn install_query(
        &mut self,
        runtime: Arc<QueryRuntime>,
        fact_predicate: Option<BoundPredicate>,
        snapshot: SnapshotId,
        partition: Option<PartitionPlan>,
    ) {
        let bit = runtime.id.index();
        let start_position = self.scan.normalized_position();
        if matches!(self.role, Role::Classic) {
            // The query-start control tuple must precede any tuple carrying the
            // query's bit. Data tuples with the bit are only produced after this
            // method returns, and they reach the Distributor's queue strictly later
            // than this control tuple, so no drain barrier is needed here. (In
            // sharded mode the coordinator emitted the start tuple before relaying
            // this install — same argument, one hop earlier.)
            let _ = self
                .distributor_tx
                .send(Message::Control(ControlTuple::QueryStart(Arc::clone(
                    &runtime,
                ))));
        }

        let special =
            fact_predicate.is_some() || snapshot != SnapshotId::INITIAL || partition.is_some();
        let segment_irrelevant = matches!(self.role, Role::Segment { .. })
            && partition.as_ref().is_some_and(|p| p.remaining_rows == 0);
        // Columnar mode: compile the fact predicate for encoded evaluation and
        // register the query's column needs with the late-materialization
        // projection — both before any tuple can carry the new bit.
        let mut encoded_predicate = None;
        let mut needs = Vec::new();
        if let ScanKind::Columnar(cursor) = &self.scan {
            if fact_predicate.is_some() {
                encoded_predicate = EncodedFactPredicate::compile(
                    &runtime.bound.fact_predicate_raw,
                    cursor.replica.schema(),
                    &cursor.replica,
                );
            }
            needs = query_column_needs(&runtime.bound);
        }
        for &c in &needs {
            self.col_needs[c] += 1;
        }
        if !needs.is_empty() {
            self.rebuild_projection();
        }
        self.queries[bit] = Some(ActiveQuery {
            progress: Arc::clone(&runtime.progress),
            fact_predicate,
            encoded_predicate,
            needs,
            snapshot,
            start_position,
            passed_start: false,
            partition,
        });
        self.active_mask.set(bit);
        self.starts_at.entry(start_position).or_default().push(bit);
        if special {
            self.special_index[bit] = Some(self.special_bits.len());
            self.special_bits.push(bit);
        }
        if matches!(self.role, Role::Classic) {
            SharedCounters::add(&self.counters.queries_admitted, 1);
        } else if segment_irrelevant {
            // This segment holds no rows of the partitions the query needs: its
            // pass is trivially complete, before any of its bits were produced.
            self.finalize_query(bit);
        }
    }

    fn finalize_query(&mut self, bit: usize) {
        let Some(query) = self.queries[bit].take() else {
            return;
        };
        for &c in &query.needs {
            self.col_needs[c] -= 1;
        }
        if !query.needs.is_empty() {
            self.rebuild_projection();
        }
        query.progress.mark_segment_completed();
        self.active_mask.unset(bit);
        if let Some(entry) = self.starts_at.get_mut(&query.start_position) {
            entry.retain(|&b| b != bit);
            if entry.is_empty() {
                self.starts_at.remove(&query.start_position);
            }
        }
        if let Some(pos) = self.special_index[bit].take() {
            // O(1) swap-remove; re-point the bit that swapped into `pos`.
            self.special_bits.swap_remove(pos);
            if let Some(&moved) = self.special_bits.get(pos) {
                self.special_index[moved] = Some(pos);
            }
        }
        match &self.role {
            Role::Classic => {
                query.progress.mark_completed();
                // Everything sent so far may still carry the query's bit: drain
                // before the end-of-query control tuple so its aggregation operator
                // neither misses tuples nor sees them twice.
                drain_barrier(&self.in_flight, &self.counters, &self.poison);
                let _ = self
                    .distributor_tx
                    .send(Message::Control(ControlTuple::QueryEnd(QueryId(
                        bit as u32,
                    ))));
            }
            Role::Segment {
                segment, events, ..
            } => {
                // The bit is retired locally (this worker will never set it
                // again); the coordinator emits the single end-of-query control
                // tuple once every segment has reported.
                let _ = events.send(ScanMessage::SegmentPassDone {
                    segment: *segment,
                    query: QueryId(bit as u32),
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Scan processing
    // ------------------------------------------------------------------

    /// Publishes the *busy* time and row count of the pass that just wrapped
    /// so admission can pre-shed queries whose deadline cannot survive one
    /// more pass (the measured flavour of the paper's completion-time
    /// estimate). Idle sleeps never enter `pass_busy` (see [`Self::note_busy`]),
    /// so a pass that straddled an idle gap reports its true scan cost — the
    /// fix for the over-shedding the wall-clock pass timer used to cause.
    fn record_pass_time(&mut self) {
        let busy = std::mem::take(&mut self.pass_busy);
        let rows = std::mem::take(&mut self.pass_rows_seen);
        if rows > 0 {
            self.counters
                .last_pass_ns
                .store(busy.as_nanos() as u64, Ordering::Relaxed);
            self.counters.cycle_rows.store(rows, Ordering::Relaxed);
        }
        if self.reports_pass_progress() {
            self.counters.pass_rows.store(0, Ordering::Relaxed);
            self.counters.pass_busy_ns.store(0, Ordering::Relaxed);
        }
    }

    fn process_next_scan_batch(&mut self) {
        let mut scan_buffer = std::mem::take(&mut self.scan_buffer);
        let ScanKind::Row(scan) = &mut self.scan else {
            unreachable!("the row batch path runs only over a row scan");
        };
        scan.next_batch(&mut scan_buffer);
        if scan_buffer.wrapped {
            SharedCounters::add(&self.counters.scan_passes, 1);
            SharedCounters::add(&self.worker_counters.segment_passes, 1);
            self.record_pass_time();
        }
        if scan_buffer.is_empty() {
            // Empty fact table (or empty segment): nothing will ever complete the
            // registered queries by wrap-around, so finalize them all immediately
            // (their results — or this segment's contributions — are empty).
            let bits: Vec<usize> = self.active_mask.iter().collect();
            for bit in bits {
                self.finalize_query(bit);
            }
            self.scan_buffer = scan_buffer;
            std::thread::sleep(Duration::from_micros(self.config.idle_sleep_us));
            return;
        }
        SharedCounters::add(&self.counters.tuples_scanned, scan_buffer.len() as u64);
        SharedCounters::add(
            &self.worker_counters.tuples_scanned,
            scan_buffer.len() as u64,
        );
        self.pass_rows_seen += scan_buffer.len() as u64;
        // Every active query sees every scanned row exactly once per pass; the batch
        // length is therefore each query's progress increment (§3.2.3). With
        // segment workers the per-segment batches sum to the whole table, so the
        // shared tracker stays exact.
        for bit in self.active_mask.iter() {
            if let Some(q) = &self.queries[bit] {
                q.progress.advance(scan_buffer.len() as u64);
            }
        }

        // One ordered range query per batch finds every query whose starting tuple
        // lies in the batch's (consecutive, ascending) row range; the per-row loop
        // below then only compares against the next such boundary. This is the
        // O(1)-per-row replacement for rescanning all active queries per row.
        let mut boundaries = std::mem::take(&mut self.boundary_scratch);
        boundaries.clear();
        let first = scan_buffer.rows.first().map(|(id, _, _)| id.0).unwrap_or(0);
        let last = scan_buffer.rows.last().map(|(id, _, _)| id.0).unwrap_or(0);
        boundaries.extend(
            self.starts_at
                .range(first..=last)
                .flat_map(|(&pos, bits)| bits.iter().map(move |&bit| (pos, bit))),
        );
        let mut next_boundary = 0usize;

        let num_slots = self.slot_count.load(Ordering::Acquire);
        let mut out: Batch = self.pool.take(self.config.batch_size);
        // Queries that exhausted their needed partitions on this batch; finalized
        // after their last relevant tuple has been emitted.
        let mut partition_done: Vec<usize> = Vec::new();
        // Tuple-recycling statistics accumulate locally and flush once per scan
        // batch (same batch-local-counter discipline as the Filter stats).
        let mut tuples_recycled = 0u64;
        let mut tuples_allocated = 0u64;

        for (row_id, row, version) in scan_buffer.rows.drain(..) {
            let position = row_id.0;
            if next_boundary < boundaries.len() && boundaries[next_boundary].0 == position {
                // A starting tuple: queries that already passed it end right here
                // (wrap-around, §3.3.2); the rest pass it now. The scratch list is
                // reused across rows (taken/restored around `finalize_query`,
                // which needs `&mut self`).
                let from = next_boundary;
                while next_boundary < boundaries.len() && boundaries[next_boundary].0 == position {
                    next_boundary += 1;
                }
                let mut ending = std::mem::take(&mut self.ending_scratch);
                ending.clear();
                ending.extend(
                    boundaries[from..next_boundary]
                        .iter()
                        .filter_map(|&(_, bit)| {
                            self.queries[bit]
                                .as_ref()
                                .is_some_and(|q| q.passed_start)
                                .then_some(bit)
                        }),
                );
                if !ending.is_empty() {
                    // Flush tuples produced so far so the barrier covers them.
                    out = self.flush(out);
                    for &bit in &ending {
                        self.finalize_query(bit);
                    }
                }
                self.ending_scratch = ending;
                if self.active_mask.is_empty() {
                    // No query left; the rest of the scan batch is irrelevant.
                    break;
                }
                for &(_, bit) in &boundaries[from..next_boundary] {
                    if let Some(q) = &mut self.queries[bit] {
                        if q.start_position == position {
                            q.passed_start = true;
                        }
                    }
                }
            }

            // Initialise the row's bit-vector in the reusable scratch (no per-row
            // allocation), then copy it into a pooled tuple only if it survives.
            self.bits_scratch.copy_from(&self.active_mask);
            if version != RowVersion::ALWAYS_VISIBLE {
                // The row carries update history: snapshot visibility is a virtual
                // fact predicate for every registered query (§3.5).
                for bit in self.active_mask.iter() {
                    if let Some(q) = &self.queries[bit] {
                        if !version.visible_at(q.snapshot) {
                            self.bits_scratch.unset(bit);
                        }
                    }
                }
            }
            if !self.special_bits.is_empty() {
                self.apply_special_predicates(&row, &mut partition_done);
            }

            if !self.bits_scratch.is_empty() {
                // Zero-allocation steady state: the slot reuses a spare tuple's
                // bit-vector words and dimension-slot vector in place.
                let (slot, recycled) = out.next_slot(self.config.max_concurrency);
                slot.reset(row_id, row, &self.bits_scratch, num_slots);
                if recycled {
                    tuples_recycled += 1;
                } else {
                    tuples_allocated += 1;
                }
                if out.len() >= self.config.batch_size {
                    out = self.flush(out);
                }
            }

            if !partition_done.is_empty() {
                out = self.flush(out);
                for bit in partition_done.drain(..) {
                    self.finalize_query(bit);
                }
            }
        }
        self.boundary_scratch = boundaries;
        if tuples_recycled > 0 {
            SharedCounters::add(&self.counters.tuples_recycled, tuples_recycled);
        }
        if tuples_allocated > 0 {
            SharedCounters::add(&self.counters.tuples_allocated, tuples_allocated);
        }
        let leftover = self.flush(out);
        self.pool.put(leftover);
        self.scan_buffer = scan_buffer;
    }

    /// Recomputes the cached late-materialization projection from the per-column
    /// refcounts (called whenever a query's needs are added or removed).
    fn rebuild_projection(&mut self) {
        self.projection.clear();
        self.projection.extend(
            self.col_needs
                .iter()
                .enumerate()
                .filter_map(|(c, &n)| (n > 0).then_some(c)),
        );
    }

    // ------------------------------------------------------------------
    // Columnar scan processing
    // ------------------------------------------------------------------

    /// Advances the columnar cursor by one chunk, running the same per-row
    /// lifecycle as [`Preprocessor::process_next_scan_batch`] over encoded data.
    ///
    /// Chunks are cut so that every query-start boundary, row-group edge, the
    /// replica/row-store frontier and the segment end fall on a chunk *start*:
    /// boundary bookkeeping (wrap-around finalization, `passed_start` flips)
    /// then runs once per chunk instead of once per row, and a chunk is always
    /// either fully inside one row group (so its zone maps apply) or fully in
    /// the hybrid tail (served from the row store).
    fn process_next_columnar_chunk(&mut self) {
        // Take the cursor state out so `&mut self` methods (flush /
        // finalize_query) stay callable inside the loop; written back below.
        let ScanKind::Columnar(cursor) = &mut self.scan else {
            unreachable!("the columnar chunk path runs only over a columnar cursor");
        };
        let replica = Arc::clone(&cursor.replica);
        let table = Arc::clone(&cursor.table);
        let volume = Arc::clone(&cursor.volume);
        let col_bytes = std::mem::take(&mut cursor.col_bytes_per_row);
        let mut match_bufs = std::mem::take(&mut cursor.match_bufs);
        let mut tail_rows = std::mem::take(&mut cursor.tail_buffer);
        let mut touched = std::mem::take(&mut cursor.touched_cols);
        let mut group_state = std::mem::take(&mut cursor.group_state);
        let (start, end) = cursor.current_bounds();
        let mut position = cursor.position;
        let mut passes = cursor.passes;

        'chunk: {
            if start >= end {
                // Empty table or empty segment: mirror the row scan's
                // empty-batch behaviour — report a wrap, finalize everything
                // (their results here are empty), idle instead of spinning.
                SharedCounters::add(&self.counters.scan_passes, 1);
                SharedCounters::add(&self.worker_counters.segment_passes, 1);
                let bits: Vec<usize> = self.active_mask.iter().collect();
                for bit in bits {
                    self.finalize_query(bit);
                }
                std::thread::sleep(Duration::from_micros(self.config.idle_sleep_us));
                break 'chunk;
            }
            if position >= end || position < start {
                // Wrap around: a pass just completed.
                position = start;
                passes += 1;
            }
            if position == start {
                // A pass starts (including the first), matching
                // `ScanBatch::wrapped` accounting on the row path.
                SharedCounters::add(&self.counters.scan_passes, 1);
                SharedCounters::add(&self.worker_counters.segment_passes, 1);
                self.record_pass_time();
            }

            // Query-start boundaries only ever coincide with chunk starts (the
            // chunk-extent clamp below guarantees it): queries that already
            // passed this position end here (wrap-around, §3.3.2) — everything
            // produced so far was flushed at the previous chunk's end, so the
            // drain barrier inside finalize covers it — and the rest pass it now.
            if self.starts_at.contains_key(&position) {
                let mut ending = std::mem::take(&mut self.ending_scratch);
                ending.clear();
                ending.extend(self.starts_at[&position].iter().copied());
                let mut i = 0;
                while i < ending.len() {
                    match self.queries[ending[i]].as_mut() {
                        Some(q) if q.passed_start => i += 1,
                        Some(q) => {
                            q.passed_start = true;
                            ending.swap_remove(i);
                        }
                        None => {
                            ending.swap_remove(i);
                        }
                    }
                }
                for bit in ending.drain(..) {
                    self.finalize_query(bit);
                }
                self.ending_scratch = ending;
                if self.active_mask.is_empty() {
                    break 'chunk;
                }
            }

            // Chunk extent: batch size, segment end, the replica/row-store
            // frontier, the current row group's edge, and the next query-start
            // boundary all clamp it.
            let replica_len = replica.len() as u64;
            let mut chunk_end = (position + self.config.batch_size as u64).min(end);
            if position < replica_len {
                chunk_end = chunk_end.min(replica_len);
                let group = &replica.row_groups()[replica.group_of(position)];
                chunk_end = chunk_end.min(group.start + group.len);
            }
            if let Some((&boundary, _)) = self.starts_at.range(position + 1..chunk_end).next() {
                chunk_end = boundary;
            }
            let chunk_len = (chunk_end - position) as usize;

            SharedCounters::add(&self.counters.tuples_scanned, chunk_len as u64);
            SharedCounters::add(&self.worker_counters.tuples_scanned, chunk_len as u64);
            self.pass_rows_seen += chunk_len as u64;
            for bit in self.active_mask.iter() {
                if let Some(q) = &self.queries[bit] {
                    q.progress.advance(chunk_len as u64);
                }
            }

            if position >= replica_len {
                // Hybrid tail: rows appended after the replica was built are
                // served from the live row store with the full per-row path.
                tail_rows.clear();
                table.read_range(position, chunk_len, &mut tail_rows);
                self.emit_materialized_rows(&mut tail_rows);
                let bytes = chunk_len as u64 * 8 * replica.schema().arity() as u64;
                volume.record_scan(chunk_len as u64, bytes);
                position = chunk_end;
                break 'chunk;
            }

            // Checksum gate: verify each row group once before trusting its
            // encoded columns or zone maps. A group that fails is quarantined
            // for the life of this cursor and served from the live row store
            // exactly like the hybrid tail — the replica is a frozen prefix of
            // the row store, so the rows (and results) are identical, just
            // slower. Chunks never cross a group edge, so the whole chunk
            // shares one verdict.
            let g = replica.group_of(position);
            if group_state.get(g).copied() == Some(GROUP_UNVERIFIED) {
                if replica.verify_group(g) {
                    group_state[g] = GROUP_VERIFIED;
                } else {
                    group_state[g] = GROUP_QUARANTINED;
                    volume.record_group_quarantined();
                    eprintln!(
                        "cjoin: columnar row group {g} failed its checksum; \
                         serving its rows from the row store"
                    );
                }
            }
            if group_state.get(g).copied() == Some(GROUP_QUARANTINED) {
                tail_rows.clear();
                table.read_range(position, chunk_len, &mut tail_rows);
                self.emit_materialized_rows(&mut tail_rows);
                let bytes = chunk_len as u64 * 8 * replica.schema().arity() as u64;
                volume.record_scan(chunk_len as u64, bytes);
                position = chunk_end;
                break 'chunk;
            }

            // Encoded region: the chunk lies inside one row group. Resolve each
            // active fact predicate once for the whole chunk — a zone verdict
            // where the maps decide, an encoded-kernel evaluation into a match
            // bitmap otherwise, or a per-row fallback for predicates that did
            // not compile.
            let group = &replica.row_groups()[replica.group_of(position)];
            for t in touched.iter_mut() {
                *t = false;
            }
            let mut states: Vec<(usize, ChunkPredicate)> = Vec::new();
            let mut bufs_used = 0usize;
            let mut all_never = !self.active_mask.is_empty();
            let mut any_partition = false;
            let mut any_row_eval = false;
            for bit in self.active_mask.iter() {
                let Some(q) = &self.queries[bit] else {
                    continue;
                };
                if q.partition.is_some() {
                    any_partition = true;
                }
                if q.fact_predicate.is_none() {
                    all_never = false;
                    continue;
                }
                let state = match &q.encoded_predicate {
                    Some(encoded) => match encoded.zone_verdict(&group.zones) {
                        ZoneVerdict::Never => ChunkPredicate::None,
                        ZoneVerdict::Always => {
                            all_never = false;
                            ChunkPredicate::All
                        }
                        ZoneVerdict::Maybe => {
                            all_never = false;
                            if match_bufs.len() == bufs_used {
                                match_bufs.push(Vec::new());
                            }
                            let buf = &mut match_bufs[bufs_used];
                            buf.clear();
                            buf.resize(chunk_len, false);
                            encoded.eval_range(&replica, position as usize, buf, &volume);
                            for &c in encoded.columns() {
                                touched[c] = true;
                            }
                            bufs_used += 1;
                            ChunkPredicate::Buf(bufs_used - 1)
                        }
                    },
                    None => {
                        all_never = false;
                        any_row_eval = true;
                        ChunkPredicate::RowEval
                    }
                };
                states.push((bit, state));
            }

            // Zone-map chunk skip: every active query's predicate is provably
            // false over this group, and no partition plan needs the rows
            // counted towards its coverage.
            if all_never && !any_partition {
                volume.record_group_skip(chunk_len as u64);
                position = chunk_end;
                break 'chunk;
            }
            if any_row_eval {
                // The fallback materialises full rows: every column is touched.
                for t in touched.iter_mut() {
                    *t = true;
                }
            }

            let check_visibility = !group.all_always_visible;
            let num_slots = self.slot_count.load(Ordering::Acquire);
            let mut out: Batch = self.pool.take(self.config.batch_size);
            let mut partition_done: Vec<usize> = Vec::new();
            let mut tuples_recycled = 0u64;
            let mut tuples_allocated = 0u64;
            let mut mat_rows = 0u64;
            for i in position as usize..chunk_end as usize {
                let j = i - position as usize;
                self.bits_scratch.copy_from(&self.active_mask);
                if check_visibility {
                    // Snapshot visibility as a virtual fact predicate (§3.5),
                    // from the replica's frozen version metadata.
                    if let Some(version) = replica.version(i) {
                        if version != RowVersion::ALWAYS_VISIBLE {
                            for bit in self.active_mask.iter() {
                                if let Some(q) = &self.queries[bit] {
                                    if !version.visible_at(q.snapshot) {
                                        self.bits_scratch.unset(bit);
                                    }
                                }
                            }
                        }
                    }
                }
                let mut full_row = None;
                for &(bit, ref state) in &states {
                    match state {
                        ChunkPredicate::All => {}
                        ChunkPredicate::None => self.bits_scratch.unset(bit),
                        ChunkPredicate::Buf(b) => {
                            if !match_bufs[*b][j] {
                                self.bits_scratch.unset(bit);
                            }
                        }
                        ChunkPredicate::RowEval => {
                            let row = full_row
                                .get_or_insert_with(|| replica.row(i).expect("row in replica"));
                            let keep = self.queries[bit]
                                .as_ref()
                                .and_then(|q| q.fact_predicate.as_ref())
                                .is_some_and(|p| p.eval(row));
                            if !keep {
                                self.bits_scratch.unset(bit);
                            }
                        }
                    }
                }
                if any_partition {
                    // Partition coverage counts *seen* rows whether or not a
                    // predicate dropped them (same rule as the row path); the
                    // partition column is read from the encoded data because
                    // the projected tuple may not carry it.
                    if let Some((scheme, column)) = &self.partition_scheme {
                        let value = match replica.encoded_column(*column) {
                            EncodedColumn::Int { data, .. } => data.get(i).unwrap_or(0),
                            EncodedColumn::Str { .. } => 0,
                        };
                        let pid = scheme.partition_of(value).index();
                        for &bit in &self.special_bits {
                            let Some(q) = &mut self.queries[bit] else {
                                continue;
                            };
                            if let Some(plan) = &mut q.partition {
                                if plan.needed.get(pid).copied().unwrap_or(false) {
                                    plan.remaining_rows = plan.remaining_rows.saturating_sub(1);
                                    if plan.remaining_rows == 0 {
                                        partition_done.push(bit);
                                    }
                                }
                            }
                        }
                    }
                }
                if !self.bits_scratch.is_empty() {
                    // Late materialization: only the union of columns the
                    // active queries read is decoded; positions are preserved
                    // (the rest are NULL) so downstream indices keep working.
                    let (slot, recycled) = out.next_slot(self.config.max_concurrency);
                    let row = replica.project_row(i, &self.projection);
                    slot.reset(RowId(i as u64), row, &self.bits_scratch, num_slots);
                    mat_rows += 1;
                    if recycled {
                        tuples_recycled += 1;
                    } else {
                        tuples_allocated += 1;
                    }
                    if out.len() >= self.config.batch_size {
                        out = self.flush(out);
                    }
                }
                if !partition_done.is_empty() {
                    out = self.flush(out);
                    for bit in partition_done.drain(..) {
                        self.finalize_query(bit);
                    }
                    if self.active_mask.is_empty() {
                        break;
                    }
                }
            }
            if tuples_recycled > 0 {
                SharedCounters::add(&self.counters.tuples_recycled, tuples_recycled);
            }
            if tuples_allocated > 0 {
                SharedCounters::add(&self.counters.tuples_allocated, tuples_allocated);
            }
            let leftover = self.flush(out);
            self.pool.put(leftover);

            // Byte accounting: each predicate-touched column is billed once
            // over the chunk; materialization bills the projected columns per
            // surviving row.
            let mut chunk_bytes = 0u64;
            for (c, t) in touched.iter().enumerate() {
                if *t {
                    let b = col_bytes[c] * chunk_len as u64;
                    volume.record_column(c, b);
                    chunk_bytes += b;
                }
            }
            for &c in &self.projection {
                let b = col_bytes[c] * mat_rows;
                volume.record_column(c, b);
                chunk_bytes += b;
            }
            volume.record_scan(chunk_len as u64, chunk_bytes);
            position = chunk_end;
        }

        let ScanKind::Columnar(cursor) = &mut self.scan else {
            unreachable!("scan kind cannot change mid-call");
        };
        cursor.position = position;
        cursor.passes = passes;
        cursor.col_bytes_per_row = col_bytes;
        cursor.match_bufs = match_bufs;
        cursor.tail_buffer = tail_rows;
        cursor.touched_cols = touched;
        cursor.group_state = group_state;
    }

    /// Runs the full row-at-a-time path (visibility, special predicates,
    /// emission) over already-materialised rows — the hybrid-tail rows the
    /// columnar replica does not cover. Mirrors the per-row body of
    /// [`Preprocessor::process_next_scan_batch`] minus boundary handling, which
    /// the columnar chunking has already done at the chunk start.
    fn emit_materialized_rows(&mut self, rows: &mut Vec<(RowId, cjoin_storage::Row, RowVersion)>) {
        let num_slots = self.slot_count.load(Ordering::Acquire);
        let mut out: Batch = self.pool.take(self.config.batch_size);
        let mut partition_done: Vec<usize> = Vec::new();
        let mut tuples_recycled = 0u64;
        let mut tuples_allocated = 0u64;
        for (row_id, row, version) in rows.drain(..) {
            self.bits_scratch.copy_from(&self.active_mask);
            if version != RowVersion::ALWAYS_VISIBLE {
                for bit in self.active_mask.iter() {
                    if let Some(q) = &self.queries[bit] {
                        if !version.visible_at(q.snapshot) {
                            self.bits_scratch.unset(bit);
                        }
                    }
                }
            }
            if !self.special_bits.is_empty() {
                self.apply_special_predicates(&row, &mut partition_done);
            }
            if !self.bits_scratch.is_empty() {
                let (slot, recycled) = out.next_slot(self.config.max_concurrency);
                slot.reset(row_id, row, &self.bits_scratch, num_slots);
                if recycled {
                    tuples_recycled += 1;
                } else {
                    tuples_allocated += 1;
                }
                if out.len() >= self.config.batch_size {
                    out = self.flush(out);
                }
            }
            if !partition_done.is_empty() {
                out = self.flush(out);
                for bit in partition_done.drain(..) {
                    self.finalize_query(bit);
                }
            }
        }
        if tuples_recycled > 0 {
            SharedCounters::add(&self.counters.tuples_recycled, tuples_recycled);
        }
        if tuples_allocated > 0 {
            SharedCounters::add(&self.counters.tuples_allocated, tuples_allocated);
        }
        let leftover = self.flush(out);
        self.pool.put(leftover);
    }

    /// Applies fact predicates and partition accounting for the queries that need
    /// them (snapshot visibility has already been handled by the caller). Operates
    /// on `self.bits_scratch`, the reusable per-row bit-vector.
    fn apply_special_predicates(
        &mut self,
        row: &cjoin_storage::Row,
        partition_done: &mut Vec<usize>,
    ) {
        let partition_of = self
            .partition_scheme
            .as_ref()
            .map(|(scheme, column)| scheme.partition_of(row.int(*column)).index());
        for &bit in &self.special_bits {
            let Some(q) = &mut self.queries[bit] else {
                continue;
            };
            if let Some(pred) = &q.fact_predicate {
                if !pred.eval(row) {
                    self.bits_scratch.unset(bit);
                    // Note: the row still counts towards partition coverage below —
                    // coverage is about having *seen* the partition's rows.
                }
            }
            if let (Some(plan), Some(pid)) = (&mut q.partition, partition_of) {
                if plan.needed.get(pid).copied().unwrap_or(false) {
                    plan.remaining_rows = plan.remaining_rows.saturating_sub(1);
                    if plan.remaining_rows == 0 {
                        partition_done.push(bit);
                    }
                }
            }
        }
    }

    /// Sends a non-empty batch to the filter stage and returns a fresh batch.
    fn flush(&self, batch: Batch) -> Batch {
        if batch.is_empty() {
            return batch;
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        SharedCounters::add(&self.counters.batches_sent, 1);
        SharedCounters::add(&self.worker_counters.batches_sent, 1);
        if self.stage_tx.send(Message::Data(batch)).is_err() {
            // Pipeline tearing down; undo the in-flight accounting so barriers do not
            // hang during shutdown.
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        self.pool.take(self.config.batch_size)
    }
}

// ---------------------------------------------------------------------------
// Drain barrier
// ---------------------------------------------------------------------------

/// Waits until the in-flight batch counter reaches zero, with bounded
/// spin-then-park backoff (pure spins, then yields, then exponentially growing
/// micro-sleeps capped at ~256 µs), recording the wait in `control_barriers` /
/// `barrier_wait_ns`. Used by the classic Preprocessor before every end-of-query
/// control tuple and by the [`ScanCoordinator`] while workers are stalled.
///
/// The barrier's termination argument assumes every downstream consumer is
/// alive; a dead Stage or Distributor leaves the counter stuck above zero
/// forever. `poison` is the supervisor's escape hatch: it is set (after every
/// in-flight query outcome has been resolved with an error) before teardown, and
/// the wait loop re-checks it so a poisoned barrier releases in bounded time
/// instead of deadlocking the failure path.
pub(crate) fn drain_barrier(in_flight: &AtomicI64, counters: &SharedCounters, poison: &AtomicBool) {
    SharedCounters::add(&counters.control_barriers, 1);
    if in_flight.load(Ordering::Acquire) <= 0 {
        return;
    }
    let started = Instant::now();
    let mut round = 0u32;
    while in_flight.load(Ordering::Acquire) > 0 {
        if poison.load(Ordering::Acquire) {
            // A role died; the counter may never drain. Exit — our caller's
            // next loop iteration observes the poison flag and stops too.
            break;
        }
        if round < 64 {
            std::hint::spin_loop();
        } else if round < 96 {
            std::thread::yield_now();
        } else {
            // "Park": no wake-up event exists for the counter, so sleep with an
            // exponentially growing, bounded interval instead of burning a core.
            let exp = (round - 96).min(6);
            std::thread::sleep(Duration::from_micros(4u64 << exp));
        }
        round += 1;
    }
    SharedCounters::add(
        &counters.barrier_wait_ns,
        started.elapsed().as_nanos() as u64,
    );
}

// ---------------------------------------------------------------------------
// Stall protocol (sharded front-end)
// ---------------------------------------------------------------------------

/// Parks every segment scan worker at its next batch boundary while the
/// coordinator drains the pipeline for an end-of-query control tuple.
///
/// Workers call [`ScanStall::park_if_requested`] once per loop iteration — a
/// single uncontended mutex acquisition per scan batch. The coordinator's
/// [`ScanStall::stall`] returns only once all `workers` are parked, which makes
/// the subsequent drain barrier terminate: no producer is running, so the
/// in-flight counter can only fall. [`ScanStall::release`] resumes the workers.
/// A worker that is already parked when a release races with the next stall
/// simply stays parked (it re-checks the request under the lock before
/// decrementing its park count), so the coordinator can never over- or
/// under-count parked workers.
#[derive(Debug)]
pub struct ScanStall {
    state: Mutex<StallState>,
    cv: Condvar,
    workers: usize,
}

#[derive(Debug, Default)]
struct StallState {
    requested: bool,
    parked: usize,
    shutdown: bool,
}

impl ScanStall {
    /// Creates a stall gate for `workers` segment scan workers.
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(StallState::default()),
            cv: Condvar::new(),
            workers,
        })
    }

    /// Worker side: parks until released if a stall is requested; otherwise
    /// returns immediately.
    pub fn park_if_requested(&self) {
        let mut s = self.lock_state();
        if !s.requested {
            return;
        }
        s.parked += 1;
        self.cv.notify_all();
        while s.requested && !s.shutdown {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.parked -= 1;
        self.cv.notify_all();
    }

    /// Coordinator side: requests a stall and blocks until every worker is parked
    /// (or the gate is shut down).
    pub fn stall(&self) {
        let mut s = self.lock_state();
        s.requested = true;
        while s.parked < self.workers && !s.shutdown {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Coordinator side: releases a stall, resuming every parked worker.
    pub fn release(&self) {
        let mut s = self.lock_state();
        s.requested = false;
        self.cv.notify_all();
    }

    /// Permanently opens the gate (pipeline teardown): parked workers resume and
    /// no future stall blocks.
    pub fn shutdown(&self) {
        let mut s = self.lock_state();
        s.shutdown = true;
        s.requested = false;
        self.cv.notify_all();
    }

    /// Locks the stall state, surviving poisoning: a panicking scan worker (the
    /// supervised fault path) must not wedge the gate for everyone else — the
    /// `StallState` fields stay consistent under any interleaving of the
    /// protocol, so the poison carries no information here.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, StallState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Admission coordinator (sharded front-end)
// ---------------------------------------------------------------------------

/// Per-query completion bookkeeping held by the coordinator.
struct PendingQuery {
    progress: Arc<QueryProgress>,
    segments_remaining: usize,
}

/// The admission coordinator of a sharded scan front-end.
///
/// Owns the engine-facing command channel and the paper's §3.3 lifecycle
/// protocol: it emits the query-start control tuple, relays installs to every
/// segment worker (each installs at its own next segment-batch boundary),
/// collects per-segment pass completions, and — once all segments completed one
/// pass since a query's admission — stalls the workers, runs the drain barrier,
/// and emits the single end-of-query control tuple. Downstream (Distributor /
/// ShardRouter / ShardMerger) semantics are therefore identical to the classic
/// single-threaded Preprocessor.
pub struct ScanCoordinator {
    inbox: Receiver<ScanMessage>,
    worker_txs: Vec<Sender<ScanMessage>>,
    distributor_tx: Sender<Message>,
    in_flight: Arc<AtomicI64>,
    counters: Arc<SharedCounters>,
    stall: Arc<ScanStall>,
    poison: Arc<AtomicBool>,
    faults: Option<Arc<FaultPlan>>,
    pending: Vec<Option<PendingQuery>>,
    shutdown: bool,
}

impl ScanCoordinator {
    /// Creates a coordinator for the given segment workers.
    pub fn new(
        inbox: Receiver<ScanMessage>,
        worker_txs: Vec<Sender<ScanMessage>>,
        distributor_tx: Sender<Message>,
        in_flight: Arc<AtomicI64>,
        counters: Arc<SharedCounters>,
        stall: Arc<ScanStall>,
        max_concurrency: usize,
    ) -> Self {
        Self {
            inbox,
            worker_txs,
            distributor_tx,
            in_flight,
            counters,
            stall,
            poison: Arc::new(AtomicBool::new(false)),
            faults: None,
            pending: (0..max_concurrency).map(|_| None).collect(),
            shutdown: false,
        }
    }

    /// Shares the supervisor's poison flag so the coordinator's drain barrier
    /// releases when a downstream role dies.
    pub fn with_poison(mut self, poison: Arc<AtomicBool>) -> Self {
        self.poison = poison;
        self
    }

    /// Attaches a fault-injection plan (supervision tests only).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Runs the coordinator loop until shutdown, then tears the workers down.
    pub fn run(&mut self) {
        while !self.shutdown {
            match self.inbox.recv() {
                Ok(msg) => self.handle(msg),
                Err(_) => break,
            }
        }
        // Teardown: wake any parked worker, then stop each one. The engine joins
        // the worker threads after this thread exits.
        self.stall.shutdown();
        for tx in &self.worker_txs {
            let _ = tx.send(ScanMessage::Command(PreprocessorCommand::Shutdown));
        }
    }

    fn handle(&mut self, msg: ScanMessage) {
        fault::inject(&self.faults, FaultSite::ScanCoordinator);
        match msg {
            ScanMessage::Command(PreprocessorCommand::Cancel { id }) => {
                // Relay to every worker; each retires the bit at its own next
                // batch boundary and reports a SegmentPassDone, so cancellation
                // completes through the ordinary end-of-pass machinery (stall +
                // drain barrier + one end-of-query control tuple).
                for tx in &self.worker_txs {
                    if tx
                        .send(ScanMessage::Command(PreprocessorCommand::Cancel { id }))
                        .is_err()
                    {
                        self.shutdown = true;
                        self.stall.shutdown();
                        return;
                    }
                }
            }
            ScanMessage::Command(PreprocessorCommand::Install {
                runtime,
                fact_predicate,
                snapshot,
                partition,
                ack,
            }) => {
                if self.install(runtime, fact_predicate, snapshot, partition) {
                    if let Some(ack) = ack {
                        let _ = ack.send(());
                    }
                }
                // On a failed install (dead worker) the ack sender is dropped
                // unsent, so the submitting client observes the failure instead
                // of a successful admission that can never complete.
            }
            ScanMessage::Command(PreprocessorCommand::Shutdown) => self.shutdown = true,
            // Probes flow coordinator → worker only; ignore a stray one.
            ScanMessage::Command(PreprocessorCommand::Probe) => {}
            ScanMessage::SegmentPassDone { query, .. } => {
                let mut ready = Vec::new();
                self.record_segment_done(query, &mut ready);
                if ready.is_empty() {
                    return;
                }
                // A stall is about to make the front-end briefly unresponsive:
                // apply every already-queued message first, so admissions ack at
                // classic latency instead of waiting out the stall, and any
                // concurrent pass completions share this single stall.
                while !self.shutdown {
                    match self.inbox.try_recv() {
                        Ok(ScanMessage::SegmentPassDone { query, .. }) => {
                            self.record_segment_done(query, &mut ready);
                        }
                        Ok(other) => self.handle(other),
                        Err(_) => break,
                    }
                }
                if !self.shutdown {
                    self.finalize(ready);
                }
                // On shutdown the pending queries are abandoned: they can no
                // longer complete correctly, and their waiters observe the
                // teardown through the result channels.
            }
        }
    }

    /// Installs a query across the front-end; returns false (and shuts the
    /// coordinator down) if a segment worker is no longer reachable.
    fn install(
        &mut self,
        runtime: Arc<QueryRuntime>,
        fact_predicate: Option<BoundPredicate>,
        snapshot: SnapshotId,
        partition: Vec<Option<PartitionPlan>>,
    ) -> bool {
        let bit = runtime.id.index();
        // Invariant 1 (§3.3.1): the query-start control tuple enters the
        // Distributor's queue before any worker has even been told about the
        // query, so no data tuple carrying its bit can precede it.
        let _ = self
            .distributor_tx
            .send(Message::Control(ControlTuple::QueryStart(Arc::clone(
                &runtime,
            ))));
        self.pending[bit] = Some(PendingQuery {
            progress: Arc::clone(&runtime.progress),
            segments_remaining: self.worker_txs.len(),
        });
        // Relay the install to every worker; each installs at its own next
        // segment-batch boundary. No round-trip is needed: the paper's submission
        // contract ("the query-start control tuple has entered the pipeline") is
        // already met, each worker's command queue is FIFO (the install precedes
        // any later command to that worker), and the exactly-one-pass argument
        // only depends on *where* a worker installs the bit, not on when the
        // engine learns about it. Skipping the ack wait keeps sharded submission
        // latency at classic levels instead of paying one batch boundary per
        // worker.
        for (worker, tx) in self.worker_txs.iter().enumerate() {
            let sent = tx.send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: Arc::clone(&runtime),
                fact_predicate: fact_predicate.clone(),
                snapshot,
                partition: vec![partition.get(worker).cloned().flatten()],
                ack: None,
            }));
            if sent.is_err() {
                // A segment worker's command receiver is gone outside an orderly
                // shutdown: the front-end can no longer deliver a full pass, and
                // this query's segments_remaining would never reach zero. Mirror
                // the classic dead-Preprocessor failure mode — stop consuming
                // commands, so this submission and every later one fail fast
                // instead of hanging silently. Opening the stall gate keeps any
                // subsequent stall from waiting on the dead worker.
                self.shutdown = true;
                self.stall.shutdown();
                return false;
            }
        }
        SharedCounters::add(&self.counters.queries_admitted, 1);
        true
    }

    /// Counts one segment pass for `query`; pushes its bit onto `ready` once all
    /// segments have reported.
    fn record_segment_done(&mut self, query: QueryId, ready: &mut Vec<usize>) {
        let bit = query.index();
        match &mut self.pending[bit] {
            Some(p) => {
                p.segments_remaining = p.segments_remaining.saturating_sub(1);
                if p.segments_remaining == 0 {
                    ready.push(bit);
                }
            }
            // A pass event for an unknown query would mean a worker finished a
            // pass for a bit the coordinator never installed; never happens in a
            // running pipeline.
            None => debug_assert!(false, "segment pass for unregistered query {query:?}"),
        }
    }

    /// Ends every query in `ready` behind one stall + drain barrier.
    ///
    /// Invariant 2 (§3.3.2/§3.3.3): every worker has retired these bits locally,
    /// so batches produced from here on cannot carry them — but batches already
    /// in flight can. Park the workers at their next batch boundary (making the
    /// in-flight counter monotonically non-increasing), drain it to zero, and
    /// only then emit the end-of-query control tuples.
    fn finalize(&mut self, ready: Vec<usize>) {
        // A worker that died abnormally can never park: probe every command
        // channel first so a dead worker turns into the fail-fast shutdown path
        // instead of a stall that waits forever.
        for tx in &self.worker_txs {
            if tx
                .send(ScanMessage::Command(PreprocessorCommand::Probe))
                .is_err()
            {
                self.shutdown = true;
                self.stall.shutdown();
                return;
            }
        }
        self.stall.stall();
        drain_barrier(&self.in_flight, &self.counters, &self.poison);
        if self.poison.load(Ordering::Acquire) {
            // The barrier was released by supervisor poison, not by a real
            // drain: every affected query's outcome was already resolved with
            // an error, so do not emit end-of-query tuples for a truncated scan.
            self.shutdown = true;
            self.stall.shutdown();
            return;
        }
        for bit in ready {
            let Some(pending) = self.pending[bit].take() else {
                continue;
            };
            pending.progress.mark_completed();
            let _ = self
                .distributor_tx
                .send(Message::Control(ControlTuple::QueryEnd(QueryId(
                    bit as u32,
                ))));
        }
        self.stall.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjoin_query::{AggregateSpec, StarQuery};
    use cjoin_storage::{segment_ranges, Catalog, Column, Row, Schema, Table, Value};
    use crossbeam::channel::{bounded, unbounded};
    use std::time::Instant;

    fn fact_table(rows: i64) -> Arc<Table> {
        let t = Table::with_rows_per_page(
            Schema::new("fact", vec![Column::int("fk"), Column::int("v")]),
            16,
        );
        t.insert_batch_unchecked(
            (0..rows).map(|i| Row::new(vec![Value::int(i % 3), Value::int(i)])),
            SnapshotId::INITIAL,
        );
        Arc::new(t)
    }

    fn context(
        config: &CjoinConfig,
        stage_tx: Sender<Message>,
        dist_tx: Sender<Message>,
        in_flight: Arc<AtomicI64>,
    ) -> PreprocessorContext {
        PreprocessorContext {
            stage_tx,
            distributor_tx: dist_tx,
            in_flight,
            pool: BatchPool::new(8, true),
            slot_count: Arc::new(AtomicUsize::new(1)),
            counters: SharedCounters::new(),
            worker_counters: Arc::new(ScanWorkerCounters::default()),
            poison: Arc::new(AtomicBool::new(false)),
            config: config.clone(),
            partition_scheme: None,
        }
    }

    /// Builds a classic Preprocessor wired to in-memory channels, returning the
    /// pieces the test drives directly.
    #[allow(clippy::type_complexity)]
    fn harness(
        rows: i64,
        config: CjoinConfig,
    ) -> (
        Preprocessor,
        Sender<ScanMessage>,
        Receiver<Message>,
        Receiver<Message>,
        Arc<AtomicI64>,
    ) {
        let table = fact_table(rows);
        let scan = ContinuousScan::new(table).with_batch_rows(config.batch_size);
        let (cmd_tx, cmd_rx) = unbounded();
        let (stage_tx, stage_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let ctx = context(&config, stage_tx, dist_tx, Arc::clone(&in_flight));
        let pre = Preprocessor::new(scan, cmd_rx, ctx);
        (pre, cmd_tx, stage_rx, dist_rx, in_flight)
    }

    fn dummy_runtime(bit: u32) -> (Arc<QueryRuntime>, Receiver<cjoin_query::QueryOutcome>) {
        // A minimal bound query against a catalog with a fact table only.
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("v")],
        ));
        catalog.add_fact_table(Arc::new(fact));
        let bound = StarQuery::builder(format!("q{bit}"))
            .aggregate(AggregateSpec::count_star())
            .build()
            .bind(&catalog)
            .unwrap();
        let (tx, rx) = bounded(1);
        (
            Arc::new(QueryRuntime {
                id: QueryId(bit),
                name: format!("q{bit}"),
                bound: Arc::new(bound),
                slot_map: vec![],
                result_tx: tx,
                resolved: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
                deadline_at: None,
                admitted_at: Instant::now(),
                snapshot: SnapshotId::INITIAL,
                progress: Arc::new(QueryProgress::new(0)),
            }),
            rx,
        )
    }

    fn install(cmd_tx: &Sender<ScanMessage>, runtime: Arc<QueryRuntime>) {
        let (ack_tx, _ack_rx) = bounded(1);
        cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime,
                fact_predicate: None,
                snapshot: SnapshotId::INITIAL,
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
    }

    #[test]
    fn install_emits_query_start_control() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10);
        let (mut pre, cmd_tx, _stage_rx, dist_rx, _) = harness(25, config);
        let (rt, _res) = dummy_runtime(0);
        install(&cmd_tx, rt);
        pre.apply_commands();
        assert_eq!(pre.active_queries(), 1);
        match dist_rx.try_recv().unwrap() {
            Message::Control(ControlTuple::QueryStart(rt)) => assert_eq!(rt.id, QueryId(0)),
            other => panic!("expected QueryStart, got {other:?}"),
        }
    }

    #[test]
    fn one_full_pass_then_query_end() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(25, config);
        let (rt, _res) = dummy_runtime(0);
        install(&cmd_tx, rt);
        pre.apply_commands();
        let _ = dist_rx.try_recv(); // QueryStart

        // Drive scan batches; acknowledge data batches by decrementing in-flight as
        // the distributor would, so drain barriers complete.
        let mut data_tuples = 0usize;
        let mut saw_end = false;
        for _ in 0..10 {
            pre.process_next_scan_batch();
            while let Ok(msg) = stage_rx.try_recv() {
                if let Message::Data(batch) = msg {
                    data_tuples += batch.len();
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            if let Ok(Message::Control(ControlTuple::QueryEnd(id))) = dist_rx.try_recv() {
                assert_eq!(id, QueryId(0));
                saw_end = true;
                break;
            }
        }
        assert!(saw_end, "query must finalize after one full pass");
        assert_eq!(
            data_tuples, 25,
            "exactly one pass worth of tuples had the query's bit"
        );
        assert_eq!(pre.active_queries(), 0);
    }

    #[test]
    fn query_registered_mid_scan_sees_exactly_one_pass() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(30, config);

        // First query keeps the scan busy.
        let (rt0, _r0) = dummy_runtime(0);
        install(&cmd_tx, rt0);
        pre.apply_commands();
        let _ = dist_rx.try_recv();
        pre.process_next_scan_batch(); // rows 0..10 for q0

        // Second query arrives mid-scan (position 10).
        let (rt1, _r1) = dummy_runtime(1);
        install(&cmd_tx, rt1);
        pre.apply_commands();
        let _ = dist_rx.try_recv();

        let mut q1_tuples = 0usize;
        let mut q1_ended = false;
        for _ in 0..20 {
            pre.process_next_scan_batch();
            while let Ok(msg) = stage_rx.try_recv() {
                if let Message::Data(batch) = msg {
                    q1_tuples += batch.iter().filter(|t| t.bits.get(1)).count();
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            while let Ok(msg) = dist_rx.try_recv() {
                if let Message::Control(ControlTuple::QueryEnd(QueryId(1))) = msg {
                    q1_ended = true;
                }
            }
            if q1_ended {
                break;
            }
        }
        assert!(q1_ended);
        assert_eq!(
            q1_tuples, 30,
            "the mid-scan query sees each fact tuple exactly once"
        );
    }

    #[test]
    fn fact_predicate_clears_bits() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(100);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(30, config);
        let (rt, _r) = dummy_runtime(0);
        // Predicate: fk = 1 (10 of 30 rows).
        let catalog = Catalog::new();
        let fact = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("v")],
        ));
        catalog.add_fact_table(Arc::new(fact));
        let pred = cjoin_query::Predicate::eq("fk", 1)
            .bind(catalog.fact_table().unwrap().schema())
            .unwrap();
        let (ack_tx, _ack) = bounded(1);
        cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: rt,
                fact_predicate: Some(pred),
                snapshot: SnapshotId::INITIAL,
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
        pre.apply_commands();
        let _ = dist_rx.try_recv();

        let mut relevant = 0usize;
        for _ in 0..3 {
            pre.process_next_scan_batch();
            while let Ok(Message::Data(batch)) = stage_rx.try_recv() {
                relevant += batch.len();
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            if pre.active_queries() == 0 {
                break;
            }
        }
        assert_eq!(
            relevant, 10,
            "only rows satisfying the fact predicate are forwarded"
        );
    }

    #[test]
    fn shutdown_command_stops_the_loop() {
        let config = CjoinConfig::default().with_max_concurrency(4);
        let (mut pre, cmd_tx, stage_rx, dist_rx, _) = harness(5, config);
        cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Shutdown))
            .unwrap();
        pre.run(); // returns instead of scanning forever
        assert!(
            stage_rx.try_recv().is_err(),
            "no data produced after shutdown"
        );
        assert!(
            dist_rx.try_recv().is_err(),
            "no control produced after shutdown"
        );
    }

    #[test]
    fn snapshot_visibility_is_a_virtual_predicate() {
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(100);
        // Build a table where 5 rows are visible at snapshot 0 and 5 more at snapshot 1.
        let t = Table::new(Schema::new(
            "fact",
            vec![Column::int("fk"), Column::int("v")],
        ));
        for i in 0..5 {
            t.insert(vec![Value::int(i), Value::int(i)], SnapshotId(0))
                .unwrap();
        }
        for i in 5..10 {
            t.insert(vec![Value::int(i), Value::int(i)], SnapshotId(1))
                .unwrap();
        }
        let scan = ContinuousScan::new(Arc::new(t)).with_batch_rows(100);
        let (cmd_tx, cmd_rx) = unbounded();
        let (stage_tx, stage_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded();
        let in_flight = Arc::new(AtomicI64::new(0));
        let ctx = context(&config, stage_tx, dist_tx, Arc::clone(&in_flight));
        let mut pre = Preprocessor::new(scan, cmd_rx, ctx);
        // Query pinned at snapshot 0 must only see the first 5 rows.
        let (rt, _r) = dummy_runtime(0);
        let (ack_tx, _ack) = bounded(1);
        cmd_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: rt,
                fact_predicate: None,
                snapshot: SnapshotId(0),
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
        pre.apply_commands();
        let _ = dist_rx.try_recv();
        let mut forwarded = 0usize;
        for _ in 0..3 {
            pre.process_next_scan_batch();
            while let Ok(Message::Data(batch)) = stage_rx.try_recv() {
                forwarded += batch.len();
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            if pre.active_queries() == 0 {
                break;
            }
        }
        assert_eq!(forwarded, 5);
    }

    #[test]
    fn many_active_queries_share_one_boundary_lookup_per_batch() {
        // Regression shape for the O(active-queries)-per-row loops: all queries
        // installed at position 0 must still end after exactly one pass each.
        let config = CjoinConfig::default()
            .with_max_concurrency(16)
            .with_batch_size(10);
        let (mut pre, cmd_tx, stage_rx, dist_rx, in_flight) = harness(30, config);
        let runtimes: Vec<_> = (0..8).map(dummy_runtime).collect();
        for (rt, _) in &runtimes {
            install(&cmd_tx, Arc::clone(rt));
        }
        pre.apply_commands();
        while dist_rx.try_recv().is_ok() {}
        assert_eq!(pre.active_queries(), 8);

        let mut ended = 0usize;
        for _ in 0..10 {
            pre.process_next_scan_batch();
            while let Ok(msg) = stage_rx.try_recv() {
                if let Message::Data(_) = msg {
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            while let Ok(msg) = dist_rx.try_recv() {
                if matches!(msg, Message::Control(ControlTuple::QueryEnd(_))) {
                    ended += 1;
                }
            }
            if ended == 8 {
                break;
            }
        }
        assert_eq!(ended, 8, "every query ends after exactly one pass");
        assert_eq!(pre.active_queries(), 0);
    }

    #[test]
    fn drain_barrier_records_wait_time() {
        let counters = SharedCounters::new();
        let in_flight = Arc::new(AtomicI64::new(0));
        let poison = AtomicBool::new(false);
        // Fast path: nothing in flight, no wait recorded.
        drain_barrier(&in_flight, &counters, &poison);
        assert_eq!(counters.control_barriers.load(Ordering::Relaxed), 1);
        assert_eq!(counters.barrier_wait_ns.load(Ordering::Relaxed), 0);
        // Slow path: a helper drains the counter after a delay.
        in_flight.store(3, Ordering::Release);
        let helper = {
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                in_flight.store(0, Ordering::Release);
            })
        };
        drain_barrier(&in_flight, &counters, &poison);
        helper.join().unwrap();
        assert_eq!(counters.control_barriers.load(Ordering::Relaxed), 2);
        assert!(
            counters.barrier_wait_ns.load(Ordering::Relaxed) >= 1_000_000,
            "the ~5 ms wait is attributed to the barrier"
        );
    }

    #[test]
    fn drain_barrier_releases_on_poison() {
        let counters = SharedCounters::new();
        let in_flight = Arc::new(AtomicI64::new(7));
        let poison = Arc::new(AtomicBool::new(false));
        // Nothing will ever drain the counter (the "dead Stage" case); only the
        // poison flag can release the barrier.
        let setter = {
            let poison = Arc::clone(&poison);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                poison.store(true, Ordering::Release);
            })
        };
        let started = Instant::now();
        drain_barrier(&in_flight, &counters, &poison);
        setter.join().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "a poisoned barrier must release in bounded time"
        );
        assert_eq!(in_flight.load(Ordering::Acquire), 7, "nothing was drained");
    }

    #[test]
    fn stall_parks_and_releases_workers() {
        let stall = ScanStall::new(2);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let stall = Arc::clone(&stall);
                std::thread::spawn(move || {
                    // Emulate the scan loop: check the gate until shutdown.
                    loop {
                        stall.park_if_requested();
                        {
                            let s = stall.state.lock().unwrap();
                            if s.shutdown {
                                return;
                            }
                        }
                        std::thread::sleep(Duration::from_micros(50));
                    }
                })
            })
            .collect();
        // stall() returns only once both workers are parked.
        stall.stall();
        assert_eq!(stall.state.lock().unwrap().parked, 2);
        stall.release();
        // Workers resume; a second stall round still works.
        stall.stall();
        assert_eq!(stall.state.lock().unwrap().parked, 2);
        stall.release();
        stall.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    /// A dead segment worker (dropped command receiver outside an orderly
    /// shutdown) must fail the submission fast — the engine-facing ack channel
    /// is dropped unsent and the coordinator stops consuming commands — instead
    /// of admitting a query whose pass can never complete.
    #[test]
    fn coordinator_fails_fast_when_a_segment_worker_dies() {
        let (inbox_tx, inbox_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded::<Message>();
        let (dead_tx, dead_rx) = unbounded();
        drop(dead_rx); // the "worker" is gone
        let counters = SharedCounters::new();
        let mut coordinator = ScanCoordinator::new(
            inbox_rx,
            vec![dead_tx],
            dist_tx,
            Arc::new(AtomicI64::new(0)),
            Arc::clone(&counters),
            ScanStall::new(1),
            8,
        );
        let coord = std::thread::spawn(move || coordinator.run());

        let (rt, _res) = dummy_runtime(0);
        let (ack_tx, ack_rx) = bounded(1);
        inbox_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: rt,
                fact_predicate: None,
                snapshot: SnapshotId::INITIAL,
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
        assert!(
            ack_rx.recv().is_err(),
            "the submission must observe the failure, not a successful admission"
        );
        coord.join().unwrap(); // the coordinator shut itself down
        assert_eq!(
            counters.queries_admitted.load(Ordering::Relaxed),
            0,
            "a failed install is not counted as an admission"
        );
        // The start tuple may already have been enqueued (it precedes the relay);
        // what matters is that no end tuple ever will be.
        while let Ok(msg) = dist_rx.try_recv() {
            assert!(
                matches!(msg, Message::Control(ControlTuple::QueryStart(_))),
                "unexpected message after failed install: {msg:?}"
            );
        }
    }

    /// A worker that dies *after* its installs succeeded (and after reporting
    /// pass completions) must not hang the coordinator's finalize stall: the
    /// pre-stall liveness probe detects the dropped command receiver and takes
    /// the fail-fast shutdown path instead.
    #[test]
    fn coordinator_finalize_survives_a_worker_dying_after_install() {
        let (inbox_tx, inbox_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded::<Message>();
        let (tx_alive, _rx_alive) = unbounded();
        let (tx_dying, rx_dying) = unbounded();
        let counters = SharedCounters::new();
        let mut coordinator = ScanCoordinator::new(
            inbox_rx,
            vec![tx_alive, tx_dying],
            dist_tx,
            Arc::new(AtomicI64::new(0)),
            Arc::clone(&counters),
            ScanStall::new(2),
            8,
        );
        let coord = std::thread::spawn(move || coordinator.run());

        let (rt, _res) = dummy_runtime(0);
        let (ack_tx, ack_rx) = bounded(1);
        inbox_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: rt,
                fact_predicate: None,
                snapshot: SnapshotId::INITIAL,
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
        ack_rx.recv().unwrap(); // install succeeded, both workers reachable

        // Both segments report their pass, but one worker dies first.
        drop(rx_dying);
        for segment in 0..2 {
            inbox_tx
                .send(ScanMessage::SegmentPassDone {
                    segment,
                    query: QueryId(0),
                })
                .unwrap();
        }
        // Without the probe this would deadlock in stall(); with it the
        // coordinator shuts down and joins.
        coord.join().unwrap();
        let saw_end = std::iter::from_fn(|| dist_rx.try_recv().ok())
            .any(|m| matches!(m, Message::Control(ControlTuple::QueryEnd(_))));
        assert!(!saw_end, "no end tuple may be emitted without the barrier");
    }

    /// Full sharded front-end harness: N segment workers + coordinator threads
    /// over in-memory channels, with a consumer emulating the filter stages and
    /// the Distributor (drains data, decrements in-flight, records per-bit tuple
    /// counts and control ordering).
    #[test]
    fn sharded_front_end_delivers_exactly_one_pass_and_ordered_controls() {
        const ROWS: i64 = 95;
        const WORKERS: usize = 3;
        let config = CjoinConfig::default()
            .with_max_concurrency(8)
            .with_batch_size(10)
            .with_scan_workers(WORKERS);
        let table = fact_table(ROWS);
        let (inbox_tx, inbox_rx) = unbounded();
        let (stage_tx, stage_rx) = unbounded();
        let (dist_tx, dist_rx) = unbounded::<Message>();
        let in_flight = Arc::new(AtomicI64::new(0));
        let counters = SharedCounters::new();
        let stall = ScanStall::new(WORKERS);

        let ranges = segment_ranges(table.len() as u64, table.rows_per_page(), WORKERS);
        let mut worker_txs = Vec::new();
        let mut worker_handles = Vec::new();
        for (w, &(start, end)) in ranges.iter().enumerate() {
            let scan = ContinuousScan::new(Arc::clone(&table))
                .with_batch_rows(config.batch_size)
                .with_segment(start, end);
            let (wtx, wrx) = unbounded();
            worker_txs.push(wtx);
            let ctx = PreprocessorContext {
                stage_tx: stage_tx.clone(),
                distributor_tx: dist_tx.clone(),
                in_flight: Arc::clone(&in_flight),
                pool: BatchPool::new(8, true),
                slot_count: Arc::new(AtomicUsize::new(0)),
                counters: Arc::clone(&counters),
                worker_counters: Arc::new(ScanWorkerCounters::default()),
                config: config.clone(),
                partition_scheme: None,
                poison: Arc::new(AtomicBool::new(false)),
            };
            let mut worker = Preprocessor::segment_worker(
                scan,
                wrx,
                ctx,
                w,
                inbox_tx.clone(),
                Arc::clone(&stall),
            );
            worker_handles.push(std::thread::spawn(move || worker.run()));
        }
        let mut coordinator = ScanCoordinator::new(
            inbox_rx,
            worker_txs,
            dist_tx.clone(),
            Arc::clone(&in_flight),
            Arc::clone(&counters),
            Arc::clone(&stall),
            config.max_concurrency,
        );
        let coord_handle = std::thread::spawn(move || coordinator.run());

        // Consumer thread: emulates stages + Distributor (decrements in-flight per
        // batch, counts per-bit tuples, checks start-before-data-before-end).
        //
        // The ordering assertions are sound even though data and control ride
        // different channels: a data tuple carrying a bit implies its query-start
        // is already *enqueued* (the coordinator sends it before any worker learns
        // of the query), so draining the control queue on demand must surface it;
        // and a query-end is only enqueued once in-flight hit zero — which, with
        // this consumer being the sole decrementer, means every prior data batch
        // was already consumed, so any data seen after the end tuple was produced
        // after it and cannot carry the ended bit.
        let consumer = {
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || {
                let mut tuples_per_bit = [0u64; 8];
                let mut started = [false; 8];
                let mut ended = [false; 8];
                loop {
                    let drain_control = |started: &mut [bool; 8], ended: &mut [bool; 8]| {
                        while let Ok(msg) = dist_rx.try_recv() {
                            match msg {
                                Message::Control(ControlTuple::QueryStart(rt)) => {
                                    started[rt.id.index()] = true;
                                }
                                Message::Control(ControlTuple::QueryEnd(id)) => {
                                    ended[id.index()] = true;
                                }
                                other => panic!("unexpected control-path message {other:?}"),
                            }
                        }
                    };
                    drain_control(&mut started, &mut ended);
                    while let Ok(Message::Data(batch)) = stage_rx.try_recv() {
                        for t in &batch {
                            for bit in t.bits.iter() {
                                if !started[bit] {
                                    drain_control(&mut started, &mut ended);
                                }
                                assert!(started[bit], "data before query-start for bit {bit}");
                                assert!(!ended[bit], "data after query-end for bit {bit}");
                                tuples_per_bit[bit] += 1;
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                    if ended[0] && ended[1] {
                        return tuples_per_bit;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        };

        // Two queries: one immediately, one mid-scan.
        let (rt0, _r0) = dummy_runtime(0);
        let (ack_tx, ack_rx) = bounded(1);
        inbox_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: rt0,
                fact_predicate: None,
                snapshot: SnapshotId::INITIAL,
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
        ack_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let (rt1, _r1) = dummy_runtime(1);
        let (ack_tx, ack_rx) = bounded(1);
        inbox_tx
            .send(ScanMessage::Command(PreprocessorCommand::Install {
                runtime: rt1,
                fact_predicate: None,
                snapshot: SnapshotId::INITIAL,
                partition: Vec::new(),
                ack: Some(ack_tx),
            }))
            .unwrap();
        ack_rx.recv().unwrap();

        let tuples_per_bit = consumer.join().unwrap();
        assert_eq!(
            tuples_per_bit[0], ROWS as u64,
            "query 0 sees each fact row exactly once across segments"
        );
        assert_eq!(
            tuples_per_bit[1], ROWS as u64,
            "the mid-scan query sees each fact row exactly once across segments"
        );
        assert_eq!(
            in_flight.load(Ordering::Acquire),
            0,
            "quiesced after both queries ended"
        );

        inbox_tx
            .send(ScanMessage::Command(PreprocessorCommand::Shutdown))
            .unwrap();
        coord_handle.join().unwrap();
        for h in worker_handles {
            h.join().unwrap();
        }
    }
}
