//! Query identifiers and their allocation.
//!
//! CJOIN assigns each registered query a small integer id that indexes the query
//! bit-vectors. The paper (§3, Notation) requires ids to be unique among in-flight
//! queries, bounded by the system parameter `maxConc`, and reusable after a query
//! finishes. [`QueryIdAllocator`] implements exactly that: a free-list backed
//! allocator that always hands out the lowest free id (so `maxId(Q)` stays small and
//! bit-vector scans stay short).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A CJOIN-internal query identifier.
///
/// Query ids are dense small integers in `[0, max_concurrency)`; they are *not*
/// stable across the lifetime of a workload, since ids are recycled once a query
/// finalizes (paper §3: "an identifier can be reused after a query finishes").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Returns the id as a bit-vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl From<QueryId> for usize {
    fn from(q: QueryId) -> usize {
        q.index()
    }
}

/// Allocates query ids in `[0, max_concurrency)`, recycling released ids.
///
/// Always returns the smallest free id so that `maxId(Q)` (and therefore the number
/// of bit-vector words that carry live information) grows only with the actual
/// concurrency level.
#[derive(Debug, Clone)]
pub struct QueryIdAllocator {
    max_concurrency: usize,
    /// `used[i]` is true iff id `i` is currently assigned.
    used: Vec<bool>,
    live: usize,
}

impl QueryIdAllocator {
    /// Creates an allocator with the given `maxConc` bound.
    pub fn new(max_concurrency: usize) -> Self {
        Self {
            max_concurrency,
            used: vec![false; max_concurrency],
            live: 0,
        }
    }

    /// The `maxConc` bound this allocator was created with.
    pub fn max_concurrency(&self) -> usize {
        self.max_concurrency
    }

    /// Number of ids currently assigned.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Returns the largest assigned id plus one (the paper's `maxId(Q)`), or 0 when
    /// no query is registered.
    pub fn max_id(&self) -> usize {
        self.used
            .iter()
            .rposition(|&u| u)
            .map(|p| p + 1)
            .unwrap_or(0)
    }

    /// Allocates the lowest free id.
    ///
    /// # Errors
    /// Returns [`Error::TooManyConcurrentQueries`] when all `maxConc` ids are in use.
    pub fn allocate(&mut self) -> Result<QueryId> {
        match self.used.iter().position(|&u| !u) {
            Some(i) => {
                self.used[i] = true;
                self.live += 1;
                Ok(QueryId(i as u32))
            }
            None => Err(Error::TooManyConcurrentQueries {
                max_concurrency: self.max_concurrency,
            }),
        }
    }

    /// Releases an id for reuse.
    ///
    /// # Errors
    /// Returns [`Error::UnknownQuery`] if the id is not currently assigned.
    pub fn release(&mut self, id: QueryId) -> Result<()> {
        let i = id.index();
        if i >= self.max_concurrency || !self.used[i] {
            return Err(Error::UnknownQuery { id: id.0 });
        }
        self.used[i] = false;
        self.live -= 1;
        Ok(())
    }

    /// Returns whether `id` is currently assigned.
    pub fn is_live(&self, id: QueryId) -> bool {
        id.index() < self.max_concurrency && self.used[id.index()]
    }

    /// Iterates over currently assigned ids in ascending order.
    pub fn live_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.used
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| QueryId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_free_id() {
        let mut a = QueryIdAllocator::new(4);
        assert_eq!(a.allocate().unwrap(), QueryId(0));
        assert_eq!(a.allocate().unwrap(), QueryId(1));
        assert_eq!(a.allocate().unwrap(), QueryId(2));
        a.release(QueryId(1)).unwrap();
        // Lowest free id (1) is reused before 3.
        assert_eq!(a.allocate().unwrap(), QueryId(1));
        assert_eq!(a.allocate().unwrap(), QueryId(3));
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut a = QueryIdAllocator::new(2);
        a.allocate().unwrap();
        a.allocate().unwrap();
        let err = a.allocate().unwrap_err();
        assert!(matches!(
            err,
            Error::TooManyConcurrentQueries { max_concurrency: 2 }
        ));
    }

    #[test]
    fn release_unknown_id_is_an_error() {
        let mut a = QueryIdAllocator::new(2);
        assert!(a.release(QueryId(0)).is_err());
        assert!(a.release(QueryId(5)).is_err());
        let id = a.allocate().unwrap();
        a.release(id).unwrap();
        assert!(a.release(id).is_err(), "double release rejected");
    }

    #[test]
    fn max_id_tracks_highest_live_id() {
        let mut a = QueryIdAllocator::new(8);
        assert_eq!(a.max_id(), 0);
        let q0 = a.allocate().unwrap();
        let _q1 = a.allocate().unwrap();
        let q2 = a.allocate().unwrap();
        assert_eq!(a.max_id(), 3);
        a.release(q2).unwrap();
        assert_eq!(a.max_id(), 2);
        a.release(q0).unwrap();
        assert_eq!(a.max_id(), 2, "q1 still holds id 1");
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn live_ids_iterates_in_order() {
        let mut a = QueryIdAllocator::new(8);
        let ids: Vec<_> = (0..4).map(|_| a.allocate().unwrap()).collect();
        a.release(ids[2]).unwrap();
        let live: Vec<_> = a.live_ids().collect();
        assert_eq!(live, vec![QueryId(0), QueryId(1), QueryId(3)]);
        assert!(a.is_live(QueryId(0)));
        assert!(!a.is_live(QueryId(2)));
        assert!(!a.is_live(QueryId(100)));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", QueryId(7)), "Q7");
        assert_eq!(format!("{:?}", QueryId(7)), "Q7");
        assert_eq!(usize::from(QueryId(7)), 7);
    }
}
