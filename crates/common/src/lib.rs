//! Shared utilities for the CJOIN reproduction.
//!
//! This crate hosts the small, dependency-free building blocks used by every other
//! crate in the workspace:
//!
//! * [`QuerySet`] — the fixed-capacity query bit-vector that CJOIN attaches to fact
//!   tuples and dimension hash-table entries (the `bτ` / `bδ` / `bDj` vectors of the
//!   paper, §3.1–§3.2).
//! * [`FxHasher`]/[`FxHashMap`] — a fast, non-cryptographic hasher in the style of
//!   `rustc-hash`, used for the dimension hash tables where SipHash would dominate the
//!   probe cost.
//! * [`QueryId`] and id-allocation helpers — CJOIN assigns each in-flight query a small
//!   integer identifier in `[0, max_concurrency)` that indexes the bit-vectors.
//! * [`Error`] — the workspace-wide error type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitvec;
pub mod error;
pub mod hash;
pub mod ids;

pub use bitvec::{AtomicQuerySet, QuerySet};
pub use error::{Error, Result};
pub use hash::{fx_hash_u64, splitmix64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{QueryId, QueryIdAllocator};
