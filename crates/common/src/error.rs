//! Workspace-wide error type.

use std::fmt;

/// Convenience alias for results carrying [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the CJOIN reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The system-wide `maxConc` limit on concurrent queries was reached.
    TooManyConcurrentQueries {
        /// The configured limit.
        max_concurrency: usize,
    },
    /// A query id was used that is not currently registered.
    UnknownQuery {
        /// The offending id.
        id: u32,
    },
    /// A referenced table does not exist in the catalog.
    UnknownTable {
        /// The table name.
        name: String,
    },
    /// A referenced column does not exist in a table's schema.
    UnknownColumn {
        /// The table name.
        table: String,
        /// The column name.
        column: String,
    },
    /// A value had an unexpected type for the operation performed on it.
    TypeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The pipeline was asked to do something in a state that does not allow it
    /// (e.g. registering a query after shutdown).
    InvalidState {
        /// Human-readable description.
        detail: String,
    },
    /// A configuration value was out of range or inconsistent.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooManyConcurrentQueries { max_concurrency } => write!(
                f,
                "too many concurrent queries: the maxConc limit of {max_concurrency} is reached"
            ),
            Error::UnknownQuery { id } => write!(f, "unknown query id Q{id}"),
            Error::UnknownTable { name } => write!(f, "unknown table '{name}'"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            Error::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
            Error::InvalidState { detail } => write!(f, "invalid state: {detail}"),
            Error::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an [`Error::InvalidState`] from anything displayable.
    pub fn invalid_state(detail: impl fmt::Display) -> Self {
        Error::InvalidState {
            detail: detail.to_string(),
        }
    }

    /// Builds an [`Error::InvalidConfig`] from anything displayable.
    pub fn invalid_config(detail: impl fmt::Display) -> Self {
        Error::InvalidConfig {
            detail: detail.to_string(),
        }
    }

    /// Builds an [`Error::TypeMismatch`] from anything displayable.
    pub fn type_mismatch(detail: impl fmt::Display) -> Self {
        Error::TypeMismatch {
            detail: detail.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::TooManyConcurrentQueries {
            max_concurrency: 256,
        };
        assert!(e.to_string().contains("256"));
        let e = Error::UnknownQuery { id: 9 };
        assert!(e.to_string().contains("Q9"));
        let e = Error::UnknownTable {
            name: "part".into(),
        };
        assert!(e.to_string().contains("part"));
        let e = Error::UnknownColumn {
            table: "customer".into(),
            column: "c_region".into(),
        };
        assert!(e.to_string().contains("c_region") && e.to_string().contains("customer"));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(
            Error::invalid_state("x"),
            Error::InvalidState { .. }
        ));
        assert!(matches!(
            Error::invalid_config("x"),
            Error::InvalidConfig { .. }
        ));
        assert!(matches!(
            Error::type_mismatch("x"),
            Error::TypeMismatch { .. }
        ));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::UnknownQuery { id: 1 });
    }
}
