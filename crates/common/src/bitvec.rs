//! Query bit-vectors.
//!
//! CJOIN tags every in-flight fact tuple with a bit-vector `bτ` of length
//! `maxId(Q)` (bounded by the system-wide `maxConc` parameter) and every stored
//! dimension tuple with a bit-vector `bδ`. Bit `i` answers "is this tuple still
//! relevant to query `Qi`?". Filtering a fact tuple against *all* concurrent
//! queries is then a single hash probe followed by a word-wise `AND` of the two
//! vectors (paper §3.2.2).
//!
//! Two variants are provided:
//!
//! * [`QuerySet`] — a plain, owned bit-vector used for fact tuples flowing through
//!   the pipeline (each tuple is owned by exactly one thread at a time).
//! * [`AtomicQuerySet`] — an atomically updatable bit-vector used for the entries of
//!   the shared dimension hash tables, which the Pipeline Manager mutates (query
//!   admission / finalization, Algorithms 1 and 2) concurrently with Filter probes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

#[inline]
fn word_count(capacity: usize) -> usize {
    capacity.div_ceil(WORD_BITS)
}

#[inline]
fn word_and_mask(bit: usize) -> (usize, u64) {
    (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
}

/// A fixed-capacity bit-vector indexed by query id.
///
/// The capacity corresponds to the paper's `maxConc` bound on the number of
/// concurrently registered queries; bit `i` corresponds to query id `i`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySet {
    words: Vec<u64>,
    capacity: usize,
}

impl QuerySet {
    /// Creates an empty (all-zero) bit-vector able to hold `capacity` query ids.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; word_count(capacity)],
            capacity,
        }
    }

    /// Creates a bit-vector with every bit in `[0, capacity)` set.
    pub fn all_set(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Creates a bit-vector from an iterator of set bit positions.
    ///
    /// # Panics
    /// Panics if any position is `>= capacity`.
    pub fn from_bits<I: IntoIterator<Item = usize>>(capacity: usize, bits: I) -> Self {
        let mut s = Self::new(capacity);
        for b in bits {
            s.set(b);
        }
        s
    }

    /// The maximum number of distinct query ids this vector can represent.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "query id {i} out of capacity {}",
            self.capacity
        );
        let (w, m) = word_and_mask(i);
        self.words[w] |= m;
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "query id {i} out of capacity {}",
            self.capacity
        );
        let (w, m) = word_and_mask(i);
        self.words[w] &= !m;
    }

    /// Returns whether bit `i` is set. Out-of-range bits read as `false`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, m) = word_and_mask(i);
        self.words[w] & m != 0
    }

    /// Returns `true` if no bit is set.
    ///
    /// This is the pipeline's "drop the tuple" test: a fact tuple whose bit-vector
    /// becomes zero is irrelevant to every registered query.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place bitwise AND with `other` (the Filter's combining step).
    ///
    /// # Panics
    /// Panics if capacities differ.
    #[inline]
    pub fn and_assign(&mut self, other: &QuerySet) {
        assert_eq!(self.capacity, other.capacity, "QuerySet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place bitwise OR with `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    #[inline]
    pub fn or_assign(&mut self, other: &QuerySet) {
        assert_eq!(self.capacity, other.capacity, "QuerySet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place `self &= !other` (bit-clear).
    ///
    /// # Panics
    /// Panics if capacities differ.
    #[inline]
    pub fn and_not_assign(&mut self, other: &QuerySet) {
        assert_eq!(self.capacity, other.capacity, "QuerySet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Returns `true` iff `self AND !other` has no set bit, i.e. every bit set in
    /// `self` is also set in `other`.
    ///
    /// This implements the Filter early-skip optimisation of §3.2.2: if
    /// `bτ AND ¬bDj == 0` the probe of `HDj` can be skipped entirely because every
    /// query the tuple is still relevant to does not reference dimension `Dj`.
    #[inline]
    pub fn is_subset_of(&self, other: &QuerySet) -> bool {
        assert_eq!(self.capacity, other.capacity, "QuerySet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if `self` and `other` share at least one set bit.
    #[inline]
    pub fn intersects(&self, other: &QuerySet) -> bool {
        assert_eq!(self.capacity, other.capacity, "QuerySet capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Clears all bits.
    #[inline]
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Copies the contents of `other` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics if capacities differ.
    #[inline]
    pub fn copy_from(&mut self, other: &QuerySet) {
        assert_eq!(self.capacity, other.capacity, "QuerySet capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// Returns the underlying words (least-significant word first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Zeroes any bits at positions `>= capacity` (needed after whole-word fills).
    fn clear_tail(&mut self) {
        let rem = self.capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for QuerySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QuerySet{{cap={}, bits=[", self.capacity)?;
        let mut first = true;
        for b in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
            first = false;
        }
        write!(f, "]}}")
    }
}

/// An atomically updatable query bit-vector.
///
/// Dimension hash-table entries are shared between the Pipeline Manager thread
/// (which flips bits during query admission/finalization) and the Filter worker
/// threads (which read whole vectors during probes). The paper argues (§3.3.1) that
/// these concurrent updates are safe because fact tuples only carry a set bit for a
/// query after the query has been installed in the Preprocessor; the relaxed
/// orderings used here mirror that argument.
#[derive(Debug)]
pub struct AtomicQuerySet {
    words: Vec<AtomicU64>,
    capacity: usize,
}

impl AtomicQuerySet {
    /// Creates an empty atomic bit-vector with the given query-id capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: (0..word_count(capacity))
                .map(|_| AtomicU64::new(0))
                .collect(),
            capacity,
        }
    }

    /// Creates an atomic bit-vector initialised from a plain [`QuerySet`].
    pub fn from_query_set(qs: &QuerySet) -> Self {
        Self {
            words: qs.words().iter().map(|&w| AtomicU64::new(w)).collect(),
            capacity: qs.capacity(),
        }
    }

    /// The maximum number of distinct query ids this vector can represent.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Atomically sets bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        assert!(
            i < self.capacity,
            "query id {i} out of capacity {}",
            self.capacity
        );
        let (w, m) = word_and_mask(i);
        self.words[w].fetch_or(m, Ordering::Release);
    }

    /// Atomically clears bit `i`.
    #[inline]
    pub fn unset(&self, i: usize) {
        assert!(
            i < self.capacity,
            "query id {i} out of capacity {}",
            self.capacity
        );
        let (w, m) = word_and_mask(i);
        self.words[w].fetch_and(!m, Ordering::Release);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, m) = word_and_mask(i);
        self.words[w].load(Ordering::Acquire) & m != 0
    }

    /// Returns `true` if no bit is set (a dimension entry selected by no live query,
    /// eligible for garbage collection per Algorithm 2).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| w.load(Ordering::Acquire) == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Takes a point-in-time snapshot as a plain [`QuerySet`].
    pub fn snapshot(&self) -> QuerySet {
        let mut qs = QuerySet::new(self.capacity);
        for (dst, src) in qs.words.iter_mut().zip(&self.words) {
            *dst = src.load(Ordering::Acquire);
        }
        qs
    }

    /// ANDs this vector into `target` (`target &= self`) without materialising a
    /// snapshot; used on the Filter probe hot path.
    #[inline]
    pub fn and_into(&self, target: &mut QuerySet) {
        assert_eq!(self.capacity, target.capacity, "QuerySet capacity mismatch");
        for (t, s) in target.words.iter_mut().zip(&self.words) {
            *t &= s.load(Ordering::Acquire);
        }
    }

    /// ANDs this vector into `target` and reports whether `target` became (or
    /// already was) empty, in a single pass over the words. This fuses the Filter's
    /// combining step with its "drop the tuple" test so the batched hot path loads
    /// each atomic word exactly once per tuple.
    #[inline]
    pub fn and_into_with_zero_check(&self, target: &mut QuerySet) -> bool {
        assert_eq!(self.capacity, target.capacity, "QuerySet capacity mismatch");
        let mut any = 0u64;
        for (t, s) in target.words.iter_mut().zip(&self.words) {
            *t &= s.load(Ordering::Acquire);
            any |= *t;
        }
        any == 0
    }

    /// Copies the atomic contents into `target`, overwriting it.
    #[inline]
    pub fn load_into(&self, target: &mut QuerySet) {
        assert_eq!(self.capacity, target.capacity, "QuerySet capacity mismatch");
        for (t, s) in target.words.iter_mut().zip(&self.words) {
            *t = s.load(Ordering::Acquire);
        }
    }

    /// Returns `true` iff every bit set in `other` is also set in this vector, i.e.
    /// `other AND NOT self == 0`, without materialising a snapshot.
    ///
    /// This is the Filter early-skip test of §3.2.2 (`bτ AND ¬bDj == 0`) on the hot
    /// path, where allocating a snapshot per fact tuple would dominate the saving.
    #[inline]
    pub fn contains_all(&self, other: &QuerySet) -> bool {
        assert_eq!(
            self.capacity,
            other.capacity(),
            "QuerySet capacity mismatch"
        );
        self.words
            .iter()
            .zip(other.words())
            .all(|(s, o)| o & !s.load(Ordering::Acquire) == 0)
    }

    /// Overwrites the atomic contents from a plain [`QuerySet`].
    pub fn store_from(&self, source: &QuerySet) {
        assert_eq!(self.capacity, source.capacity, "QuerySet capacity mismatch");
        for (dst, src) in self.words.iter().zip(source.words()) {
            dst.store(*src, Ordering::Release);
        }
    }
}

impl Clone for AtomicQuerySet {
    fn clone(&self) -> Self {
        Self::from_query_set(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let qs = QuerySet::new(100);
        assert!(qs.is_empty());
        assert_eq!(qs.count(), 0);
        assert_eq!(qs.capacity(), 100);
        for i in 0..100 {
            assert!(!qs.get(i));
        }
    }

    #[test]
    fn set_get_unset_roundtrip() {
        let mut qs = QuerySet::new(130);
        qs.set(0);
        qs.set(63);
        qs.set(64);
        qs.set(129);
        assert!(qs.get(0) && qs.get(63) && qs.get(64) && qs.get(129));
        assert!(!qs.get(1) && !qs.get(65) && !qs.get(128));
        assert_eq!(qs.count(), 4);
        qs.unset(63);
        assert!(!qs.get(63));
        assert_eq!(qs.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn set_out_of_range_panics() {
        let mut qs = QuerySet::new(10);
        qs.set(10);
    }

    #[test]
    fn get_out_of_range_is_false() {
        let qs = QuerySet::all_set(10);
        assert!(!qs.get(10));
        assert!(!qs.get(1000));
    }

    #[test]
    fn all_set_respects_capacity() {
        let qs = QuerySet::all_set(70);
        assert_eq!(qs.count(), 70);
        assert!(qs.get(69));
        assert!(!qs.get(70));
        // Tail bits beyond capacity must be zero so count() stays exact.
        assert_eq!(qs.words()[1].count_ones(), 6);
    }

    #[test]
    fn and_assign_intersects() {
        let mut a = QuerySet::from_bits(128, [1, 5, 64, 100]);
        let b = QuerySet::from_bits(128, [5, 64, 101]);
        a.and_assign(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 64]);
    }

    #[test]
    fn or_assign_unions() {
        let mut a = QuerySet::from_bits(128, [1, 100]);
        let b = QuerySet::from_bits(128, [2, 100, 127]);
        a.or_assign(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 100, 127]);
    }

    #[test]
    fn and_not_assign_clears() {
        let mut a = QuerySet::from_bits(64, [1, 2, 3]);
        let b = QuerySet::from_bits(64, [2]);
        a.and_not_assign(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn subset_and_intersects() {
        let a = QuerySet::from_bits(128, [3, 70]);
        let b = QuerySet::from_bits(128, [3, 70, 90]);
        let c = QuerySet::from_bits(128, [4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Empty set is a subset of everything and intersects nothing.
        let empty = QuerySet::new(128);
        assert!(empty.is_subset_of(&a));
        assert!(!empty.intersects(&a));
    }

    #[test]
    fn iter_yields_sorted_positions() {
        let qs = QuerySet::from_bits(256, [200, 0, 63, 64, 128]);
        assert_eq!(qs.iter().collect::<Vec<_>>(), vec![0, 63, 64, 128, 200]);
    }

    #[test]
    fn copy_from_and_clear() {
        let a = QuerySet::from_bits(64, [7, 8]);
        let mut b = QuerySet::new(64);
        b.copy_from(&a);
        assert_eq!(a, b);
        b.clear();
        assert!(b.is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn atomic_and_into_with_zero_check_matches_two_pass_result() {
        let a = AtomicQuerySet::new(128);
        a.set(3);
        a.set(64);
        let mut target = QuerySet::from_bits(128, [3, 5, 64, 127]);
        assert!(!a.and_into_with_zero_check(&mut target));
        assert_eq!(target.iter().collect::<Vec<_>>(), vec![3, 64]);
        let mut disjoint = QuerySet::from_bits(128, [5, 127]);
        assert!(a.and_into_with_zero_check(&mut disjoint));
        assert!(disjoint.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn and_assign_capacity_mismatch_panics() {
        let mut a = QuerySet::new(64);
        let b = QuerySet::new(128);
        a.and_assign(&b);
    }

    #[test]
    fn atomic_set_unset_get() {
        let a = AtomicQuerySet::new(200);
        a.set(0);
        a.set(199);
        assert!(a.get(0) && a.get(199));
        assert!(!a.get(100));
        assert_eq!(a.count(), 2);
        a.unset(0);
        assert!(!a.get(0));
        assert!(!a.is_empty());
        a.unset(199);
        assert!(a.is_empty());
    }

    #[test]
    fn atomic_snapshot_and_and_into() {
        let a = AtomicQuerySet::new(128);
        a.set(3);
        a.set(64);
        let snap = a.snapshot();
        assert_eq!(snap.iter().collect::<Vec<_>>(), vec![3, 64]);

        let mut target = QuerySet::from_bits(128, [3, 5, 64, 127]);
        a.and_into(&mut target);
        assert_eq!(target.iter().collect::<Vec<_>>(), vec![3, 64]);
    }

    #[test]
    fn atomic_contains_all_is_allocation_free_subset_test() {
        let complement = AtomicQuerySet::new(128);
        complement.set(1);
        complement.set(64);
        assert!(complement.contains_all(&QuerySet::from_bits(128, [1])));
        assert!(complement.contains_all(&QuerySet::from_bits(128, [1, 64])));
        assert!(
            complement.contains_all(&QuerySet::new(128)),
            "empty set always contained"
        );
        assert!(!complement.contains_all(&QuerySet::from_bits(128, [2])));
        assert!(!complement.contains_all(&QuerySet::from_bits(128, [1, 2])));
    }

    #[test]
    fn atomic_store_load_roundtrip() {
        let src = QuerySet::from_bits(100, [1, 50, 99]);
        let a = AtomicQuerySet::new(100);
        a.store_from(&src);
        let mut out = QuerySet::new(100);
        a.load_into(&mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn atomic_from_query_set_and_clone() {
        let src = QuerySet::from_bits(65, [64]);
        let a = AtomicQuerySet::from_query_set(&src);
        assert!(a.get(64));
        let b = a.clone();
        assert!(b.get(64));
        assert_eq!(b.capacity(), 65);
    }

    #[test]
    fn atomic_concurrent_set_bits() {
        use std::sync::Arc;
        let a = Arc::new(AtomicQuerySet::new(256));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in (t..256).step_by(8) {
                        a.set(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.count(), 256);
    }

    #[test]
    fn debug_format_lists_bits() {
        let qs = QuerySet::from_bits(8, [1, 3]);
        let s = format!("{qs:?}");
        assert!(s.contains("1,3"), "{s}");
    }
}
