//! Randomized property test: the eager-aggregation decomposition of a galaxy query
//! (two star sub-queries partially aggregated by pivot key, joined by the merge
//! operator) is answer-preserving for randomly generated schemas, data and queries.
//!
//! The star sub-queries are evaluated with the star reference evaluator (no threads),
//! so the property isolates the rewrite + merge logic; the executor integration tests
//! cover the same equivalence through the live CJOIN pipelines.
//!
//! Cases are generated from a fixed-seed [`StdRng`], so every run explores the same
//! input space deterministically; failures report the case index and query shape.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cjoin_galaxy::{merge_results, reference, GalaxyAggregateSpec, GalaxyQuery, Side, SideSpec};
use cjoin_query::{AggFunc, ColumnRef, Predicate};
use cjoin_storage::{Catalog, Column, Row, Schema, SnapshotId, Table, Value};

const REGIONS: [&str; 3] = ["ASIA", "EUROPE", "AMERICA"];
const AGG_FUNCS: [AggFunc; 5] = [
    AggFunc::Sum,
    AggFunc::Count,
    AggFunc::Min,
    AggFunc::Max,
    AggFunc::Avg,
];

/// A randomly generated two-fact galaxy instance.
#[derive(Debug, Clone)]
struct GalaxyData {
    /// `(custkey, region index)` pairs.
    customers: Vec<(i64, usize)>,
    /// Fact A rows: `(custkey, amount)`.
    fact_a: Vec<(i64, i64)>,
    /// Fact B rows: `(custkey, weight)`.
    fact_b: Vec<(i64, i64)>,
}

fn random_data(rng: &mut StdRng) -> GalaxyData {
    let customers: Vec<(i64, usize)> = (0..rng.gen_range(1..12usize))
        .map(|k| (k as i64, rng.gen_range(0..3usize)))
        .collect();
    let num_customers = customers.len() as i64;
    // Foreign keys may dangle (reference customers that do not exist) to exercise
    // the inner-join semantics of the dimension probe.
    let fact_rows = |rng: &mut StdRng| -> Vec<(i64, i64)> {
        (0..rng.gen_range(0..40usize))
            .map(|_| {
                (
                    rng.gen_range(0..num_customers + 2),
                    rng.gen_range(-20i64..100),
                )
            })
            .collect()
    };
    let fact_a = fact_rows(rng);
    let fact_b = fact_rows(rng);
    GalaxyData {
        customers,
        fact_a,
        fact_b,
    }
}

/// A randomly shaped galaxy query over the generated schema.
#[derive(Debug, Clone)]
struct QueryShape {
    filter_region_a: Option<usize>,
    amount_threshold: Option<i64>,
    group_by_region: bool,
    aggregates: Vec<(AggFunc, Side)>,
}

fn random_shape(rng: &mut StdRng) -> QueryShape {
    QueryShape {
        filter_region_a: rng.gen_bool(0.5).then(|| rng.gen_range(0..3usize)),
        amount_threshold: rng.gen_bool(0.5).then(|| rng.gen_range(-10i64..60)),
        group_by_region: rng.gen_bool(0.5),
        aggregates: (0..rng.gen_range(1..5usize))
            .map(|_| {
                let func = AGG_FUNCS[rng.gen_range(0..AGG_FUNCS.len())];
                let side = if rng.gen_bool(0.5) { Side::A } else { Side::B };
                (func, side)
            })
            .collect(),
    }
}

fn build_catalog(data: &GalaxyData) -> Arc<Catalog> {
    let catalog = Catalog::new();
    let customer = Table::new(Schema::new(
        "customer",
        vec![Column::int("c_custkey"), Column::str("c_region")],
    ));
    for (key, region) in &data.customers {
        customer
            .insert(
                vec![Value::int(*key), Value::str(REGIONS[*region])],
                SnapshotId::INITIAL,
            )
            .unwrap();
    }
    catalog.add_table(Arc::new(customer));

    let fact_a = Table::new(Schema::new(
        "purchases",
        vec![Column::int("p_custkey"), Column::int("p_amount")],
    ));
    fact_a.insert_batch_unchecked(
        data.fact_a
            .iter()
            .map(|(k, v)| Row::new(vec![Value::int(*k), Value::int(*v)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(fact_a));

    let fact_b = Table::new(Schema::new(
        "shipments",
        vec![Column::int("s_custkey"), Column::int("s_weight")],
    ));
    fact_b.insert_batch_unchecked(
        data.fact_b
            .iter()
            .map(|(k, v)| Row::new(vec![Value::int(*k), Value::int(*v)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(fact_b));
    Arc::new(catalog)
}

fn build_query(shape: &QueryShape) -> GalaxyQuery {
    let mut side_a = SideSpec::new("purchases", "p_custkey").join_dimension(
        "customer",
        "p_custkey",
        "c_custkey",
        match shape.filter_region_a {
            Some(r) => Predicate::eq("c_region", REGIONS[r]),
            None => Predicate::True,
        },
    );
    if let Some(threshold) = shape.amount_threshold {
        side_a = side_a.fact_predicate(Predicate::Compare {
            column: "p_amount".into(),
            op: cjoin_query::CompareOp::Ge,
            value: Value::int(threshold),
        });
    }
    let side_b = SideSpec::new("shipments", "s_custkey");

    let mut builder = GalaxyQuery::builder("prop").side_a(side_a).side_b(side_b);
    if shape.group_by_region {
        builder = builder.group_by(Side::A, ColumnRef::dim("customer", "c_region"));
    }
    for (func, side) in &shape.aggregates {
        let column = match side {
            Side::A => ColumnRef::fact("p_amount"),
            Side::B => ColumnRef::fact("s_weight"),
        };
        builder = builder.aggregate(GalaxyAggregateSpec::over(*func, *side, column));
    }
    // Always include COUNT(*) so even aggregate-only shapes have a stable anchor.
    builder.aggregate(GalaxyAggregateSpec::count_star()).build()
}

/// Builds a catalog view designating `fact` as the fact table (shares all `Arc`s).
fn view_with_fact(source: &Arc<Catalog>, fact: &str) -> Catalog {
    let view = Catalog::new();
    for name in source.table_names() {
        if name == fact {
            view.add_fact_table(source.table(&name).unwrap());
        } else {
            view.add_table(source.table(&name).unwrap());
        }
    }
    view
}

#[test]
fn decomposition_plus_merge_matches_the_oracle() {
    let mut rng = StdRng::seed_from_u64(0x6A1A);
    for case in 0..64 {
        let data = random_data(&mut rng);
        let shape = random_shape(&mut rng);
        let catalog = build_catalog(&data);
        let query = build_query(&shape);

        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

        let decomposed = query.decompose().unwrap();
        let partial_a = cjoin_query::reference::evaluate(
            &view_with_fact(&catalog, "purchases"),
            &decomposed.star_a,
            SnapshotId::INITIAL,
        )
        .unwrap();
        let partial_b = cjoin_query::reference::evaluate(
            &view_with_fact(&catalog, "shipments"),
            &decomposed.star_b,
            SnapshotId::INITIAL,
        )
        .unwrap();
        let merged = merge_results(&partial_a, &partial_b, &decomposed.plan);

        assert!(
            merged.approx_eq(&expected),
            "case {case}: query {:?}\nmerged:\n{}\nexpected:\n{}\ndiff: {:?}",
            shape,
            merged,
            expected,
            merged.diff(&expected)
        );
    }
}
