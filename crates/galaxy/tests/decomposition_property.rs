//! Property test: the eager-aggregation decomposition of a galaxy query (two star
//! sub-queries partially aggregated by pivot key, joined by the merge operator) is
//! answer-preserving for randomly generated schemas, data and queries.
//!
//! The star sub-queries are evaluated with the star reference evaluator (no threads),
//! so the property isolates the rewrite + merge logic; the executor integration tests
//! cover the same equivalence through the live CJOIN pipelines.

use std::sync::Arc;

use proptest::prelude::*;

use cjoin_galaxy::{merge_results, reference, GalaxyAggregateSpec, GalaxyQuery, Side, SideSpec};
use cjoin_query::{AggFunc, ColumnRef, Predicate};
use cjoin_storage::{Catalog, Column, Row, Schema, SnapshotId, Table, Value};

const REGIONS: [&str; 3] = ["ASIA", "EUROPE", "AMERICA"];

/// A randomly generated two-fact galaxy instance.
#[derive(Debug, Clone)]
struct GalaxyData {
    /// `(custkey, region index)` pairs.
    customers: Vec<(i64, usize)>,
    /// Fact A rows: `(custkey, amount)`.
    fact_a: Vec<(i64, i64)>,
    /// Fact B rows: `(custkey, weight)`.
    fact_b: Vec<(i64, i64)>,
}

fn data_strategy() -> impl Strategy<Value = GalaxyData> {
    let customers = proptest::collection::vec(0..3usize, 1..12).prop_map(|regions| {
        regions
            .into_iter()
            .enumerate()
            .map(|(k, r)| (k as i64, r))
            .collect::<Vec<_>>()
    });
    customers.prop_flat_map(|customers| {
        let num_customers = customers.len() as i64;
        // Foreign keys may dangle (reference customers that do not exist) to exercise
        // the inner-join semantics of the dimension probe.
        let fact_row = (0..num_customers + 2, -20i64..100);
        let fact_a = proptest::collection::vec(fact_row.clone(), 0..40);
        let fact_b = proptest::collection::vec(fact_row, 0..40);
        (Just(customers), fact_a, fact_b).prop_map(|(customers, fact_a, fact_b)| GalaxyData {
            customers,
            fact_a,
            fact_b,
        })
    })
}

/// A randomly shaped galaxy query over the generated schema.
#[derive(Debug, Clone)]
struct QueryShape {
    filter_region_a: Option<usize>,
    amount_threshold: Option<i64>,
    group_by_region: bool,
    aggregates: Vec<(AggFunc, Side)>,
}

fn query_strategy() -> impl Strategy<Value = QueryShape> {
    let agg = (
        prop_oneof![
            Just(AggFunc::Sum),
            Just(AggFunc::Count),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
            Just(AggFunc::Avg),
        ],
        prop_oneof![Just(Side::A), Just(Side::B)],
    );
    (
        proptest::option::of(0..3usize),
        proptest::option::of(-10i64..60),
        any::<bool>(),
        proptest::collection::vec(agg, 1..5),
    )
        .prop_map(|(filter_region_a, amount_threshold, group_by_region, aggregates)| QueryShape {
            filter_region_a,
            amount_threshold,
            group_by_region,
            aggregates,
        })
}

fn build_catalog(data: &GalaxyData) -> Arc<Catalog> {
    let catalog = Catalog::new();
    let customer = Table::new(Schema::new(
        "customer",
        vec![Column::int("c_custkey"), Column::str("c_region")],
    ));
    for (key, region) in &data.customers {
        customer
            .insert(vec![Value::int(*key), Value::str(REGIONS[*region])], SnapshotId::INITIAL)
            .unwrap();
    }
    catalog.add_table(Arc::new(customer));

    let fact_a = Table::new(Schema::new(
        "purchases",
        vec![Column::int("p_custkey"), Column::int("p_amount")],
    ));
    fact_a.insert_batch_unchecked(
        data.fact_a.iter().map(|(k, v)| Row::new(vec![Value::int(*k), Value::int(*v)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(fact_a));

    let fact_b = Table::new(Schema::new(
        "shipments",
        vec![Column::int("s_custkey"), Column::int("s_weight")],
    ));
    fact_b.insert_batch_unchecked(
        data.fact_b.iter().map(|(k, v)| Row::new(vec![Value::int(*k), Value::int(*v)])),
        SnapshotId::INITIAL,
    );
    catalog.add_table(Arc::new(fact_b));
    Arc::new(catalog)
}

fn build_query(shape: &QueryShape) -> GalaxyQuery {
    let mut side_a = SideSpec::new("purchases", "p_custkey").join_dimension(
        "customer",
        "p_custkey",
        "c_custkey",
        match shape.filter_region_a {
            Some(r) => Predicate::eq("c_region", REGIONS[r]),
            None => Predicate::True,
        },
    );
    if let Some(threshold) = shape.amount_threshold {
        side_a = side_a.fact_predicate(Predicate::Compare {
            column: "p_amount".into(),
            op: cjoin_query::CompareOp::Ge,
            value: Value::int(threshold),
        });
    }
    let side_b = SideSpec::new("shipments", "s_custkey");

    let mut builder = GalaxyQuery::builder("prop").side_a(side_a).side_b(side_b);
    if shape.group_by_region {
        builder = builder.group_by(Side::A, ColumnRef::dim("customer", "c_region"));
    }
    for (func, side) in &shape.aggregates {
        let column = match side {
            Side::A => ColumnRef::fact("p_amount"),
            Side::B => ColumnRef::fact("s_weight"),
        };
        builder = builder.aggregate(GalaxyAggregateSpec::over(*func, *side, column));
    }
    // Always include COUNT(*) so even aggregate-only shapes have a stable anchor.
    builder.aggregate(GalaxyAggregateSpec::count_star()).build()
}

/// Builds a catalog view designating `fact` as the fact table (shares all `Arc`s).
fn view_with_fact(source: &Arc<Catalog>, fact: &str) -> Catalog {
    let view = Catalog::new();
    for name in source.table_names() {
        if name == fact {
            view.add_fact_table(source.table(&name).unwrap());
        } else {
            view.add_table(source.table(&name).unwrap());
        }
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decomposition_plus_merge_matches_the_oracle(
        data in data_strategy(),
        shape in query_strategy(),
    ) {
        let catalog = build_catalog(&data);
        let query = build_query(&shape);

        let expected = reference::evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

        let decomposed = query.decompose().unwrap();
        let partial_a = cjoin_query::reference::evaluate(
            &view_with_fact(&catalog, "purchases"),
            &decomposed.star_a,
            SnapshotId::INITIAL,
        )
        .unwrap();
        let partial_b = cjoin_query::reference::evaluate(
            &view_with_fact(&catalog, "shipments"),
            &decomposed.star_b,
            SnapshotId::INITIAL,
        )
        .unwrap();
        let merged = merge_results(&partial_a, &partial_b, &decomposed.plan);

        prop_assert!(
            merged.approx_eq(&expected),
            "query {:?}\nmerged:\n{}\nexpected:\n{}\ndiff: {:?}",
            shape,
            merged,
            expected,
            merged.diff(&expected)
        );
    }
}
