//! Galaxy-schema queries over CJOIN operators.
//!
//! §5 of the paper ("Galaxy Schemata") describes warehouses with several fact tables,
//! each the centre of its own star, where queries commonly join two fact tables. The
//! proposed evaluation strategy is to use the fact-to-fact join as a pivot: the query
//! is decomposed into two *star sub-queries*, one per fact table, each of which is
//! registered with the CJOIN operator that serves that fact table; the Distributor
//! then pipes the star results into a fact-to-fact join operator instead of a plain
//! aggregation operator.
//!
//! This crate implements exactly that plan shape:
//!
//! * [`GalaxyQuery`] — a two-sided query: each [`SideSpec`] is a star sub-query (fact
//!   table, dimension joins, predicates) plus the foreign-key column used as the
//!   fact-to-fact pivot; group-by columns and aggregates reference one side each.
//! * [`GalaxyQuery::decompose`] — rewrites the query into two [`StarQuery`]s whose
//!   per-group output is *partially aggregated by pivot key* (sum/count/min/max per
//!   pivot value plus the group's row multiplicity) together with a [`MergePlan`].
//! * [`GalaxyEngine`] — owns one [`CjoinEngine`] per fact table, registers the two
//!   star sub-queries concurrently (they share those engines' always-on pipelines
//!   with every other in-flight star query) and runs the fact-to-fact join operator
//!   ([`merge::merge_results`]) over their outputs.
//! * [`reference`] — an independent nested-loop/hash-join oracle used by the tests to
//!   check that the decomposition is answer-preserving.
//!
//! The partial-aggregation-through-the-join rewrite is the standard "eager group-by"
//! transformation: because every aggregate in the supported query class is
//! decomposable (SUM/COUNT scale with the other side's multiplicity, MIN/MAX are
//! join-invariant, AVG is a SUM/COUNT pair), joining the per-pivot-key partial states
//! yields exactly the aggregates of the row-level join.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod merge;
pub mod query;
pub mod reference;

pub use executor::{split_catalog, GalaxyEngine, GalaxyHandle};
pub use merge::{merge_results, MergePlan};
pub use query::{
    DecomposedGalaxy, GalaxyAggregateSpec, GalaxyColumnRef, GalaxyQuery, GalaxyQueryBuilder, Side,
    SideSpec,
};
