//! Reference oracle for galaxy queries.
//!
//! Evaluates a [`GalaxyQuery`] the slow, obviously-correct way: materialise the
//! qualifying rows of each star side (fact row + joined dimension rows), hash-join
//! them on the pivot key, and aggregate over the joined row pairs. The executor tests
//! and the integration suite compare [`crate::GalaxyEngine`]'s partial-aggregation
//! plan against this oracle.

use cjoin_common::{Error, FxHashMap, Result};
use cjoin_query::{AggFunc, AggValue, QueryResult};
use cjoin_storage::{Catalog, Row, SnapshotId, Value};

use crate::query::{GalaxyColumnRef, GalaxyQuery, Side, SideSpec};

/// Where a referenced column reads from within one side's materialised record.
#[derive(Debug, Clone, Copy)]
enum ResolvedSource {
    Fact(usize),
    Dimension { clause: usize, column: usize },
}

/// One qualifying fact row of a side, with its joined dimension rows.
#[derive(Debug, Clone)]
struct SideRecord {
    pivot: i64,
    fact: Row,
    dims: Vec<Row>,
}

impl SideRecord {
    fn value(&self, source: ResolvedSource) -> &Value {
        match source {
            ResolvedSource::Fact(idx) => self.fact.get(idx),
            ResolvedSource::Dimension { clause, column } => self.dims[clause].get(column),
        }
    }
}

/// Resolves a galaxy column reference against its side's schemas.
fn resolve(
    catalog: &Catalog,
    side_spec: &SideSpec,
    column: &GalaxyColumnRef,
) -> Result<ResolvedSource> {
    let fact = catalog.table(&side_spec.fact_table)?;
    match &column.column.table {
        cjoin_query::TableRef::Fact => Ok(ResolvedSource::Fact(
            fact.schema().column_index(&column.column.column)?,
        )),
        cjoin_query::TableRef::Dimension(table) => {
            let clause = side_spec
                .dimensions
                .iter()
                .position(|(t, _, _, _)| t == table)
                .ok_or_else(|| {
                    Error::invalid_state(format!(
                        "column {} references dimension '{}' not joined by side {}",
                        column.display(),
                        table,
                        column.side.label()
                    ))
                })?;
            let dim = catalog.table(table)?;
            Ok(ResolvedSource::Dimension {
                clause,
                column: dim.schema().column_index(&column.column.column)?,
            })
        }
    }
}

/// Materialises the qualifying records of one star side at `snapshot`.
fn materialise_side(
    catalog: &Catalog,
    spec: &SideSpec,
    snapshot: SnapshotId,
) -> Result<Vec<SideRecord>> {
    let fact = catalog.table(&spec.fact_table)?;
    let fact_schema = fact.schema();
    let fact_predicate = spec.fact_predicate.bind(fact_schema)?;
    let pivot_column = fact_schema.column_index(&spec.pivot_column)?;

    // Per dimension clause: FK column index on the fact table plus a key -> row map of
    // the dimension rows that satisfy the clause's predicate.
    let mut dim_lookups: Vec<(usize, FxHashMap<i64, Row>)> =
        Vec::with_capacity(spec.dimensions.len());
    for (table, fk, key, predicate) in &spec.dimensions {
        let dim = catalog.table(table)?;
        let dim_schema = dim.schema();
        let bound = predicate.bind(dim_schema)?;
        let key_column = dim_schema.column_index(key)?;
        let mut lookup = FxHashMap::default();
        dim.for_each_visible(snapshot, |_, row| {
            if bound.eval(row) {
                if let Ok(k) = row.get(key_column).as_int() {
                    lookup.insert(k, row.clone());
                }
            }
        });
        dim_lookups.push((fact_schema.column_index(fk)?, lookup));
    }

    let mut records = Vec::new();
    fact.for_each_visible(snapshot, |_, row| {
        if !fact_predicate.eval(row) {
            return;
        }
        let Ok(pivot) = row.get(pivot_column).as_int() else {
            return; // NULL pivot keys never join.
        };
        let mut dims = Vec::with_capacity(dim_lookups.len());
        for (fk_column, lookup) in &dim_lookups {
            let Ok(fk) = row.get(*fk_column).as_int() else {
                return;
            };
            match lookup.get(&fk) {
                Some(dim_row) => dims.push(dim_row.clone()),
                None => return, // dimension predicate filters this fact row out
            }
        }
        records.push(SideRecord {
            pivot,
            fact: row.clone(),
            dims,
        });
    });
    Ok(records)
}

/// Running state of one output aggregate in the oracle.
#[derive(Debug, Clone)]
enum RefAgg {
    Count(i128),
    Sum {
        sum: i128,
        seen: bool,
    },
    Extreme {
        current: Option<Value>,
        is_min: bool,
    },
    Avg {
        sum: i128,
        count: i128,
    },
}

impl RefAgg {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => RefAgg::Count(0),
            AggFunc::Sum => RefAgg::Sum {
                sum: 0,
                seen: false,
            },
            AggFunc::Min => RefAgg::Extreme {
                current: None,
                is_min: true,
            },
            AggFunc::Max => RefAgg::Extreme {
                current: None,
                is_min: false,
            },
            AggFunc::Avg => RefAgg::Avg { sum: 0, count: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>) {
        match self {
            RefAgg::Count(c) => match value {
                None => *c += 1,
                Some(v) if !v.is_null() => *c += 1,
                Some(_) => {}
            },
            RefAgg::Sum { sum, seen } => {
                if let Some(Value::Int(i)) = value {
                    *sum += i128::from(*i);
                    *seen = true;
                }
            }
            RefAgg::Extreme { current, is_min } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace =
                            current.as_ref().is_none_or(
                                |cur| {
                                    if *is_min {
                                        v < cur
                                    } else {
                                        v > cur
                                    }
                                },
                            );
                        if replace {
                            *current = Some(v.clone());
                        }
                    }
                }
            }
            RefAgg::Avg { sum, count } => {
                if let Some(Value::Int(i)) = value {
                    *sum += i128::from(*i);
                    *count += 1;
                }
            }
        }
    }

    fn finalize(&self) -> AggValue {
        match self {
            RefAgg::Count(c) => AggValue::Int(*c),
            RefAgg::Sum { sum, seen } => {
                if *seen {
                    AggValue::Int(*sum)
                } else {
                    AggValue::Null
                }
            }
            RefAgg::Extreme { current, .. } => match current {
                Some(Value::Int(i)) => AggValue::Int(i128::from(*i)),
                Some(Value::Str(s)) => AggValue::Str(s.to_string()),
                Some(Value::Null) | None => AggValue::Null,
            },
            RefAgg::Avg { sum, count } => {
                if *count == 0 {
                    AggValue::Null
                } else {
                    AggValue::Float(*sum as f64 / *count as f64)
                }
            }
        }
    }
}

/// Evaluates `query` at `snapshot` by materialising both star sides and joining them
/// row by row.
///
/// # Errors
/// Fails if a referenced table or column does not exist, or a column references a
/// dimension its side does not join.
pub fn evaluate(
    catalog: &Catalog,
    query: &GalaxyQuery,
    snapshot: SnapshotId,
) -> Result<QueryResult> {
    let snapshot = query.snapshot.unwrap_or(snapshot);

    // Resolve every referenced column up front.
    let group_sources: Vec<(Side, ResolvedSource)> = query
        .group_by
        .iter()
        .map(|col| Ok((col.side, resolve(catalog, query.side(col.side), col)?)))
        .collect::<Result<_>>()?;
    let agg_sources: Vec<Option<(Side, ResolvedSource)>> = query
        .aggregates
        .iter()
        .map(|agg| {
            agg.input
                .as_ref()
                .map(|col| Ok((col.side, resolve(catalog, query.side(col.side), col)?)))
                .transpose()
        })
        .collect::<Result<_>>()?;

    let side_a = materialise_side(catalog, query.side(Side::A), snapshot)?;
    let side_b = materialise_side(catalog, query.side(Side::B), snapshot)?;

    // Hash join on the pivot key.
    let mut b_by_pivot: FxHashMap<i64, Vec<&SideRecord>> = FxHashMap::default();
    for record in &side_b {
        b_by_pivot.entry(record.pivot).or_default().push(record);
    }

    let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<RefAgg>> =
        std::collections::BTreeMap::new();
    for record_a in &side_a {
        let Some(matches) = b_by_pivot.get(&record_a.pivot) else {
            continue;
        };
        for record_b in matches {
            let pick = |side: Side| -> &SideRecord {
                match side {
                    Side::A => record_a,
                    Side::B => record_b,
                }
            };
            let key: Vec<Value> = group_sources
                .iter()
                .map(|(side, source)| pick(*side).value(*source).clone())
                .collect();
            let states = groups.entry(key).or_insert_with(|| {
                query
                    .aggregates
                    .iter()
                    .map(|a| RefAgg::new(a.func))
                    .collect()
            });
            for (state, source) in states.iter_mut().zip(&agg_sources) {
                match source {
                    None => state.update(None),
                    Some((side, resolved)) => state.update(Some(pick(*side).value(*resolved))),
                }
            }
        }
    }

    let mut result = QueryResult::new(
        query
            .group_by
            .iter()
            .map(GalaxyColumnRef::display)
            .collect(),
        query.aggregates.iter().map(|a| a.label()).collect(),
    );
    for (key, states) in groups {
        result.insert(key, states.iter().map(RefAgg::finalize).collect());
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use cjoin_query::{ColumnRef, Predicate};
    use cjoin_storage::{Column, Schema, Table};

    use crate::query::{GalaxyAggregateSpec, SideSpec};

    /// Tiny hand-checkable galaxy: 3 orders, 3 shipments, 2 customers.
    fn tiny_catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        let customer = Table::new(Schema::new(
            "customer",
            vec![Column::int("c_custkey"), Column::str("c_region")],
        ));
        customer
            .insert(vec![Value::int(1), Value::str("ASIA")], SnapshotId::INITIAL)
            .unwrap();
        customer
            .insert(
                vec![Value::int(2), Value::str("EUROPE")],
                SnapshotId::INITIAL,
            )
            .unwrap();
        catalog.add_table(Arc::new(customer));

        let orders = Table::new(Schema::new(
            "orders",
            vec![Column::int("o_custkey"), Column::int("o_amount")],
        ));
        // Customer 1: amounts 10, 20. Customer 2: amount 100.
        orders
            .insert(vec![Value::int(1), Value::int(10)], SnapshotId::INITIAL)
            .unwrap();
        orders
            .insert(vec![Value::int(1), Value::int(20)], SnapshotId::INITIAL)
            .unwrap();
        orders
            .insert(vec![Value::int(2), Value::int(100)], SnapshotId::INITIAL)
            .unwrap();
        catalog.add_table(Arc::new(orders));

        let shipments = Table::new(Schema::new(
            "shipments",
            vec![Column::int("s_custkey"), Column::int("s_weight")],
        ));
        // Customer 1: weights 3, 4. Customer 3 (no orders): weight 9.
        shipments
            .insert(vec![Value::int(1), Value::int(3)], SnapshotId::INITIAL)
            .unwrap();
        shipments
            .insert(vec![Value::int(1), Value::int(4)], SnapshotId::INITIAL)
            .unwrap();
        shipments
            .insert(vec![Value::int(3), Value::int(9)], SnapshotId::INITIAL)
            .unwrap();
        catalog.add_table(Arc::new(shipments));
        Arc::new(catalog)
    }

    fn base_query() -> GalaxyQuery {
        GalaxyQuery::builder("tiny")
            .side_a(SideSpec::new("orders", "o_custkey").join_dimension(
                "customer",
                "o_custkey",
                "c_custkey",
                Predicate::True,
            ))
            .side_b(SideSpec::new("shipments", "s_custkey"))
            .group_by(Side::A, ColumnRef::dim("customer", "c_region"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::A,
                ColumnRef::fact("o_amount"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::B,
                ColumnRef::fact("s_weight"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Avg,
                Side::B,
                ColumnRef::fact("s_weight"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Min,
                Side::A,
                ColumnRef::fact("o_amount"),
            ))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Max,
                Side::B,
                ColumnRef::fact("s_weight"),
            ))
            .build()
    }

    #[test]
    fn hand_checked_join_aggregates() {
        // Joined rows: only customer 1 appears on both sides -> 2 orders x 2 shipments
        // = 4 joined rows, all in region ASIA.
        let catalog = tiny_catalog();
        let result = evaluate(&catalog, &base_query(), SnapshotId::INITIAL).unwrap();
        assert_eq!(result.num_rows(), 1);
        let aggs = result.aggregate_for(&[Value::str("ASIA")]).unwrap();
        assert_eq!(aggs[0], AggValue::Int(4)); // COUNT(*)
        assert_eq!(aggs[1], AggValue::Int(60)); // SUM(o_amount): (10+20) x 2 shipments
        assert_eq!(aggs[2], AggValue::Int(14)); // SUM(s_weight): (3+4) x 2 orders
        assert!(aggs[3].approx_eq(&AggValue::Float(3.5))); // AVG(s_weight)
        assert_eq!(aggs[4], AggValue::Int(10)); // MIN(o_amount)
        assert_eq!(aggs[5], AggValue::Int(4)); // MAX(s_weight)
    }

    #[test]
    fn reference_matches_merged_decomposition() {
        // The oracle and the decomposition + merge path must agree.
        let catalog = tiny_catalog();
        let query = base_query();
        let expected = evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();

        let decomposed = query.decompose().unwrap();
        let partial_a = cjoin_query::reference::evaluate(
            &catalog_with_fact(&catalog, "orders"),
            &decomposed.star_a,
            SnapshotId::INITIAL,
        )
        .unwrap();
        let partial_b = cjoin_query::reference::evaluate(
            &catalog_with_fact(&catalog, "shipments"),
            &decomposed.star_b,
            SnapshotId::INITIAL,
        )
        .unwrap();
        let merged = crate::merge::merge_results(&partial_a, &partial_b, &decomposed.plan);
        assert!(
            merged.approx_eq(&expected),
            "diff: {:?}",
            merged.diff(&expected)
        );
    }

    fn catalog_with_fact(source: &Arc<Catalog>, fact: &str) -> Catalog {
        let view = Catalog::new();
        for name in source.table_names() {
            if name == fact {
                view.add_fact_table(source.table(&name).unwrap());
            } else {
                view.add_table(source.table(&name).unwrap());
            }
        }
        view
    }

    #[test]
    fn dimension_predicate_restricts_the_join() {
        let catalog = tiny_catalog();
        let query = GalaxyQuery::builder("filtered")
            .side_a(SideSpec::new("orders", "o_custkey").join_dimension(
                "customer",
                "o_custkey",
                "c_custkey",
                Predicate::eq("c_region", "EUROPE"),
            ))
            .side_b(SideSpec::new("shipments", "s_custkey"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .build();
        // Customer 2 (EUROPE) has an order but no shipments: the join is empty.
        let result = evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn unknown_columns_are_rejected() {
        let catalog = tiny_catalog();
        let bad = GalaxyQuery::builder("bad")
            .side_a(SideSpec::new("orders", "o_custkey"))
            .side_b(SideSpec::new("shipments", "s_custkey"))
            .aggregate(GalaxyAggregateSpec::over(
                AggFunc::Sum,
                Side::A,
                ColumnRef::fact("missing"),
            ))
            .build();
        assert!(evaluate(&catalog, &bad, SnapshotId::INITIAL).is_err());

        let bad_dim = GalaxyQuery::builder("bad_dim")
            .side_a(SideSpec::new("orders", "o_custkey"))
            .side_b(SideSpec::new("shipments", "s_custkey"))
            .group_by(Side::A, ColumnRef::dim("customer", "c_region"))
            .aggregate(GalaxyAggregateSpec::count_star())
            .build();
        // Side A does not join `customer`, so the group-by column cannot be resolved.
        assert!(evaluate(&catalog, &bad_dim, SnapshotId::INITIAL).is_err());
    }

    #[test]
    fn snapshot_pinning_excludes_later_inserts() {
        let catalog = tiny_catalog();
        let orders = catalog.table("orders").unwrap();
        let later = catalog.snapshots().commit();
        orders
            .insert(vec![Value::int(1), Value::int(1000)], later)
            .unwrap();

        let mut query = base_query();
        let before = evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        query.snapshot = Some(later);
        let after = evaluate(&catalog, &query, SnapshotId::INITIAL).unwrap();
        let count = |r: &QueryResult| match r.aggregate_for(&[Value::str("ASIA")]).unwrap()[0] {
            AggValue::Int(c) => c,
            _ => panic!("expected count"),
        };
        assert_eq!(count(&before), 4);
        assert_eq!(count(&after), 6, "one more order x two shipments");
    }
}
